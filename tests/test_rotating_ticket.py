"""Tests for the prior-art baselines: rotating-priority RR and ticket FCFS."""

import pytest

from repro.baselines.rotating import RotatingPriorityRR
from repro.baselines.ticket import TicketFCFS
from repro.errors import ArbitrationError
from repro.workload.scenarios import equal_load

from _utils import drive_arbiter, grant_sequence


class TestRotatingPriorityScheduling:
    def test_full_house_cycles_descending(self):
        arbiter = RotatingPriorityRR(5)
        served = drive_arbiter(arbiter, [(0.0, agent) for agent in range(1, 6)])
        assert served == [5, 4, 3, 2, 1]

    def test_matches_static_rr_schedule_when_healthy(self):
        # Fault-free, the rotating scheme is the same round-robin scan as
        # the paper's static protocol — across a full bus simulation.
        scenario = equal_load(8, 2.5)
        assert grant_sequence(scenario, "rotating-rr", seed=13) == grant_sequence(
            scenario, "rr", seed=13
        )

    def test_dynamic_numbers_are_a_permutation(self):
        arbiter = RotatingPriorityRR(6)
        for agent in range(1, 7):
            arbiter.request(agent, 0.0)
        outcome = arbiter.start_arbitration(0.0)
        assert sorted(outcome.keys.values()) == [1, 2, 3, 4, 5, 6]

    def test_rotation_follows_winner(self):
        arbiter = RotatingPriorityRR(6)
        arbiter.request(3, 0.0)
        arbiter.request(5, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 5 wins
        assert all(origin == 5 for origin in arbiter.origin.values())
        # After winner 5, agent 4 holds the top dynamic number.
        assert arbiter._current_number(4) == 6

    def test_reset(self):
        arbiter = RotatingPriorityRR(6)
        arbiter.request(3, 0.0)
        arbiter.start_arbitration(0.0)
        arbiter.reset()
        assert set(arbiter.origin.values()) == {1}


class TestRotatingPriorityFragility:
    def test_missed_broadcast_desynchronises(self):
        arbiter = RotatingPriorityRR(6)
        arbiter.drop_winner_observations(2)
        arbiter.request(3, 0.0)
        arbiter.request(5, 0.0)
        arbiter.start_arbitration(0.0)
        assert arbiter.desynchronised_agents() == frozenset({2})
        assert arbiter.observations_dropped == 1

    def test_desynchronised_numbers_collide(self):
        # Agent 2 misses the arbitration in which 5 won; its rotation
        # still assumes origin 1.  Another agent whose post-rotation
        # number equals agent 2's stale number then collides with it.
        arbiter = RotatingPriorityRR(6)
        arbiter.drop_winner_observations(2)
        arbiter.request(3, 0.0)
        arbiter.request(5, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 5 wins
        # Stale agent 2: number from origin 1; any agent with the same
        # number from origin 5 collides.  Find one and request both.
        stale_number = arbiter._current_number(2)
        collider = next(
            agent
            for agent in range(1, 7)
            if agent not in (2,)
            and (5 - agent - 1) % 6 + 1 == 6 + 1 - stale_number  # inverse map
        )
        arbiter.request(2, 1.0)
        arbiter.request(collider, 1.0)
        with pytest.raises(ArbitrationError):
            arbiter.start_arbitration(1.0)

    def test_fault_free_runs_never_collide(self):
        # Sub-critical arrivals so each agent is served before its next
        # request; a healthy run must never raise a collision.
        arbiter = RotatingPriorityRR(6)
        served = drive_arbiter(
            arbiter,
            [(float(i) * 1.5, (i % 6) + 1) for i in range(24)],
        )
        assert len(served) == 24


class TestTicketFCFS:
    def test_serves_in_arrival_order(self):
        arbiter = TicketFCFS(8)
        served = drive_arbiter(arbiter, [(0.0, 6), (0.5, 2), (1.0, 7)])
        assert served == [6, 2, 7]

    def test_dispenser_serialises_simultaneous_arrivals(self):
        # Unlike the distributed protocols, the central dispenser gives
        # same-instant requests distinct tickets in arrival-call order.
        arbiter = TicketFCFS(8)
        arbiter.request(6, 1.0)
        arbiter.request(3, 1.0)
        assert arbiter.start_arbitration(1.0).winner == 6

    def test_tickets_recycle_modulo(self):
        arbiter = TicketFCFS(4)  # ticket modulus 8
        for round_index in range(5):
            arbiter.request(1, float(round_index))
            arbiter.grant(arbiter.start_arbitration(float(round_index)).winner, 0.0)
        arbiter.request(2, 10.0)
        assert arbiter.live_tickets()[2] == 5 % arbiter.ticket_modulus

    def test_matches_central_fcfs_for_distinct_arrivals(self):
        scenario = equal_load(8, 2.0)
        assert grant_sequence(scenario, "ticket-fcfs", seed=21) == grant_sequence(
            scenario, "central-fcfs", seed=21
        )

    def test_matches_paper_a_incr_arbiter(self):
        # The paper's distributed a-incr design reproduces the ticket
        # oracle's schedule on continuous arrivals.
        scenario = equal_load(8, 2.0)
        assert grant_sequence(scenario, "ticket-fcfs", seed=22) == grant_sequence(
            scenario, "fcfs-aincr", seed=22
        )

    def test_reset(self):
        arbiter = TicketFCFS(4)
        arbiter.request(1, 0.0)
        arbiter.reset()
        assert not arbiter.has_waiting()
        assert arbiter.live_tickets() == {}

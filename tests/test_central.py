"""Tests for the central oracle arbiters."""

import pytest

from repro.baselines.central import CentralFCFS, CentralRoundRobin
from repro.errors import ArbitrationError, ConfigurationError

from _utils import drive_arbiter


class TestCentralRoundRobinDescending:
    def test_full_house_cycles_descending(self):
        arbiter = CentralRoundRobin(5)
        served = drive_arbiter(arbiter, [(0.0, agent) for agent in range(1, 6)])
        assert served == [5, 4, 3, 2, 1]

    def test_pointer_scans_below_then_wraps(self):
        arbiter = CentralRoundRobin(8)
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.0)
        assert arbiter.start_arbitration(0.0).winner == 6
        arbiter.grant(6, 0.0)
        arbiter.request(7, 0.0)
        # pointer = 6: 3 < 6 is next despite 7 > 6.
        assert arbiter.start_arbitration(0.0).winner == 3

    def test_each_agent_once_per_round_under_saturation(self):
        arbiter = CentralRoundRobin(4)
        for agent in range(1, 5):
            arbiter.request(agent, 0.0)
        served = []
        for _ in range(12):
            winner = arbiter.start_arbitration(0.0).winner
            arbiter.grant(winner, 0.0)
            arbiter.request(winner, 0.0)
            served.append(winner)
        for agent in range(1, 5):
            assert served.count(agent) == 3

    def test_invalid_direction(self):
        with pytest.raises(ConfigurationError):
            CentralRoundRobin(4, direction="sideways")

    def test_reset_restores_pointer(self):
        arbiter = CentralRoundRobin(4)
        arbiter.request(2, 0.0)
        arbiter.start_arbitration(0.0)
        arbiter.reset()
        assert arbiter.pointer == 0


class TestCentralRoundRobinAscending:
    def test_classical_token_scan(self):
        arbiter = CentralRoundRobin(5, direction="ascending")
        served = drive_arbiter(arbiter, [(0.0, agent) for agent in range(1, 6)])
        assert served == [1, 2, 3, 4, 5]

    def test_wraps_upward(self):
        arbiter = CentralRoundRobin(8, direction="ascending")
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.0)
        assert arbiter.start_arbitration(0.0).winner == 3
        arbiter.grant(3, 0.0)
        arbiter.request(2, 0.0)
        # pointer = 3: next above is 6, not 2.
        assert arbiter.start_arbitration(0.0).winner == 6


class TestCentralFCFS:
    def test_serves_in_arrival_order(self):
        arbiter = CentralFCFS(8)
        served = drive_arbiter(arbiter, [(0.0, 6), (0.5, 2), (1.0, 7)])
        assert served == [6, 2, 7]

    def test_tie_broken_by_higher_identity(self):
        arbiter = CentralFCFS(8)
        arbiter.request(3, 1.0)
        arbiter.request(6, 1.0)
        assert arbiter.start_arbitration(1.0).winner == 6

    def test_priority_request_served_first(self):
        arbiter = CentralFCFS(8)
        arbiter.request(3, 0.0)
        arbiter.request(6, 5.0, priority=True)
        assert arbiter.start_arbitration(5.0).winner == 6

    def test_empty_arbitration_raises(self):
        with pytest.raises(ArbitrationError):
            CentralFCFS(4).start_arbitration(0.0)

"""Tests for the binary-patterned arbitration model [John83]."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ArbitrationError, SignalError
from repro.signals.binary_patterned import BinaryPatternedArbitration


class TestResolve:
    def test_single_round(self):
        outcome = BinaryPatternedArbitration(6).resolve([5, 9, 3])
        assert outcome.rounds == 1

    def test_only_max_wins(self):
        outcome = BinaryPatternedArbitration(6).resolve([5, 9, 3])
        assert outcome.won == {0: False, 1: True, 2: False}

    def test_winner_identity_hidden_by_default(self):
        outcome = BinaryPatternedArbitration(6).resolve([5, 9])
        assert outcome.winner_identity is None

    def test_broadcast_variant_reveals_winner(self):
        arbiter = BinaryPatternedArbitration(6, broadcast_winner=True)
        outcome = arbiter.resolve([5, 9])
        assert outcome.winner_identity == 9

    def test_broadcast_costs_extra_round(self):
        arbiter = BinaryPatternedArbitration(6, broadcast_winner=True)
        assert arbiter.resolve([5, 9]).rounds == 2

    def test_empty_contention(self):
        outcome = BinaryPatternedArbitration(4).resolve([])
        assert outcome.won == {}
        assert outcome.rounds == 0

    def test_identity_zero_rejected(self):
        with pytest.raises(SignalError):
            BinaryPatternedArbitration(4).resolve([0])

    def test_duplicates_rejected(self):
        with pytest.raises(ArbitrationError):
            BinaryPatternedArbitration(4).resolve([3, 3])

    def test_capacity_enforced(self):
        with pytest.raises(SignalError):
            BinaryPatternedArbitration(3).resolve([8])

    def test_zero_width_rejected(self):
        with pytest.raises(SignalError):
            BinaryPatternedArbitration(0)


class TestEquivalenceWithFullLines:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=127),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    def test_same_winner_as_settle_process(self, identities):
        # Johnson's lines pick the same winner as the full wired-OR
        # settle; they only hide its identity and settle faster.
        from repro.signals.contention import ParallelContention

        settled = ParallelContention(7).resolve(identities).winner_identity
        outcome = BinaryPatternedArbitration(7).resolve(identities)
        winner_index = identities.index(settled)
        assert outcome.won[winner_index] is True
        assert sum(outcome.won.values()) == 1

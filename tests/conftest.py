"""Pytest configuration: make tests/_utils importable and seed hypothesis."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

"""Pytest configuration: make tests/_utils importable and seed hypothesis."""

import os
import random
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

#: Environment knob for the test-order-independence audit.  When set to
#: an integer, the collected test items are shuffled with that seed
#: (stdlib only — no pytest-randomly dependency), so CI can prove no
#: test leans on a module-level singleton another test happened to
#: initialise first.  Unset (the default) leaves file order untouched.
_SHUFFLE_ENV = "REPRO_TEST_SHUFFLE"


def pytest_collection_modifyitems(config, items):
    raw = os.environ.get(_SHUFFLE_ENV)
    if not raw:
        return
    try:
        seed = int(raw)
    except ValueError:
        raise pytest.UsageError(
            f"${_SHUFFLE_ENV} must be an integer seed, got {raw!r}"
        )
    random.Random(seed).shuffle(items)

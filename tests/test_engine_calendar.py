"""Unit tests for repro.engine.calendar."""

import pytest

from repro.engine.calendar import EventCalendar
from repro.engine.event import Event, EventPriority
from repro.errors import SimulationError


def _noop():
    pass


class TestScheduling:
    def test_empty_calendar_is_falsy(self):
        assert not EventCalendar()

    def test_len_counts_live_events(self):
        calendar = EventCalendar()
        calendar.schedule(1.0, _noop)
        calendar.schedule(2.0, _noop)
        assert len(calendar) == 2

    def test_schedule_returns_event(self):
        calendar = EventCalendar()
        event = calendar.schedule(1.0, _noop)
        assert isinstance(event, Event)

    def test_pop_returns_earliest(self):
        calendar = EventCalendar()
        calendar.schedule(5.0, _noop, label="late")
        calendar.schedule(1.0, _noop, label="early")
        assert calendar.pop().label == "early"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventCalendar().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventCalendar().schedule(-1.0, _noop)

    def test_nan_time_rejected(self):
        with pytest.raises(SimulationError):
            EventCalendar().schedule(float("nan"), _noop)

    def test_infinite_time_rejected(self):
        with pytest.raises(SimulationError):
            EventCalendar().schedule(float("inf"), _noop)

    def test_push_existing_event(self):
        calendar = EventCalendar()
        calendar.push(Event(2.0, _noop, label="pushed"))
        assert calendar.pop().label == "pushed"

    def test_push_validates_time(self):
        with pytest.raises(SimulationError):
            EventCalendar().push(Event(-2.0, _noop))


class TestOrdering:
    def test_priority_breaks_time_ties(self):
        calendar = EventCalendar()
        calendar.schedule(1.0, _noop, priority=EventPriority.REQUEST, label="request")
        calendar.schedule(1.0, _noop, priority=EventPriority.RELEASE, label="release")
        assert calendar.pop().label == "release"

    def test_fifo_among_equal_time_and_priority(self):
        calendar = EventCalendar()
        for name in ("first", "second", "third"):
            calendar.schedule(1.0, _noop, label=name)
        assert [calendar.pop().label for _ in range(3)] == ["first", "second", "third"]

    def test_full_drain_is_time_sorted(self):
        calendar = EventCalendar()
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        for time in times:
            calendar.schedule(time, _noop)
        popped = [calendar.pop().time for _ in range(len(times))]
        assert popped == sorted(times)


class TestCancellation:
    def test_cancel_removes_from_len(self):
        calendar = EventCalendar()
        event = calendar.schedule(1.0, _noop)
        calendar.cancel(event)
        assert len(calendar) == 0

    def test_cancelled_event_skipped_on_pop(self):
        calendar = EventCalendar()
        cancelled = calendar.schedule(1.0, _noop, label="cancelled")
        calendar.schedule(2.0, _noop, label="kept")
        calendar.cancel(cancelled)
        assert calendar.pop().label == "kept"

    def test_cancel_is_idempotent_for_len(self):
        calendar = EventCalendar()
        event = calendar.schedule(1.0, _noop)
        calendar.schedule(2.0, _noop)
        calendar.cancel(event)
        calendar.cancel(event)
        assert len(calendar) == 1

    def test_cancel_after_pop_keeps_live_count(self):
        # Regression: cancelling an event that had already been popped
        # used to decrement the live count below the true queue size,
        # making the calendar report empty while events were pending.
        calendar = EventCalendar()
        popped = calendar.schedule(1.0, _noop, label="popped")
        calendar.schedule(2.0, _noop, label="pending")
        assert calendar.pop() is popped
        calendar.cancel(popped)
        assert len(calendar) == 1
        assert calendar
        assert calendar.pop().label == "pending"

    def test_cancel_after_pop_leaves_event_uncancelled(self):
        calendar = EventCalendar()
        popped = calendar.schedule(1.0, _noop)
        calendar.pop()
        calendar.cancel(popped)
        assert not popped.cancelled

    def test_peek_time_skips_cancelled(self):
        calendar = EventCalendar()
        cancelled = calendar.schedule(1.0, _noop)
        calendar.schedule(3.0, _noop)
        calendar.cancel(cancelled)
        assert calendar.peek_time() == 3.0

    def test_peek_time_empty(self):
        assert EventCalendar().peek_time() is None

    def test_clear(self):
        calendar = EventCalendar()
        calendar.schedule(1.0, _noop)
        calendar.clear()
        assert not calendar

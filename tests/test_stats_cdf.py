"""Tests for the empirical CDF and the overlap-crossing rule."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StatisticsError
from repro.stats.cdf import EmpiricalCDF, min_integer_crossing


class TestEmpiricalCDF:
    def test_evaluate_steps(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4.0) == 1.0
        assert cdf.evaluate(99.0) == 1.0

    def test_right_continuity_includes_equal_samples(self):
        cdf = EmpiricalCDF([2.0, 2.0, 3.0])
        assert cdf.evaluate(2.0) == pytest.approx(2 / 3)

    def test_min_max_mean(self):
        cdf = EmpiricalCDF([3.0, 1.0, 2.0])
        assert cdf.min == 1.0
        assert cdf.max == 3.0
        assert cdf.mean == pytest.approx(2.0)

    def test_std(self):
        cdf = EmpiricalCDF([1.0, 3.0])
        assert cdf.std == pytest.approx(1.0)

    def test_quantile(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(1.0) == 4.0
        assert cdf.quantile(0.01) == 1.0

    def test_quantile_validation(self):
        cdf = EmpiricalCDF([1.0])
        with pytest.raises(StatisticsError):
            cdf.quantile(0.0)

    def test_empty_rejected(self):
        with pytest.raises(StatisticsError):
            EmpiricalCDF([])

    def test_series(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        assert cdf.series([0.0, 1.5, 3.0]) == [(0.0, 0.0), (1.5, 0.5), (3.0, 1.0)]

    def test_len(self):
        assert len(EmpiricalCDF([1.0, 2.0, 3.0])) == 3

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=200))
    def test_monotone_non_decreasing(self, samples):
        cdf = EmpiricalCDF(samples)
        points = sorted({0.0, 25.0, 50.0, 75.0, 100.0} | set(samples))
        values = [cdf.evaluate(p) for p in points]
        assert values == sorted(values)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=200))
    def test_bounds(self, samples):
        cdf = EmpiricalCDF(samples)
        assert cdf.evaluate(cdf.max) == 1.0
        assert cdf.evaluate(cdf.min - 1.0) == 0.0


class TestMinIntegerCrossing:
    def test_finds_first_strict_crossing(self):
        # RR has a longer tail: beyond 3 the FCFS CDF is higher.
        rr = EmpiricalCDF([1.0, 2.0, 3.0, 8.0, 9.0])
        fcfs = EmpiricalCDF([2.0, 3.0, 3.5, 4.0, 4.5])
        crossing = min_integer_crossing(rr, fcfs, margin=0.0)
        assert crossing == 4
        assert rr.evaluate(4) < fcfs.evaluate(4)

    def test_no_crossing_returns_none(self):
        left = EmpiricalCDF([1.0, 2.0])
        right = EmpiricalCDF([3.0, 4.0])
        # The left CDF is always >= the right one: never strictly below.
        assert min_integer_crossing(left, right, margin=0.0) is None
        # Reversed, it is below immediately.
        assert min_integer_crossing(right, left, margin=0.0) == 1

    def test_upper_bound_respected(self):
        rr = EmpiricalCDF([1.0, 2.0, 3.0, 8.0, 9.0])
        fcfs = EmpiricalCDF([2.0, 3.0, 3.5, 4.0, 4.5])
        assert min_integer_crossing(rr, fcfs, upper=3, margin=0.0) is None

    def test_identical_distributions_never_cross(self):
        samples = [1.0, 2.0, 3.0]
        assert (
            min_integer_crossing(EmpiricalCDF(samples), EmpiricalCDF(samples))
            is None
        )

    def test_default_margin_suppresses_tail_noise(self):
        # A one-sample-in-ten-thousand lead deep in the left tail must
        # not be reported as the crossing.
        rr = EmpiricalCDF([2.1] + [10.0] * 4000 + [30.0] * 999)
        fcfs = EmpiricalCDF([1.9, 2.0] + [10.0] * 4998)
        noisy = min_integer_crossing(rr, fcfs, margin=0.0)
        robust = min_integer_crossing(rr, fcfs)
        assert noisy == 2
        assert robust == 10


class TestKSDistance:
    def test_identical_samples_zero_distance(self):
        from repro.stats.cdf import ks_distance

        samples = [1.0, 2.0, 3.0, 4.0]
        assert ks_distance(EmpiricalCDF(samples), EmpiricalCDF(samples)) == 0.0

    def test_disjoint_supports_distance_one(self):
        from repro.stats.cdf import ks_distance

        low = EmpiricalCDF([1.0, 2.0])
        high = EmpiricalCDF([10.0, 11.0])
        assert ks_distance(low, high) == 1.0

    def test_known_half_overlap(self):
        from repro.stats.cdf import ks_distance

        first = EmpiricalCDF([1.0, 2.0])
        second = EmpiricalCDF([2.0, 3.0])
        # At x = 1: |0.5 - 0| = 0.5 is the supremum.
        assert ks_distance(first, second) == pytest.approx(0.5)

    def test_symmetry(self):
        from repro.stats.cdf import ks_distance

        a = EmpiricalCDF([1.0, 5.0, 9.0])
        b = EmpiricalCDF([2.0, 3.0, 4.0])
        assert ks_distance(a, b) == ks_distance(b, a)

    def test_rr_vs_fcfs_distance_exceeds_seed_noise(self):
        from repro.stats.cdf import ks_distance
        from repro.experiments.runner import SimulationSettings, run_simulation
        from repro.workload.scenarios import equal_load

        scenario = equal_load(10, 2.0)

        def cdf(protocol, seed):
            settings = SimulationSettings(
                batches=3, batch_size=800, warmup=200, seed=seed, keep_samples=True
            )
            return run_simulation(scenario, protocol, settings).waiting_cdf()

        protocol_gap = ks_distance(cdf("rr", 1), cdf("fcfs", 1))
        seed_noise = ks_distance(cdf("rr", 1), cdf("rr", 2))
        assert protocol_gap > 2 * seed_noise

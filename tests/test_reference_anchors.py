"""Anchored regression tests: hold the simulator to the paper's numbers.

A focused subset of the paper's legible cells, each checked at reduced
scale with a tolerance wide enough for the shorter runs but tight
enough to catch a real modelling regression (the full-grid comparison
lives in EXPERIMENTS.md at paper scale).
"""

import pytest

from repro.experiments.reference import (
    LOADS,
    TABLE_4_2,
    TABLE_4_4,
    TABLE_4_5_RR_RATIO,
    waiting_anchor,
)
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.table_4_5 import slow_to_other_ratio
from repro.workload.scenarios import equal_load, unequal_load, worst_case_rr

SETTINGS = SimulationSettings(batches=5, batch_size=1500, warmup=500, seed=404)


class TestReferenceTables:
    def test_loads_vector(self):
        assert LOADS == (0.25, 0.50, 1.00, 1.50, 2.00, 2.50, 5.00, 7.50)

    def test_reference_shapes_consistent(self):
        for table in TABLE_4_2.values():
            assert len(table["w"]) == len(LOADS)
            assert len(table["std_fcfs"]) == len(LOADS)
        for panel in TABLE_4_4.values():
            assert len(panel["rr"]) == len(LOADS) - 1

    def test_waiting_anchor_lookup(self):
        assert waiting_anchor(30, 7.50) == 27.00
        assert waiting_anchor(30, 0.33) is None
        assert waiting_anchor(7, 1.0) is None


class TestTable42Anchors:
    @pytest.mark.parametrize(
        "num_agents,load",
        [(10, 1.50), (10, 2.00), (10, 5.00), (30, 1.50), (30, 7.50)],
    )
    def test_mean_waiting_matches_paper(self, num_agents, load):
        result = run_simulation(equal_load(num_agents, load), "fcfs", SETTINGS)
        anchor = waiting_anchor(num_agents, load)
        assert result.mean_waiting().mean == pytest.approx(anchor, rel=0.03)

    @pytest.mark.parametrize("num_agents,load", [(10, 2.00), (30, 2.00)])
    def test_std_waiting_matches_paper(self, num_agents, load):
        index = LOADS.index(load)
        rr = run_simulation(equal_load(num_agents, load), "rr", SETTINGS)
        fcfs = run_simulation(equal_load(num_agents, load), "fcfs", SETTINGS)
        assert rr.std_waiting().mean == pytest.approx(
            TABLE_4_2[num_agents]["std_rr"][index], rel=0.10
        )
        assert fcfs.std_waiting().mean == pytest.approx(
            TABLE_4_2[num_agents]["std_fcfs"][index], rel=0.10
        )


class TestTable44Anchors:
    @pytest.mark.parametrize(
        "factor,base_index,base_load",
        [(2.0, 0, 0.25), (2.0, 4, 2.00), (4.0, 3, 1.50)],
    )
    def test_unequal_rate_ratios(self, factor, base_index, base_load):
        scenario = unequal_load(30, base_load / 30, factor)
        rr = run_simulation(scenario, "rr", SETTINGS)
        fcfs = run_simulation(scenario, "fcfs", SETTINGS)
        rr_anchor = TABLE_4_4[factor]["rr"][base_index]
        fcfs_anchor = TABLE_4_4[factor]["fcfs"][base_index]
        rr_ratio = rr.throughput_ratio(1, 2)
        fcfs_ratio = fcfs.throughput_ratio(1, 2)
        assert rr_ratio.mean == pytest.approx(
            rr_anchor, rel=max(0.12, 3 * rr_ratio.relative_halfwidth)
        )
        assert fcfs_ratio.mean == pytest.approx(
            fcfs_anchor, rel=max(0.12, 3 * fcfs_ratio.relative_halfwidth)
        )


class TestTable45Anchors:
    @pytest.mark.parametrize("num_agents", [10, 30])
    def test_deterministic_collapse(self, num_agents):
        result = run_simulation(worst_case_rr(num_agents, cv=0.0), "rr", SETTINGS)
        anchor = TABLE_4_5_RR_RATIO[(num_agents, 0.0)]
        assert slow_to_other_ratio(result).mean == pytest.approx(anchor, abs=0.04)

    def test_cv_quarter_recovery(self):
        result = run_simulation(worst_case_rr(10, cv=0.25), "rr", SETTINGS)
        anchor = TABLE_4_5_RR_RATIO[(10, 0.25)]
        assert slow_to_other_ratio(result).mean == pytest.approx(anchor, abs=0.06)

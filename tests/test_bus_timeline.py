"""Tests for the bus-activity timeline renderer."""

import pytest

from repro.bus.records import CompletionRecord
from repro.bus.timeline import ownership_segments, render_timeline
from repro.errors import ConfigurationError

from _utils import completion_records
from repro.workload.scenarios import equal_load


def _record(agent, issue, grant, done):
    return CompletionRecord(
        agent_id=agent, issue_time=issue, grant_time=grant, completion_time=done
    )


class TestOwnershipSegments:
    def test_sorted_tenures(self):
        records = [
            _record(2, 0.0, 1.0, 2.0),
            _record(1, 0.0, 0.0, 1.0),
        ]
        assert ownership_segments(records) == [(0.0, 1.0, 1), (1.0, 2.0, 2)]

    def test_back_to_back_allowed(self):
        records = [_record(1, 0.0, 0.0, 1.0), _record(2, 0.0, 1.0, 2.0)]
        ownership_segments(records)  # no exception

    def test_overlap_rejected(self):
        records = [_record(1, 0.0, 0.0, 1.5), _record(2, 0.0, 1.0, 2.0)]
        with pytest.raises(ConfigurationError):
            ownership_segments(records)

    def test_simulation_records_never_overlap(self):
        records = completion_records(equal_load(6, 2.0), "rr", completions=200)
        ownership_segments(records)  # the single-master invariant holds


class TestRenderTimeline:
    def test_tenure_and_wait_marked(self):
        text = render_timeline([_record(1, 0.0, 1.0, 2.0)], end=2.0, resolution=0.5)
        row = [line for line in text.splitlines() if line.startswith("A1")][0]
        assert row == "A1  |..##|"

    def test_waiting_marked(self):
        text = render_timeline([_record(1, 0.0, 1.0, 2.0)], end=2.0, resolution=0.5)
        row = [line for line in text.splitlines() if line.startswith("A1")][0]
        assert row.count("#") == 2
        # The issue→grant interval renders as waiting dots.
        assert "." in render_timeline(
            [_record(1, 0.0, 1.0, 2.0)], end=2.0, resolution=0.25
        )

    def test_one_row_per_agent(self):
        records = [
            _record(1, 0.0, 0.0, 1.0),
            _record(3, 0.0, 1.0, 2.0),
        ]
        text = render_timeline(records, end=2.0)
        assert "A1" in text and "A3" in text and "A2" not in text

    def test_empty_records(self):
        assert render_timeline([]) == "(no completions)"

    def test_width_limit_truncates(self):
        records = [_record(1, 0.0, 0.0, 100.0)]
        text = render_timeline(records, resolution=0.5, width_limit=40)
        row = [line for line in text.splitlines() if line.startswith("A1")][0]
        assert len(row) <= 46

    def test_invalid_resolution(self):
        with pytest.raises(ConfigurationError):
            render_timeline([_record(1, 0.0, 0.0, 1.0)], resolution=0.0)

    def test_saturated_bus_has_no_gaps(self):
        records = completion_records(equal_load(4, 3.0), "rr", completions=40)
        # Skip ramp-up, look at a steady window.
        window = [r for r in records if 10.0 <= r.grant_time <= 20.0]
        segments = ownership_segments(window)
        for (__, end, __a), (start, __e, __b) in zip(segments, segments[1:]):
            assert start == pytest.approx(end)

"""Tests for the repository's utility scripts."""

import importlib.util
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parent.parent / "scripts"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestGenerateApiDocs:
    def test_writes_reference_for_every_package(self, tmp_path, monkeypatch):
        module = _load("generate_api_docs")
        monkeypatch.setattr(module, "OUT", tmp_path / "api.md")
        module.main()
        text = (tmp_path / "api.md").read_text()
        for package in (
            "repro.core",
            "repro.signals",
            "repro.baselines",
            "repro.bus",
            "repro.stats",
            "repro.analysis",
            "repro.workload",
            "repro.experiments",
        ):
            assert f"## `{package}`" in text
        assert "DistributedRoundRobin" in text
        assert "min_integer_crossing" in text

    def test_committed_api_doc_is_current_enough(self):
        # The committed docs/api.md must at least know every top-level
        # subpackage (regen with `make apidocs` after API changes).
        committed = (SCRIPTS.parent / "docs" / "api.md").read_text()
        for name in ("HandshakeBus", "AsyncContention", "TicketFCFS"):
            assert name in committed, f"docs/api.md is stale: missing {name}"


class TestGenerateExperiments:
    def test_module_loads_and_references_resolve(self):
        module = _load("generate_experiments")
        # The paper-reference aliases must be the packaged tables.
        from repro.experiments import reference

        assert module.PAPER_4_2 is reference.TABLE_4_2
        assert module.LOADS == reference.LOADS
        assert set(module.PAPER_4_5) == {10, 30, 64}

    def test_fmt_helper(self):
        module = _load("generate_experiments")
        assert module._fmt(None) == "—"
        assert module._fmt(1.2345) == "1.23"

        class Est:
            mean = 2.5

        assert module._fmt(Est()) == "2.50"

"""Scheduling-equivalence tests: the paper's central claims.

§3.1 claims the distributed RR protocol implements scheduling *identical*
to the central round-robin arbiter, in all three implementations; §3.2
claims the a-incr FCFS implementation is (nearly) exact FCFS.  These
tests drive full bus simulations — identical arrival processes via
common random numbers — and compare the complete grant sequences.
"""

import pytest

from repro.workload.scenarios import equal_load, unequal_load, worst_case_rr

from _utils import completion_records, grant_sequence


SCENARIOS = [
    equal_load(8, 2.0),
    equal_load(12, 4.0),
    equal_load(5, 0.8),
    unequal_load(10, 0.15, 3.0),
    worst_case_rr(8, cv=0.5),
]


class TestRRImplementationsAreIdentical:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_impl_2_schedules_identically(self, scenario):
        # Implementations 1 and 2 have identical timing (one arbitration
        # pass always), so their grant sequences match everywhere.
        base = grant_sequence(scenario, "rr", seed=42)
        assert grant_sequence(scenario, "rr-impl2", seed=42) == base

    @pytest.mark.parametrize(
        "scenario",
        [s for s in SCENARIOS if s.total_offered_load() >= 1.5],
        ids=lambda s: s.name,
    )
    def test_impl_3_schedules_identically_under_saturation(self, scenario):
        # Implementation 3 occasionally spends a second arbitration pass
        # ("somewhat less efficient", §3.1).  Under saturation the pass is
        # absorbed by the overlapped tenure, so the sequence still matches;
        # at low load the timing skew can reorder near-simultaneous
        # arrivals, which is why this test restricts to saturated runs and
        # the selection *rule* is property-tested separately.
        base = grant_sequence(scenario, "rr", seed=42)
        assert grant_sequence(scenario, "rr-impl3", seed=42) == base

    @pytest.mark.parametrize("seed", [1, 7, 99])
    def test_identical_across_seeds(self, seed):
        scenario = equal_load(10, 3.0)
        base = grant_sequence(scenario, "rr", seed=seed)
        assert grant_sequence(scenario, "rr-impl2", seed=seed) == base
        assert grant_sequence(scenario, "rr-impl3", seed=seed) == base


class TestRRMatchesCentralOracle:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
    def test_true_round_robin(self, scenario):
        # "The RR protocol implements true round-robin scheduling,
        # identical to the central round-robin arbiter" (§1).
        assert grant_sequence(scenario, "rr", seed=11) == grant_sequence(
            scenario, "central-rr", seed=11
        )


class TestFCFSMatchesCentralOracle:
    @pytest.mark.parametrize("scenario", SCENARIOS[:4], ids=lambda s: s.name)
    def test_a_incr_strategy_is_exact_fcfs(self, scenario):
        # Strategy 2 with a zero coincidence window and continuous arrival
        # times is exact FCFS.
        assert grant_sequence(scenario, "fcfs-aincr", seed=23) == grant_sequence(
            scenario, "central-fcfs", seed=23
        )

    def test_strategy_1_inversions_bounded_by_arbitration_interval(self):
        # The lost-arbitration counter can only reorder requests whose
        # arrivals fall between the same two successive arbitrations, so a
        # grant may precede an *earlier* request only if the two issue
        # times are within one inter-arbitration spacing (at most one
        # transaction time here, since arbitrations run at least once per
        # tenure under load).
        scenario = equal_load(10, 2.0)
        records = completion_records(scenario, "fcfs", completions=1000, seed=5)
        max_interval = 1.5  # transaction + arbitration, a safe bound
        for earlier, later in zip(records, records[1:]):
            assert later.issue_time >= earlier.issue_time - max_interval

    def test_strategy_2_has_no_issue_time_inversions(self):
        scenario = equal_load(10, 2.0)
        records = completion_records(scenario, "fcfs-aincr", completions=1000, seed=5)
        for earlier, later in zip(records, records[1:]):
            assert later.issue_time >= earlier.issue_time

    def test_hybrid_matches_fcfs_for_spread_arrivals(self):
        # With continuous arrival times there are no cohorts, so the
        # hybrid degenerates to exact FCFS.
        scenario = equal_load(10, 2.0)
        assert grant_sequence(scenario, "hybrid", seed=31) == grant_sequence(
            scenario, "central-fcfs", seed=31
        )

    def test_adaptive_matches_fcfs_for_spread_arrivals(self):
        scenario = equal_load(10, 2.0)
        assert grant_sequence(scenario, "adaptive", seed=31) == grant_sequence(
            scenario, "central-fcfs", seed=31
        )


class TestSchedulesActuallyDiffer:
    def test_rr_and_fcfs_are_not_the_same_discipline(self):
        # Sanity guard on the equivalence tests above: under contention
        # the two disciplines must produce different grant orders.
        scenario = equal_load(10, 3.0)
        assert grant_sequence(scenario, "rr", seed=3) != grant_sequence(
            scenario, "fcfs-aincr", seed=3
        )

    def test_aap1_differs_from_rr(self):
        scenario = equal_load(10, 3.0)
        assert grant_sequence(scenario, "aap1", seed=3) != grant_sequence(
            scenario, "rr", seed=3
        )

    def test_descending_and_ascending_central_rr_differ(self):
        scenario = equal_load(10, 3.0)
        base = grant_sequence(scenario, "central-rr", seed=3)
        from repro.baselines.central import CentralRoundRobin
        from repro.experiments.runner import PROTOCOLS

        PROTOCOLS["central-rr-asc"] = lambda n: CentralRoundRobin(
            n, direction="ascending"
        )
        try:
            ascending = grant_sequence(scenario, "central-rr-asc", seed=3)
        finally:
            del PROTOCOLS["central-rr-asc"]
        assert ascending != base

"""Session.gather edge cases: dedup vs cache races, demotion, control.

The gather loop composes four mechanisms — within-gather dedup, the
content-addressed cache, lane packing with loud demotion, and the
cooperative :class:`~repro.session.control.RunControl` — and the edges
live where they meet:

- duplicate submissions racing a cache write: however the duplicate is
  discovered (dedup before execution, or a cache entry that appeared
  between submit and gather), exactly one execution and one store
  happen and both outcomes carry identical bytes;
- a lane pack that demotes at runtime must not disturb the cache hits
  gathered alongside it, and order is preserved throughout;
- an empty gather is a no-op, not an error;
- a corrupt cache entry discovered mid-gather quarantines as a miss
  and the gather heals by re-executing;
- a tripped control (cancel or deadline) raises out of the gather
  before new work starts, and at cell boundaries within it.
"""

import pickle
import time

import pytest

from repro.errors import CancelledRunError, DeadlineExceededError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SimulationSettings
from repro.session.control import RunControl
from repro.session.request import RunRequest
from repro.session.session import Session
from repro.workload.scenarios import equal_load

SETTINGS = SimulationSettings(batches=2, batch_size=30, warmup=5, seed=13)
EVENT_SETTINGS = SimulationSettings(
    batches=2, batch_size=30, warmup=5, seed=13, engine="event"
)


def _scenario():
    return equal_load(3, 0.5)


class TestDuplicatesRacingTheCache:
    def test_dup_in_one_gather_executes_once_and_stores_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        session = Session(cache=cache)
        session.submit(_scenario(), "rr", SETTINGS)
        session.submit(_scenario(), "rr", SETTINGS)
        outcomes = session.gather()
        assert [outcome.route for outcome in outcomes] == ["lanes", "dedup"]
        assert cache.stores == 1  # the race cannot double-write
        assert session.stats.executed == 1
        assert pickle.dumps(outcomes[0].result) == pickle.dumps(outcomes[1].result)

    def test_entry_written_between_submit_and_gather_wins(self, tmp_path):
        # Another client stores the cell after this session queued it:
        # the gather must replay the entry, not execute a second time.
        cache = ResultCache(tmp_path)
        request = RunRequest(_scenario(), "rr", SETTINGS)
        stored = Session(cache=cache).run_requests([request])[0]
        session = Session(cache=cache)
        session.submit_request(request)
        session.submit_request(request)  # and a duplicate on top
        outcomes = session.gather()
        assert [outcome.route for outcome in outcomes] == ["cache", "dedup"]
        assert session.stats.executed == 0
        assert pickle.dumps(outcomes[0].result) == pickle.dumps(stored.result)

    def test_dedup_ignores_tags_but_not_settings(self, tmp_path):
        session = Session(cache=ResultCache(tmp_path))
        session.submit(_scenario(), "rr", SETTINGS, tag="first")
        session.submit(_scenario(), "rr", SETTINGS, tag="second")  # same cell
        session.submit(_scenario(), "rr", EVENT_SETTINGS)  # same cell, epoch-6
        outcomes = session.gather()
        # The engine selector is not part of identity (epoch 6): all
        # three collapse onto one execution.
        assert session.stats.executed == 1
        assert [outcome.route for outcome in outcomes] == [
            "lanes", "dedup", "dedup"
        ]


class TestLaneDemotionInterleavedWithHits:
    def test_demoted_lanes_leave_cache_hits_untouched(self, tmp_path, monkeypatch):
        import repro.experiments.sweep as sweep_module

        cache = ResultCache(tmp_path)
        hit_request = RunRequest(_scenario(), "rr", SETTINGS)
        clean = Session(cache=cache).run_requests([hit_request])[0].result

        def explode(cells):
            raise RuntimeError("lane pack exploded")

        monkeypatch.setattr(sweep_module, "run_lanes", explode)
        session = Session(cache=cache)
        session.submit_request(hit_request)  # cache hit
        miss = RunRequest(_scenario(), "fcfs", SETTINGS)  # lane -> demoted
        session.submit_request(miss)
        session.submit_request(hit_request)  # duplicate of the hit
        with pytest.warns(RuntimeWarning, match="fell back"):
            outcomes = session.gather()
        assert [outcome.route for outcome in outcomes] == [
            "cache", "direct", "dedup"
        ]
        assert outcomes[1].fallback is True
        assert session.stats.fallback_cells == 1
        assert pickle.dumps(outcomes[0].result) == pickle.dumps(clean)
        # The demoted cell's result matches an untroubled lane run
        # (run_lanes is still patched, so the reference demotes too —
        # engines are bit-identical, so the comparison is exact either way).
        with pytest.warns(RuntimeWarning, match="fell back"):
            reference = Session().run_requests([miss])[0].result
        assert pickle.dumps(outcomes[1].result) == pickle.dumps(reference)

    def test_demoted_cells_are_still_stored(self, tmp_path, monkeypatch):
        import repro.experiments.sweep as sweep_module

        monkeypatch.setattr(
            sweep_module, "run_lanes",
            lambda cells: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        cache = ResultCache(tmp_path)
        session = Session(cache=cache)
        session.submit(_scenario(), "rr", SETTINGS)
        with pytest.warns(RuntimeWarning):
            outcomes = session.gather()
        assert outcomes[0].stored is True
        assert cache.stores == 1
        # A later gather replays the demoted cell's stored result.
        follow = Session(cache=cache)
        follow.submit(_scenario(), "rr", SETTINGS)
        assert [outcome.route for outcome in follow.gather()] == ["cache"]


class TestEmptyGather:
    def test_empty_gather_returns_empty(self, tmp_path):
        session = Session(cache=ResultCache(tmp_path))
        assert session.gather() == []
        assert session.stats.executed == 0

    def test_gather_drains_pending(self):
        session = Session()
        session.submit(_scenario(), "rr", SETTINGS)
        assert len(session.gather()) == 1
        assert session.gather() == []  # nothing left behind


class TestQuarantineDuringGather:
    def test_corrupt_entry_quarantines_and_the_gather_heals(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest(_scenario(), "rr", SETTINGS)
        key = request.cache_key()
        clean = Session(cache=cache).run_requests([request])[0].result
        (tmp_path / f"{key}.pkl").write_bytes(b"truncated garbage")
        session = Session(cache=cache)
        session.submit_request(request)
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            outcomes = session.gather()
        assert cache.quarantined == 1
        assert (tmp_path / f"{key}.corrupt").exists()
        # The gather re-executed and re-stored a valid entry...
        assert outcomes[0].route in ("lanes", "direct")
        assert pickle.dumps(outcomes[0].result) == pickle.dumps(clean)
        # ...which the next gather replays without complaint.
        follow = Session(cache=cache)
        follow.submit_request(request)
        assert follow.gather()[0].route == "cache"

    def test_wrong_type_payload_quarantines_not_propagates(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest(_scenario(), "rr", SETTINGS)
        key = request.cache_key()
        cache.directory.mkdir(parents=True, exist_ok=True)
        (tmp_path / f"{key}.pkl").write_bytes(
            pickle.dumps({"not": "a RunResult"})
        )
        with pytest.warns(RuntimeWarning, match="not RunResult"):
            assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_oserror_while_reading_is_a_quarantined_miss(self, tmp_path, monkeypatch):
        import pathlib

        cache = ResultCache(tmp_path)
        request = RunRequest(_scenario(), "rr", SETTINGS)
        key = request.cache_key()
        Session(cache=cache).run_requests([request])
        real_open = pathlib.Path.open

        def failing_open(self, *args, **kwargs):
            if self.suffix == ".pkl":
                raise OSError(5, "Input/output error")
            return real_open(self, *args, **kwargs)

        misses_before = cache.misses
        monkeypatch.setattr(pathlib.Path, "open", failing_open)
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            assert cache.get(key) is None
        assert cache.quarantined == 1
        assert cache.misses == misses_before + 1


class TestRunControl:
    def test_cancelled_control_stops_the_gather_before_work(self):
        control = RunControl()
        control.cancel("user hit ^C")
        session = Session()
        session.submit(_scenario(), "rr", SETTINGS)
        with pytest.raises(CancelledRunError, match="user hit"):
            session.gather(control=control)
        assert session.stats.executed == 0

    def test_expired_deadline_raises_deadline_exceeded(self):
        control = RunControl.after(0.0)
        session = Session()
        session.submit(_scenario(), "rr", SETTINGS)
        with pytest.raises(DeadlineExceededError):
            session.gather(control=control)

    def test_deadline_beats_cancel_in_the_diagnostic(self):
        control = RunControl.after(0.0)
        control.cancel("also cancelled")
        with pytest.raises(DeadlineExceededError):
            control.check()

    def test_generous_deadline_completes_normally(self):
        control = RunControl.after(300.0)
        session = Session()
        session.submit(_scenario(), "rr", SETTINGS)
        outcomes = session.gather(control=control)
        assert len(outcomes) == 1
        assert control.remaining() > 0

    def test_cancellation_at_a_cell_boundary_mid_batch(self):
        # The serial direct runner checks the control between cells: a
        # control that trips after the first cell stops the batch there.
        fired = {"cells": 0}
        clock_now = time.monotonic()

        def clock():
            return clock_now + fired["cells"]  # advances one "second" per cell

        control = RunControl(deadline_at=clock_now + 0.5, clock=clock)
        from repro.session.execute import execute_plan
        from repro.session.planner import plan_runs

        requests = [
            RunRequest(_scenario(), "rr", EVENT_SETTINGS),
            RunRequest(_scenario(), "fcfs", EVENT_SETTINGS),
        ]

        def counting_runner(batch):
            results = []
            for request in batch:
                control.check()
                fired["cells"] += 1
                from repro.session.single import run_cell

                results.append(
                    run_cell(request.scenario, request.protocol, request.settings)
                )
            return results

        with pytest.raises(DeadlineExceededError):
            execute_plan(
                plan_runs(requests), direct_runner=counting_runner, control=control
            )
        assert fired["cells"] == 1  # second cell never started

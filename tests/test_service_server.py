"""The socket front end: protocol ops, backpressure on the wire, errors.

One real server per test class — an ``AF_UNIX`` socket served by the
asyncio front end in a background thread, spoken to by the synchronous
:class:`~repro.service.client.ServiceClient`.  The suite pins:

- every protocol op (ping / submit / status / wait / stats / shutdown);
- error discipline: malformed JSON, unknown ops and unknown job ids
  answer ``ok: false`` without dropping the connection;
- the wire half of the backpressure contract: a full queue's rejection
  carries ``retry_after``, and ``submit_retry`` honours it;
- shutdown removes the socket and drains (or not) as asked.
"""

import json
import os
import socket
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.experiments.runner import SimulationSettings
from repro.service import ArbitrationService, BackoffPolicy, ServiceConfig
from repro.service.client import ServiceClient
from repro.service.server import ServiceServer
from repro.session.request import RunRequest
from repro.workload.scenarios import equal_load

FAST = BackoffPolicy(base=0.001, cap=0.01, jitter=0.0)


def _request(seed=11, protocol="rr"):
    return RunRequest(
        equal_load(3, 0.5), protocol, SimulationSettings(
            batches=2, batch_size=30, warmup=5, seed=seed
        )
    )


@pytest.fixture()
def served(tmp_path):
    """A serving (service, socket path) pair, torn down afterwards."""
    path = tmp_path / "service.sock"
    service = ArbitrationService(
        config=ServiceConfig(serial=True, backoff=FAST, poll_interval=0.02)
    )
    server = ServiceServer(service, path)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10.0
    while not path.exists():
        if time.monotonic() > deadline:  # pragma: no cover - startup hang
            raise RuntimeError("server socket never appeared")
        time.sleep(0.01)
    yield service, path
    if path.exists():
        try:
            ServiceClient(path).shutdown()
        except ServiceError:  # already shut down by the test
            pass
    thread.join(10)


class TestProtocolOps:
    def test_ping(self, served):
        __, path = served
        with ServiceClient(path) as client:
            assert client.ping() is True

    def test_submit_wait_status_roundtrip(self, served):
        __, path = served
        with ServiceClient(path) as client:
            summary = client.submit([_request(), _request(protocol="fcfs")], tag="t")
            assert summary["state"] in ("queued", "running", "done")
            final = client.wait(summary["job_id"], timeout=60)
            assert final["state"] == "done"
            assert final["tag"] == "t"
            results = final["results"]
            assert [cell["protocol"] for cell in results] == ["rr", "fcfs"]
            assert all(cell["utilization"] > 0 for cell in results)
            assert client.status(summary["job_id"])["state"] == "done"

    def test_stats_reflect_served_jobs(self, served):
        __, path = served
        with ServiceClient(path) as client:
            summary = client.submit([_request()])
            client.wait(summary["job_id"], timeout=60)
            stats = client.stats()
            assert stats["counters"]["service.done"] >= 1
            assert stats["jobs"].get("done", 0) >= 1
            assert stats["pool"]["degraded"] is True  # serial config

    def test_deadline_travels_the_wire(self, served):
        __, path = served
        with ServiceClient(path) as client:
            summary = client.submit([_request()], deadline=0.0)
            final = client.wait(summary["job_id"], timeout=30)
            assert final["state"] == "timeout"
            assert "deadline expired" in final["error"]


class TestErrorDiscipline:
    def test_malformed_json_answers_without_dropping(self, served):
        __, path = served
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.connect(str(path))
        raw.sendall(b"this is not json\n")
        answer = json.loads(raw.makefile().readline())
        assert answer["ok"] is False
        raw.sendall(b'{"op":"ping"}\n')  # connection still usable
        assert json.loads(raw.makefile().readline())["pong"] is True
        raw.close()

    def test_unknown_op_and_unknown_job(self, served):
        __, path = served
        with ServiceClient(path) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client.call({"op": "teleport"})
            with pytest.raises(ServiceError, match="unknown job id"):
                client.status("job-999999")

    def test_unreachable_socket_raises_cleanly(self, tmp_path):
        client = ServiceClient(tmp_path / "nothing-here.sock")
        with pytest.raises(ServiceError, match="cannot reach service"):
            client.ping()


class TestBackpressureOnTheWire:
    def test_rejection_carries_retry_after(self, served):
        service, path = served
        from repro.service.jobs import Job

        # Fill the queue underneath the dispatcher so the next wire
        # submission sees a full queue deterministically.
        blockers = [Job(f"blk-{i}", [_request(seed=100 + i)]) for i in range(64)]
        for job in blockers:
            service.admission.offer(job)
        with ServiceClient(path) as client:
            summary = client.submit([_request(seed=999)])
        # Either the dispatcher drained some blockers first (admitted)
        # or the queue was still full (rejected with a hint).
        if summary["state"] == "rejected":
            assert summary["retry_after"] > 0

    def test_submit_retry_honours_the_hint_then_succeeds(self, served):
        service, path = served
        naps = []
        with ServiceClient(path) as client:
            summary = client.submit_retry(
                [_request(seed=55)], attempts=10, sleep=naps.append
            )
            final = client.wait(summary["job_id"], timeout=60)
            assert final["state"] == "done"


class TestShutdown:
    def test_shutdown_drains_and_removes_the_socket(self, tmp_path):
        path = tmp_path / "down.sock"
        service = ArbitrationService(
            config=ServiceConfig(serial=True, backoff=FAST, poll_interval=0.02)
        )
        server = ServiceServer(service, path)
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        while not path.exists():
            time.sleep(0.01)
        with ServiceClient(path) as client:
            summary = client.submit([_request()])
            client.shutdown(drain=True)
        thread.join(15)
        assert not thread.is_alive()
        assert not os.path.exists(path)
        # The drained job reached a terminal state before the exit.
        assert service.job(summary["job_id"]).terminal

"""Tests for the analytical models, including simulator cross-validation."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.mva import mva_closed_bus
from repro.analysis.saturation import (
    saturated_cycle_time,
    saturated_mean_waiting,
    saturated_per_agent_throughput,
    saturation_load_threshold,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load


class TestSaturationFormulas:
    def test_cycle_time(self):
        assert saturated_cycle_time(30) == 30.0

    def test_table_4_2_heavy_load_anchors(self):
        # Paper Table 4.2: W = 27.00 at 30 agents / load 7.5 (R̄ = 3) and
        # W = 9.00 at 10 agents / load 5.0 (R̄ = 1).
        assert saturated_mean_waiting(30, 3.0) == pytest.approx(27.0)
        assert saturated_mean_waiting(10, 1.0) == pytest.approx(9.0)

    def test_64_agent_anchor(self):
        # 64 agents at load 7.5: per-agent load 0.117, R̄ = 7.533, and the
        # paper's W = 56.46.
        think = 64 / 7.5 - 1.0
        assert saturated_mean_waiting(64, think) == pytest.approx(56.47, abs=0.01)

    def test_per_agent_throughput(self):
        assert saturated_per_agent_throughput(10) == pytest.approx(0.1)

    def test_threshold_matches_paper_rule_of_thumb(self):
        assert saturation_load_threshold() == 2.0

    def test_unsaturated_population_rejected(self):
        with pytest.raises(ConfigurationError):
            saturated_mean_waiting(10, think_time_too_long := 9.9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            saturated_cycle_time(0)
        with pytest.raises(ConfigurationError):
            saturated_mean_waiting(10, -1.0)


class TestMVA:
    def test_single_agent_no_queueing(self):
        # One agent never queues: W = S + exposed arbitration.
        result = mva_closed_bus(1, mean_think_time=4.0)
        assert result.mean_waiting == pytest.approx(1.5)
        assert result.throughput == pytest.approx(1.0 / 5.5)

    def test_saturation_limit(self):
        # Deep saturation: MVA converges to the exact N·S − R̄ asymptote.
        result = mva_closed_bus(30, mean_think_time=3.0)
        assert result.mean_waiting == pytest.approx(27.0, rel=0.01)
        assert result.utilization == pytest.approx(1.0, abs=0.01)

    def test_throughput_bounded_by_bus(self):
        result = mva_closed_bus(50, mean_think_time=0.5)
        assert result.throughput <= 1.0 + 1e-9

    def test_queue_consistency(self):
        # Little's law at the bus: Q = X * W.
        result = mva_closed_bus(12, mean_think_time=5.0)
        assert result.mean_queue == pytest.approx(
            result.throughput * result.mean_waiting
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mva_closed_bus(0, 1.0)
        with pytest.raises(ConfigurationError):
            mva_closed_bus(5, -1.0)
        with pytest.raises(ConfigurationError):
            mva_closed_bus(5, 1.0, transaction_time=0.0)

    @given(
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_waiting_within_physical_bounds(self, num_agents, think):
        result = mva_closed_bus(num_agents, think)
        # At least one service time; at most a full saturated round plus
        # the exposed arbitration.
        assert 1.0 <= result.mean_waiting <= num_agents * 1.0 + 0.5 + 1e-9

    @given(st.integers(min_value=2, max_value=40))
    def test_more_agents_more_waiting(self, num_agents):
        smaller = mva_closed_bus(num_agents - 1, mean_think_time=2.0)
        larger = mva_closed_bus(num_agents, mean_think_time=2.0)
        assert larger.mean_waiting >= smaller.mean_waiting - 1e-9


class TestCrossValidationAgainstSimulator:
    SETTINGS = SimulationSettings(batches=4, batch_size=1000, warmup=300, seed=17)

    @pytest.mark.parametrize(
        "num_agents,load,tolerance",
        [
            (10, 0.25, 0.15),  # light load: little queueing, MVA close
            (10, 1.0, 0.30),   # mid load: exponential-service bias peaks
            (10, 2.0, 0.10),   # saturation onset
            (10, 5.0, 0.03),   # deep saturation: asymptotically exact
            (30, 7.5, 0.03),
        ],
    )
    def test_mva_tracks_simulation(self, num_agents, load, tolerance):
        scenario = equal_load(num_agents, load)
        think = scenario.agents[0].interrequest.mean
        simulated = run_simulation(scenario, "fcfs", self.SETTINGS)
        predicted = mva_closed_bus(num_agents, think)
        assert predicted.mean_waiting == pytest.approx(
            simulated.mean_waiting().mean, rel=tolerance
        )

    def test_simulator_hits_saturation_asymptote(self):
        scenario = equal_load(10, 5.0)
        result = run_simulation(scenario, "rr", self.SETTINGS)
        assert result.mean_waiting().mean == pytest.approx(
            saturated_mean_waiting(10, 1.0), rel=0.01
        )
        assert result.agent_throughput(5).mean == pytest.approx(
            saturated_per_agent_throughput(10), rel=0.03
        )

"""Tests for the declarative experiment grid layer (repro.experiments.spec)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import table_4_1, table_4_2, table_4_5
from repro.experiments.scale import SCALES
from repro.experiments.spec import (
    CellSpec,
    PanelSpec,
    RowSpec,
    build_table,
    build_tables,
    grid_rows,
    run_cells,
    settings_for,
)
from repro.workload.scenarios import equal_load, open_loop_equal_load

SMOKE = SCALES["smoke"]


class TestSettingsFor:
    def test_scale_knobs_copied(self):
        settings = settings_for(SMOKE, seed=42)
        assert settings.batches == SMOKE.batches
        assert settings.batch_size == SMOKE.batch_size
        assert settings.warmup == SMOKE.warmup
        assert settings.seed == 42

    def test_overrides_forwarded(self):
        settings = settings_for(SMOKE, seed=1, keep_samples=True)
        assert settings.keep_samples

    def test_each_call_returns_fresh_settings(self):
        assert settings_for(SMOKE, 1) is not settings_for(SMOKE, 1)


class TestCellSpecValidation:
    def test_unknown_protocol_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            CellSpec("x", equal_load(4, 1.0), "lottery", settings_for(SMOKE, 1))

    def test_capacity_mismatch_rejected_at_construction(self):
        scenario = open_loop_equal_load(4, 0.5, max_outstanding=4)
        with pytest.raises(ConfigurationError, match="r=4"):
            CellSpec("x", scenario, "rr", settings_for(SMOKE, 1))

    def test_fcfs_cell_accepts_open_loop_scenario(self):
        scenario = open_loop_equal_load(4, 0.5, max_outstanding=4)
        cell = CellSpec("x", scenario, "fcfs", settings_for(SMOKE, 1))
        assert cell.sweep_cell().protocol == "fcfs"


class TestRowSpec:
    def test_duplicate_cell_keys_rejected(self):
        settings = settings_for(SMOKE, 1)
        scenario = equal_load(4, 1.0)
        cells = (
            CellSpec("rr", scenario, "rr", settings),
            CellSpec("rr", scenario, "fcfs", settings),
        )
        with pytest.raises(ConfigurationError, match="duplicate cell keys"):
            RowSpec(label=1.0, cells=cells)


class TestGridRows:
    def test_one_row_per_label_one_cell_per_protocol(self):
        rows = grid_rows(
            (1.0, 2.0),
            ("rr", "fcfs"),
            lambda load: equal_load(4, load),
            settings_for(SMOKE, 1),
            lambda load, protocol: f"t/{load:g}/{protocol}",
        )
        assert [row.label for row in rows] == [1.0, 2.0]
        assert [cell.key for cell in rows[0].cells] == ["rr", "fcfs"]
        assert rows[1].cells[1].tag == "t/2/fcfs"

    def test_scenario_shared_within_a_row(self):
        rows = grid_rows(
            (1.5,),
            ("rr", "fcfs"),
            lambda load: equal_load(4, load),
            settings_for(SMOKE, 1),
            lambda load, protocol: protocol,
        )
        assert rows[0].cells[0].scenario is rows[0].cells[1].scenario


class TestBuildTable:
    def test_rows_assembled_in_declaration_order(self):
        def build_row(label, results):
            assert set(results) == {"rr", "fcfs"}
            return [f"{label:g}", results["rr"].protocol], {"load": label}

        panel = PanelSpec(
            title="unit",
            headers=("Load", "proto"),
            rows=grid_rows(
                (1.0, 2.0),
                ("rr", "fcfs"),
                lambda load: equal_load(4, load),
                settings_for(SMOKE, 1),
                lambda load, protocol: f"unit/{load:g}/{protocol}",
            ),
            build_row=build_row,
        )
        table = build_table(panel)
        assert [row["load"] for row in table.data] == [1.0, 2.0]
        assert table.rows[0] == ["1", "rr"]

    def test_results_keyed_by_cell_key_not_protocol(self):
        settings = settings_for(SMOKE, 1)
        scenario = equal_load(4, 1.0)
        panel = PanelSpec(
            title="unit",
            headers=("a", "b"),
            rows=(
                RowSpec(
                    label="x",
                    cells=(
                        CellSpec("first", scenario, "rr", settings),
                        CellSpec("second", scenario, "fcfs", settings),
                    ),
                ),
            ),
            build_row=lambda label, results: (
                [results["first"].protocol, results["second"].protocol],
                {},
            ),
        )
        assert build_table(panel).rows[0] == ["rr", "fcfs"]

    def test_run_cells_preserves_cell_order(self):
        settings = settings_for(SMOKE, 1)
        scenario = equal_load(4, 1.5)
        cells = [
            CellSpec("a", scenario, "fcfs", settings),
            CellSpec("b", scenario, "rr", settings),
        ]
        results = run_cells(cells)
        assert [r.protocol for r in results] == ["fcfs", "rr"]


class TestModuleSpecs:
    def test_table_modules_compile_to_specs(self):
        experiment = table_4_1.spec(sizes=(6,), loads=(1.5,), scale=SMOKE)
        assert experiment.name == "table-4.1"
        assert len(experiment.panels) == 1
        assert [cell.tag for cell in experiment.cells()] == [
            "t4.1/n6/L1.5/rr",
            "t4.1/n6/L1.5/fcfs",
        ]

    def test_spec_and_run_agree(self):
        experiment = table_4_2.spec(sizes=(6,), loads=(2.0,), scale=SMOKE)
        via_spec = build_tables(experiment)
        via_run = table_4_2.run(sizes=(6,), loads=(2.0,), scale=SMOKE)
        assert via_spec[0].render() == via_run[0].render()

    def test_table_4_5_spec_tags(self):
        experiment = table_4_5.spec(sizes=(10,), cvs=(0.0,), scale=SMOKE)
        assert [cell.tag for cell in experiment.cells()] == [
            "t4.5/n10/cv0/rr",
            "t4.5/n10/cv0/fcfs",
        ]

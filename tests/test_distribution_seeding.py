"""Regression pins for distribution RNG consumption.

The lane engine draws think times through :meth:`Distribution.sample_batch`
— including hand-inlined hot paths (``Exponential`` reimplements CPython's
``expovariate`` arithmetic) — while the event engine draws one at a time
through :meth:`sample`.  Cross-engine bit identity therefore rests on an
invisible contract: *for every distribution, the batch path consumes the
RNG stream exactly like the sample loop*.  A refactor that reordered a
uniform draw, changed ``1 - random()`` to ``random()``, or let a phase
update slip out of sync would silently break engine equivalence long
before a differential test localised it here.

Three pins per distribution family:

- batch == loop: ``sample_batch`` equals ``count`` calls to ``sample``
  from an equally-seeded generator, by strict float equality;
- chunking is invisible: two half-batches continue the stream exactly;
- literal values: the first draws from a fixed seed are pinned byte for
  byte, so even a coordinated change to both paths (which the equality
  checks cannot see) trips a failure that names the distribution.
"""

import random

import pytest

from repro.workload.arrivals import MarkovModulatedPoisson
from repro.workload.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Hyperexponential,
)
from repro.workload.traces import TraceDistribution

SEEDS = (1, 7, 19880530, 424242)

#: One representative per family, parameters chosen to exercise every
#: branch (multi-phase Erlang, CV > 1 hyperexponential, a two-rate MMPP
#: plus the on-off corner whose silent phase skips the uniform draw).
def _families():
    return {
        "deterministic": lambda: Deterministic(1.5),
        "exponential": lambda: Exponential(2.0),
        "erlang": lambda: Erlang(2.0, 4),
        "hyperexponential": lambda: Hyperexponential(2.0, 2.5),
        "mmpp": lambda: MarkovModulatedPoisson((1.5, 0.25), (0.2, 0.1)),
        "on-off": lambda: MarkovModulatedPoisson((2.0, 0.0), (0.4, 0.25)),
        "trace": lambda: TraceDistribution([0.5, 1.25, 2.0], cycle=True),
    }


@pytest.mark.parametrize("family", sorted(_families()))
@pytest.mark.parametrize("seed", SEEDS)
def test_sample_batch_equals_sample_loop(family, seed):
    build = _families()[family]
    loop_dist, batch_dist = build(), build()
    loop_rng, batch_rng = random.Random(seed), random.Random(seed)
    looped = [loop_dist.sample(loop_rng) for _ in range(200)]
    batched = batch_dist.sample_batch(batch_rng, 200)
    assert looped == batched  # strict float equality, no approx
    # and the generators are left in the same state (no extra draws)
    assert loop_rng.random() == batch_rng.random()


@pytest.mark.parametrize("family", sorted(_families()))
def test_chunked_batches_continue_the_stream(family):
    build = _families()[family]
    whole_dist, split_dist = build(), build()
    whole = whole_dist.sample_batch(random.Random(99), 100)
    split_rng = random.Random(99)
    split = split_dist.sample_batch(split_rng, 37) + split_dist.sample_batch(
        split_rng, 63
    )
    assert whole == split


#: First four draws from seed 19880530, pinned as literals.  These fail
#: only if the arithmetic itself changes — the loop-vs-batch checks
#: above cannot catch a change applied to both paths at once.
PINNED = {
    "exponential": (
        Exponential(2.0),
        [7.150154216381039, 1.1854590260554219, 0.8102383679083632, 0.9573678899017541],
    ),
    "erlang": (
        Erlang(2.0, 4),
        [1.5384413520765576, 1.8372540471686192, 5.54271525931017, 2.7950553099251363],
    ),
    "hyperexponential": (
        Hyperexponential(2.0, 2.5),
        [7.954122639521287, 0.5172269349406082, 1.67789993973717, 23.871444427608616],
    ),
    "mmpp": (
        MarkovModulatedPoisson((1.5, 0.25), (0.2, 0.1)),
        [2.1029865342297174, 0.23830540232598918, 0.34538711753558443, 1.6247948749432362],
    ),
}


@pytest.mark.parametrize("family", sorted(PINNED))
def test_pinned_draw_sequences(family):
    dist, expected = PINNED[family]
    assert dist.sample_batch(random.Random(19880530), 4) == expected


def test_expovariate_inline_matches_cpython_formula():
    # The Exponential batch path hand-inlines CPython's expovariate:
    # -log(1 - random()) / lambd.  Pin the equivalence against the
    # stdlib call itself, not just our own loop.
    rng_inline, rng_stdlib = random.Random(31), random.Random(31)
    batched = Exponential(0.75).sample_batch(rng_inline, 50)
    stdlib = [rng_stdlib.expovariate(1.0 / 0.75) for _ in range(50)]
    assert batched == stdlib

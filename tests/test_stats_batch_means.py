"""Tests for the batch-means confidence intervals."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import StatisticsError
from repro.stats.batch_means import BatchMeansEstimate, batch_means, t_quantile


class TestTQuantile:
    def test_paper_setting_nine_dof(self):
        # 10 batches → 9 degrees of freedom at 90% confidence.
        assert t_quantile(0.95, 9) == pytest.approx(1.833, abs=0.01)

    def test_one_dof(self):
        assert t_quantile(0.95, 1) == pytest.approx(6.314, abs=0.01)

    def test_large_dof_approaches_normal(self):
        assert t_quantile(0.95, 1000) == pytest.approx(1.645, abs=0.01)

    def test_95_confidence_values(self):
        assert t_quantile(0.975, 9) == pytest.approx(2.262, abs=0.01)

    def test_invalid_dof(self):
        with pytest.raises(StatisticsError):
            t_quantile(0.95, 0)

    def test_monotone_decreasing_in_dof(self):
        values = [t_quantile(0.95, df) for df in range(1, 40)]
        assert values == sorted(values, reverse=True)


class TestBatchMeans:
    def test_mean_of_batches(self):
        estimate = batch_means([2.0, 4.0, 6.0])
        assert estimate.mean == pytest.approx(4.0)

    def test_identical_batches_zero_halfwidth(self):
        estimate = batch_means([3.0] * 10)
        assert estimate.halfwidth == 0.0
        assert estimate.std_between == 0.0

    def test_paper_formula_ten_batches(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        estimate = batch_means(values, confidence=0.90)
        std = math.sqrt(sum((v - 5.5) ** 2 for v in values) / 9)
        expected = t_quantile(0.95, 9) * std / math.sqrt(10)
        assert estimate.halfwidth == pytest.approx(expected)

    def test_confidence_level_recorded(self):
        estimate = batch_means([1.0, 2.0], confidence=0.95)
        assert estimate.confidence == 0.95

    def test_wider_interval_at_higher_confidence(self):
        values = [1.0, 3.0, 2.0, 4.0, 5.0]
        assert (
            batch_means(values, 0.95).halfwidth > batch_means(values, 0.90).halfwidth
        )

    def test_nan_batches_dropped(self):
        estimate = batch_means([2.0, float("nan"), 4.0])
        assert estimate.batches == 2
        assert estimate.mean == pytest.approx(3.0)

    def test_too_few_batches_rejected(self):
        with pytest.raises(StatisticsError):
            batch_means([1.0])

    def test_all_nan_rejected(self):
        with pytest.raises(StatisticsError):
            batch_means([float("nan")] * 5)

    def test_invalid_confidence(self):
        with pytest.raises(StatisticsError):
            batch_means([1.0, 2.0], confidence=1.5)

    def test_covers(self):
        estimate = BatchMeansEstimate(
            mean=5.0, halfwidth=0.5, std_between=0.4, batches=10
        )
        assert estimate.covers(5.4)
        assert not estimate.covers(5.6)

    def test_relative_halfwidth(self):
        estimate = BatchMeansEstimate(
            mean=4.0, halfwidth=0.2, std_between=0.1, batches=10
        )
        assert estimate.relative_halfwidth == pytest.approx(0.05)

    def test_relative_halfwidth_zero_mean(self):
        estimate = BatchMeansEstimate(
            mean=0.0, halfwidth=0.2, std_between=0.1, batches=10
        )
        assert estimate.relative_halfwidth == math.inf

    def test_str_format(self):
        estimate = batch_means([1.0, 2.0, 3.0])
        assert "±" in str(estimate)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=2,
            max_size=30,
        )
    )
    def test_mean_within_sample_range(self, values):
        estimate = batch_means(values)
        assert min(values) - 1e-9 <= estimate.mean <= max(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=3, max_size=20),
        st.floats(min_value=-5.0, max_value=5.0),
    )
    def test_shift_invariance(self, values, shift):
        base = batch_means(values)
        shifted = batch_means([v + shift for v in values])
        assert shifted.mean == pytest.approx(base.mean + shift, abs=1e-6)
        assert shifted.halfwidth == pytest.approx(base.halfwidth, abs=1e-6)

"""Tests for the analytical AAP-1 batching model, incl. simulator validation."""

import pytest

from repro.analysis.batching import (
    aap1_extreme_ratio,
    aap1_miss_probabilities,
    aap1_relative_throughputs,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.distributions import Deterministic, Exponential
from repro.workload.scenarios import equal_load


class TestModelStructure:
    def test_lowest_identity_always_misses(self):
        q = aap1_miss_probabilities(16, Exponential(3.0))
        assert q[1] == 1.0

    def test_miss_probability_decreases_with_identity(self):
        q = aap1_miss_probabilities(16, Exponential(3.0))
        values = [q[agent] for agent in range(1, 17)]
        assert values == sorted(values, reverse=True)

    def test_highest_identity_rarely_misses(self):
        q = aap1_miss_probabilities(16, Exponential(3.0))
        assert q[16] < 0.05

    def test_ratio_approaches_two_for_short_thinks(self):
        # "in the worst case 100% more bandwidth" (§1).
        ratio = aap1_extreme_ratio(30, Exponential(0.1))
        assert ratio == pytest.approx(2.0, abs=0.02)

    def test_deterministic_think_gives_sharp_step(self):
        shares = aap1_relative_throughputs(16, Deterministic(3.0))
        values = sorted(set(round(v, 6) for v in shares.values()))
        assert len(values) == 2  # exactly half rate or full rate
        assert values[0] == pytest.approx(0.5)
        assert values[1] == pytest.approx(1.0)

    def test_relative_shares_normalised(self):
        shares = aap1_relative_throughputs(16, Exponential(3.0))
        assert shares[16] == pytest.approx(1.0)
        assert all(0.4 <= share <= 1.0 for share in shares.values())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            aap1_miss_probabilities(1, Exponential(3.0))
        with pytest.raises(ConfigurationError):
            aap1_miss_probabilities(8, Exponential(3.0), transaction_time=0.0)


class TestSimulatorValidation:
    @pytest.fixture(scope="class")
    def simulated(self):
        settings = SimulationSettings(batches=5, batch_size=2000, warmup=500, seed=9)
        result = run_simulation(equal_load(16, 4.0), "aap1", settings)
        shares = result.bandwidth_shares()
        top = max(shares.values())
        return (
            {agent: share / top for agent, share in shares.items()},
            result.extreme_throughput_ratio().mean,
        )

    def test_per_agent_shares_tracked(self, simulated):
        shares, __ = simulated
        model = aap1_relative_throughputs(16, Exponential(3.0))
        for agent in range(1, 17):
            assert model[agent] == pytest.approx(shares[agent], abs=0.07), agent

    def test_extreme_ratio_tracked(self, simulated):
        __, simulated_ratio = simulated
        predicted = aap1_extreme_ratio(16, Exponential(3.0))
        assert predicted == pytest.approx(simulated_ratio, rel=0.05)

    def test_paper_table_4_1b_heavy_load_anchor(self):
        # Table 4.1(b): AAP ratio 1.99 at 30 agents, load 7.5 (R̄ = 3).
        predicted = aap1_extreme_ratio(30, Exponential(3.0))
        assert predicted == pytest.approx(1.99, abs=0.06)

"""Model-based stress tests of the event calendar and simulator.

A reference model (sorted list with explicit tie-break keys) runs next
to the heap-based calendar through random schedule/cancel/pop
interleavings; the two must agree on every pop.
"""

import heapq

from hypothesis import given, settings as hyp_settings, strategies as st

from repro.engine.calendar import EventCalendar
from repro.engine.simulator import Simulator


class _ReferenceCalendar:
    """The obvious O(n log n) implementation, used as the oracle."""

    def __init__(self):
        self.items = []
        self.sequence = 0

    def schedule(self, time, priority, label):
        self.items.append((time, priority, self.sequence, label))
        self.sequence += 1

    def cancel(self, label):
        self.items = [item for item in self.items if item[3] != label]

    def pop(self):
        self.items.sort()
        return self.items.pop(0)[3]

    def __len__(self):
        return len(self.items)


operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("schedule"),
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=0, max_value=5),
        ),
        st.tuples(st.just("pop")),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=50)),
    ),
    min_size=1,
    max_size=120,
)


class TestCalendarAgainstReference:
    @given(operations)
    @hyp_settings(max_examples=60, deadline=None)
    def test_pops_agree_with_reference(self, ops):
        calendar = EventCalendar()
        reference = _ReferenceCalendar()
        live = {}
        counter = 0
        for op in ops:
            if op[0] == "schedule":
                __, time, priority = op
                label = f"e{counter}"
                counter += 1
                live[label] = calendar.schedule(
                    time, lambda: None, priority=priority, label=label
                )
                reference.schedule(time, priority, label)
            elif op[0] == "pop":
                assert len(calendar) == len(reference)
                if reference.items:
                    expected = reference.pop()
                    actual = calendar.pop().label
                    assert actual == expected
                    live.pop(actual, None)
            else:  # cancel the op[1]-th live event, if any
                if live:
                    label = sorted(live)[op[1] % len(live)]
                    calendar.cancel(live.pop(label))
                    reference.cancel(label)
        # Drain both completely and compare the tails.
        while reference.items:
            assert calendar.pop().label == reference.pop()
        assert len(calendar) == 0


class TestSimulatorClockMonotonicity:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=60
        )
    )
    @hyp_settings(max_examples=50, deadline=None)
    def test_fire_times_never_regress(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=30
        )
    )
    @hyp_settings(max_examples=50, deadline=None)
    def test_chained_scheduling_accumulates(self, delays):
        sim = Simulator()
        remaining = list(delays)
        fired = []

        def step():
            fired.append(sim.now)
            if remaining:
                sim.schedule(remaining.pop(0), step)

        sim.schedule(remaining.pop(0), step)
        sim.run()
        assert len(fired) == len(delays)
        assert abs(fired[-1] - sum(delays)) < 1e-6

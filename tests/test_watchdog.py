"""Tests for the bus watchdog: unit policy behaviour and end-to-end
fault recovery.

The integration tests pin seeds and fault times: the simulation is
deterministic, so each scenario reliably reproduces the §3.1 story —
a stuck line triggers a detected anomaly that the watchdog retries
through, a dropped winner broadcast kills rotating-priority RR
permanently while the static-identity variant sails through, and an
agent dropout window just redistributes bandwidth.
"""

import pytest

from repro.bus.watchdog import BusWatchdog, WatchdogPolicy
from repro.errors import ConfigurationError, NoUniqueWinnerError
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.stats.collector import CompletionCollector
from repro.workload.scenarios import equal_load


def _settings(seed, plan=None, **overrides):
    return SimulationSettings(
        batches=3, batch_size=80, warmup=40, seed=seed, fault_plan=plan, **overrides
    )


class TestWatchdogPolicy:
    def test_defaults_are_valid(self):
        policy = WatchdogPolicy()
        assert policy.max_attempts >= 1

    def test_exponential_backoff_sequence(self):
        policy = WatchdogPolicy(max_attempts=5, timeout=0.5, backoff=2.0)
        assert [policy.retry_delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WatchdogPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            WatchdogPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            WatchdogPolicy(backoff=0.5)

    def test_spec_key_is_canonical(self):
        assert WatchdogPolicy().spec_key() == [6, 0.5, 2.0]


class TestBusWatchdogUnit:
    def test_retries_then_gives_up(self):
        watchdog = BusWatchdog(WatchdogPolicy(max_attempts=3, timeout=1.0))
        assert watchdog.on_anomaly("no-winner", 10.0) == 1.0
        assert watchdog.on_anomaly("no-winner", 11.0) == 2.0
        assert watchdog.on_anomaly("no-winner", 13.0) is None
        assert watchdog.gave_up
        assert watchdog.anomalies_seen == 3

    def test_clean_grant_closes_episode_and_records_latency(self):
        collector = CompletionCollector(batches=2, batch_size=10, warmup=0)
        watchdog = BusWatchdog(WatchdogPolicy(max_attempts=5))
        watchdog.bind(collector)
        watchdog.on_anomaly("duplicate-winner", 10.0)
        watchdog.on_anomaly("duplicate-winner", 11.0)
        watchdog.on_clean_grant(12.5)
        assert watchdog.recoveries == 1
        assert not watchdog.gave_up
        assert collector.recovery_latencies == [2.5]
        assert collector.anomalies == {"duplicate-winner": 2}
        # The next anomaly starts a fresh episode with a fresh budget.
        assert watchdog.on_anomaly("no-winner", 20.0) == watchdog.policy.timeout

    def test_clean_grant_without_episode_is_a_no_op(self):
        watchdog = BusWatchdog()
        watchdog.on_clean_grant(5.0)
        assert watchdog.recoveries == 0

    def test_permanent_failure_recorded_in_collector(self):
        collector = CompletionCollector(batches=2, batch_size=10, warmup=0)
        watchdog = BusWatchdog(WatchdogPolicy(max_attempts=1))
        watchdog.bind(collector)
        assert watchdog.on_anomaly("no-winner", 0.0) is None
        assert collector.permanent_failure


class TestStuckLineRecovery:
    def test_anomaly_detected_and_recovered_within_window(self):
        # Line 0 stuck at 1 collides adjacent identities (§2.1's fully
        # encoded numbers differ in one bit); the watchdog retries until
        # the window clears and records the episode latency.
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=50.0, kind=FaultKind.STUCK_LINE, line=0,
                    stuck_value=1, duration=5.0,
                ),
            )
        )
        result = run_simulation(equal_load(6, 2.0), "rr", _settings(99, plan))
        assert not result.failed
        assert result.anomaly_counts() == {"duplicate-winner": 1}
        assert result.recovery_latencies() == [1.5]
        assert result.mean_recovery_latency() == 1.5

    def test_failed_run_with_tight_budget(self):
        # A long stuck-at-0 window on every line's LSB with a one-shot
        # watchdog: the first anomaly is terminal and the run still ends
        # gracefully with its partial batches preserved.
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=50.0, kind=FaultKind.STUCK_LINE, line=0,
                    stuck_value=1, duration=200.0,
                ),
            )
        )
        result = run_simulation(
            equal_load(6, 2.0), "rr",
            _settings(99, plan, watchdog=WatchdogPolicy(max_attempts=1)),
        )
        assert result.failed
        assert sum(result.anomaly_counts().values()) == 1
        assert result.collector.permanent_failure


class TestDroppedBroadcastContrast:
    """§3.1 executed end to end: one missed winner broadcast."""

    PLAN = FaultPlan(
        events=(
            FaultEvent(time=30.0, kind=FaultKind.DROPPED_BROADCAST, agent_id=3),
        )
    )

    def test_rotating_rr_fails_permanently(self):
        result = run_simulation(
            equal_load(10, 2.0), "rotating-rr", _settings(99, self.PLAN)
        )
        assert result.failed
        counts = result.anomaly_counts()
        assert set(counts) == {"duplicate-winner"}
        # Every retry re-raises: the watchdog burns its whole budget.
        assert counts["duplicate-winner"] == WatchdogPolicy().max_attempts
        assert result.recovery_latencies() == []

    def test_static_identity_rr_absorbs_the_same_fault(self):
        result = run_simulation(
            equal_load(10, 2.0), "rr-faulty-register", _settings(99, self.PLAN)
        )
        assert not result.failed
        assert result.anomaly_counts() == {}
        assert result.collector.satisfied()

    def test_without_watchdog_the_failure_raises(self):
        # The same desynchronisation outside the fault harness is a hard
        # protocol error, exactly as before the watchdog existed.
        from repro.baselines.rotating import RotatingPriorityRR

        arbiter = RotatingPriorityRR(5)
        for agent in range(1, 6):
            arbiter.request(agent, 0.0)
        arbiter.drop_winner_observations(2)
        with pytest.raises(NoUniqueWinnerError):
            for __ in range(25):
                outcome = arbiter.start_arbitration(0.0)
                arbiter.grant(outcome.winner, 0.0)
                arbiter.request(outcome.winner, 0.0)


class TestAgentDropout:
    def test_dropout_window_redistributes_bandwidth(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=50.0, kind=FaultKind.AGENT_DROPOUT,
                    agent_id=2, duration=30.0,
                ),
            )
        )
        faulted = run_simulation(equal_load(6, 2.0), "rr", _settings(99, plan))
        healthy = run_simulation(equal_load(6, 2.0), "rr", _settings(99))
        assert not faulted.failed
        assert faulted.collector.satisfied()
        # The victim lost roughly the window's worth of turns...
        assert faulted.collector.agent_totals[2] < healthy.collector.agent_totals[2]
        # ...but rejoined and kept completing afterwards.
        assert faulted.collector.agent_totals[2] > 0

"""Unit tests for repro.engine.simulator."""

import pytest

from repro.engine.event import EventPriority
from repro.engine.simulator import Simulator
from repro.engine.trace import Trace
from repro.errors import SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(4.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [4.0]


class TestRun:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_event_can_schedule_more(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert len(sim.calendar) == 1

    def test_run_until_with_empty_calendar_advances_clock(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_stop_condition(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(stop=lambda: len(fired) >= 3)
        assert len(fired) == 3

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except SimulationError as error:
                errors.append(error)

        sim.schedule(1.0, recurse)
        sim.run()
        assert len(errors) == 1

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_cancelled_event_not_fired(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        sim.cancel(event)
        sim.run()
        assert fired == ["kept"]


class TestTraceIntegration:
    def test_trace_records_fired_events(self):
        trace = Trace()
        sim = Simulator(trace=trace)
        sim.schedule(1.0, lambda: None, label="one")
        sim.schedule(2.0, lambda: None, label="two", priority=EventPriority.GRANT)
        sim.run()
        assert trace.labels() == ["one", "two"]

    def test_trace_records_times(self):
        trace = Trace()
        sim = Simulator(trace=trace)
        sim.schedule(1.5, lambda: None, label="x")
        sim.run()
        record = next(iter(trace))
        assert record.time == 1.5

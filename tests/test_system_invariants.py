"""Property tests: whole-system invariants under randomised workloads.

Hypothesis generates scenario parameters and a protocol; a full bus
simulation then has to satisfy the physical invariants no correct
arbiter may violate — one master at a time, no lost or invented
requests, waits bounded below by the hardware minimum, conservation of
work.
"""

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.bus.model import BusSystem
from repro.bus.timeline import ownership_segments
from repro.experiments.runner import PROTOCOLS, make_arbiter
from repro.stats.collector import CompletionCollector
from repro.workload.scenarios import equal_load


scenario_params = st.tuples(
    st.integers(min_value=2, max_value=16),                  # agents
    st.floats(min_value=0.2, max_value=4.0),                 # total load factor
    st.sampled_from([0.0, 0.5, 1.0]),                        # CV
    st.sampled_from(sorted(PROTOCOLS)),                      # protocol
    st.integers(min_value=0, max_value=2**16),               # seed
)


def _simulate(num_agents, load_factor, cv, protocol, seed, completions=300):
    total_load = min(load_factor, num_agents * 0.95)
    scenario = equal_load(num_agents, total_load, cv=cv)
    arbiter = make_arbiter(protocol, num_agents)
    collector = CompletionCollector(
        batches=2,
        batch_size=completions // 2,
        warmup=0,
        keep_records=True,
    )
    system = BusSystem(scenario, arbiter, collector, seed=seed)
    system.run()
    return system, collector


class TestPhysicalInvariants:
    @given(scenario_params)
    @hyp_settings(max_examples=25, deadline=None)
    def test_one_master_at_a_time(self, params):
        __, collector = _simulate(*params)
        ownership_segments(collector.records)  # raises on overlap

    @given(scenario_params)
    @hyp_settings(max_examples=25, deadline=None)
    def test_no_invented_completions(self, params):
        system, collector = _simulate(*params)
        issued = sum(agent.requests_issued for agent in system.agents.values())
        completed = sum(agent.completions for agent in system.agents.values())
        outstanding = sum(agent.outstanding for agent in system.agents.values())
        assert completed + outstanding == issued
        assert completed >= collector.total_recorded

    @given(scenario_params)
    @hyp_settings(max_examples=25, deadline=None)
    def test_waits_bounded_below(self, params):
        __, collector = _simulate(*params)
        # Hardware floor: one transaction; plus arbitration when idle.
        for record in collector.records:
            assert record.waiting_time >= 1.0 - 1e-9
            assert record.queueing_delay >= 0.0

    @given(scenario_params)
    @hyp_settings(max_examples=25, deadline=None)
    def test_utilization_and_clock_sane(self, params):
        system, collector = _simulate(*params)
        assert 0.0 < system.utilization() <= 1.0 + 1e-9
        last = max(record.completion_time for record in collector.records)
        assert system.simulator.now >= last - 1e-9

    @given(scenario_params)
    @hyp_settings(max_examples=15, deadline=None)
    def test_determinism(self, params):
        __, first = _simulate(*params, completions=150)
        __, second = _simulate(*params, completions=150)
        assert [r.agent_id for r in first.records] == [
            r.agent_id for r in second.records
        ]
        assert [r.completion_time for r in first.records] == [
            r.completion_time for r in second.records
        ]

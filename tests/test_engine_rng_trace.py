"""Unit tests for repro.engine.rng and repro.engine.trace."""

import pytest

from repro.engine.rng import RandomStreams, derive_seed
from repro.engine.trace import Trace


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "agent/1") == derive_seed(42, "agent/1")

    def test_differs_by_name(self):
        assert derive_seed(42, "agent/1") != derive_seed(42, "agent/2")

    def test_differs_by_master(self):
        assert derive_seed(1, "agent/1") != derive_seed(2, "agent/1")

    def test_64_bit_range(self):
        seed = derive_seed(7, "x")
        assert 0 <= seed < 2**64


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        first = RandomStreams(99).stream("agent/3").random()
        second = RandomStreams(99).stream("agent/3").random()
        assert first == second

    def test_streams_are_independent(self):
        streams = RandomStreams(5)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_adding_stream_does_not_perturb_existing(self):
        solo = RandomStreams(3)
        seq_before = [solo.agent_stream(1).random() for _ in range(5)]
        both = RandomStreams(3)
        both.agent_stream(2)  # created first, must not matter
        seq_after = [both.agent_stream(1).random() for _ in range(5)]
        assert seq_before == seq_after

    def test_agent_stream_shortcut(self):
        streams = RandomStreams(1)
        assert streams.agent_stream(4) is streams.stream("agent/4")


class TestTrace:
    def test_records_and_iterates(self):
        trace = Trace()
        trace.record(1.0, "grant", 1)
        trace.record(2.0, "release", 0)
        assert trace.labels() == ["grant", "release"]
        assert len(trace) == 2

    def test_capacity_evicts_oldest(self):
        trace = Trace(capacity=2)
        for i in range(4):
            trace.record(float(i), f"e{i}", 0)
        assert trace.labels() == ["e2", "e3"]

    def test_unbounded_capacity(self):
        trace = Trace(capacity=None)
        for i in range(100):
            trace.record(float(i), "e", 0)
        assert len(trace) == 100

    def test_matching_filters_by_substring(self):
        trace = Trace()
        trace.record(1.0, "grant:3", 1)
        trace.record(2.0, "release:3", 0)
        trace.record(3.0, "grant:5", 1)
        assert [r.label for r in trace.matching("grant")] == ["grant:3", "grant:5"]

    def test_clear(self):
        trace = Trace()
        trace.record(1.0, "x", 0)
        trace.clear()
        assert len(trace) == 0

    def test_str_format(self):
        trace = Trace()
        trace.record(1.25, "grant", 1)
        assert "grant" in str(next(iter(trace)))

    def test_capacity_property(self):
        assert Trace(capacity=7).capacity == 7
        assert Trace(capacity=None).capacity is None

    def test_indexing_counts_from_oldest_retained(self):
        trace = Trace(capacity=3)
        for i in range(5):
            trace.record(float(i), f"e{i}", 0)
        # Window holds e2..e4: index 0 is the oldest *retained* record.
        assert trace[0].label == "e2"
        assert trace[-1].label == "e4"
        with pytest.raises(IndexError):
            trace[3]

    def test_slicing_returns_lists_over_the_window(self):
        trace = Trace(capacity=4)
        for i in range(6):
            trace.record(float(i), f"e{i}", 0)
        assert [r.label for r in trace[1:3]] == ["e3", "e4"]
        assert [r.label for r in trace[-2:]] == ["e4", "e5"]
        assert trace[:] == list(trace)
        assert isinstance(trace[:2], list)

    def test_eviction_order_across_interleaved_appends(self):
        # Regression for the ring-buffer contract: after any interleaving
        # of appends past capacity, the window is exactly the last
        # `capacity` records, oldest first, and len() never exceeds it.
        trace = Trace(capacity=3)
        labels = []
        for i in range(10):
            trace.record(float(i), f"e{i}", 0)
            labels.append(f"e{i}")
            assert len(trace) == min(i + 1, 3)
            assert trace.labels() == labels[-3:]
            assert [r.label for r in trace] == labels[-3:]

"""Tests for deterministic fault plans and the line-fault perturbation.

A plan must be a pure function of its generation arguments (that purity
is what makes a robustness sweep cacheable and reproducible), and the
injector's ``perturb`` must classify perturbed line patterns exactly the
way a hardware monitor would: unique winner, all-zero, or collision.
"""

import json

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.core.base import ArbitrationOutcome
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import BUS_LEVEL_FAULTS, FaultEvent, FaultKind, FaultPlan

ALL_KINDS = tuple(sorted(FaultKind, key=lambda kind: kind.value))


def _outcome(winner, keys):
    return ArbitrationOutcome(
        winner=winner,
        rounds=1,
        competitors=frozenset(keys),
        keys=dict(keys),
    )


class TestFaultEvent:
    def test_point_fault_end_time_equals_time(self):
        event = FaultEvent(time=3.0, kind=FaultKind.LINE_GLITCH, line=2)
        assert event.end_time == 3.0

    def test_windowed_fault_end_time(self):
        event = FaultEvent(
            time=3.0, kind=FaultKind.STUCK_LINE, line=0, duration=2.5
        )
        assert event.end_time == 5.5

    def test_windowed_kinds_require_duration(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.STUCK_LINE)
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.AGENT_DROPOUT, agent_id=1)

    def test_agent_directed_kinds_require_victim(self):
        for kind in (FaultKind.DROPPED_BROADCAST, FaultKind.COUNTER_UPSET):
            with pytest.raises(ConfigurationError):
                FaultEvent(time=0.0, kind=kind)

    def test_field_validation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=-1.0, kind=FaultKind.LINE_GLITCH)
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.LINE_GLITCH, line=-1)
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.STUCK_LINE, duration=1.0, stuck_value=2)


class TestFaultPlanGenerate:
    def test_pure_function_of_arguments(self):
        args = dict(seed=7, rate=0.05, horizon=400.0, kinds=ALL_KINDS, num_agents=8)
        assert FaultPlan.generate(**args) == FaultPlan.generate(**args)

    def test_seed_changes_the_plan(self):
        base = dict(rate=0.05, horizon=400.0, kinds=ALL_KINDS, num_agents=8)
        assert FaultPlan.generate(seed=7, **base) != FaultPlan.generate(seed=8, **base)

    def test_events_sorted_and_inside_window(self):
        plan = FaultPlan.generate(
            seed=3, rate=0.1, horizon=300.0, kinds=ALL_KINDS, num_agents=5, start=50.0
        )
        assert len(plan) > 0
        times = [event.time for event in plan.events]
        assert times == sorted(times)
        assert all(50.0 <= t < 300.0 for t in times)

    def test_victims_and_kinds_in_range(self):
        plan = FaultPlan.generate(
            seed=11, rate=0.2, horizon=200.0, kinds=ALL_KINDS, num_agents=4
        )
        assert plan.kinds() <= set(ALL_KINDS)
        assert all(1 <= event.agent_id <= 4 for event in plan.events)

    def test_zero_rate_gives_empty_plan(self):
        plan = FaultPlan.generate(
            seed=1, rate=0.0, horizon=100.0, kinds=ALL_KINDS, num_agents=4
        )
        assert len(plan) == 0

    def test_argument_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(seed=1, rate=-0.1, horizon=10.0, kinds=ALL_KINDS, num_agents=2)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(seed=1, rate=0.1, horizon=1.0, kinds=ALL_KINDS, num_agents=2, start=5.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(seed=1, rate=0.1, horizon=10.0, kinds=(), num_agents=2)
        with pytest.raises(ConfigurationError):
            FaultPlan.generate(seed=1, rate=0.1, horizon=10.0, kinds=ALL_KINDS, num_agents=0)

    @given(
        seed=st.integers(0, 2**31),
        rate=st.floats(0.001, 0.5),
        num_agents=st.integers(1, 16),
    )
    @hyp_settings(max_examples=40, deadline=None)
    def test_generated_plans_always_valid_and_keyable(self, seed, rate, num_agents):
        plan = FaultPlan.generate(
            seed=seed, rate=rate, horizon=150.0, kinds=ALL_KINDS, num_agents=num_agents
        )
        # Every event passed FaultEvent validation; the spec key must be
        # canonical JSON (it feeds the result-cache digest).
        assert json.dumps(plan.spec_key())
        assert plan == FaultPlan.generate(
            seed=seed, rate=rate, horizon=150.0, kinds=ALL_KINDS, num_agents=num_agents
        )


class TestFaultPlanContainer:
    def test_events_sorted_on_construction(self):
        late = FaultEvent(time=9.0, kind=FaultKind.LINE_GLITCH)
        early = FaultEvent(time=1.0, kind=FaultKind.COUNTER_UPSET, agent_id=2)
        plan = FaultPlan(events=(late, early))
        assert plan.events == (early, late)

    def test_of_kind_filters(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=FaultKind.LINE_GLITCH),
                FaultEvent(time=2.0, kind=FaultKind.COUNTER_UPSET, agent_id=1),
            )
        )
        assert [e.kind for e in plan.of_kind(FaultKind.LINE_GLITCH)] == [
            FaultKind.LINE_GLITCH
        ]
        assert plan.kinds() == {FaultKind.LINE_GLITCH, FaultKind.COUNTER_UPSET}

    def test_bus_level_faults_exclude_agent_directed_kinds(self):
        assert FaultKind.DROPPED_BROADCAST not in BUS_LEVEL_FAULTS
        assert FaultKind.COUNTER_UPSET not in BUS_LEVEL_FAULTS


class TestPerturb:
    def test_no_due_faults_returns_clean_outcome(self):
        injector = FaultInjector(FaultPlan())
        outcome = _outcome(2, {1: 3, 2: 5})
        perturbed = injector.perturb(outcome, now=10.0)
        assert perturbed.anomaly is None
        assert perturbed.winner == 2
        assert not perturbed.deviated

    def test_glitch_consumed_once_and_can_deviate_winner(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=FaultKind.LINE_GLITCH, agent_id=1, line=2),
            )
        )
        injector = FaultInjector(plan)
        # Agent 1's key 3 gains bit 2 -> 7, beating agent 2's 5.
        perturbed = injector.perturb(_outcome(2, {1: 3, 2: 5}), now=1.5)
        assert perturbed.winner == 1
        assert perturbed.deviated
        assert perturbed.anomaly is None
        assert injector.applied == {"line-glitch": 1}
        # The glitch was transient: the next arbitration is untouched.
        again = injector.perturb(_outcome(2, {1: 3, 2: 5}), now=2.0)
        assert again.winner == 2 and not again.deviated

    def test_glitch_falls_back_to_lowest_competitor(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=1.0, kind=FaultKind.LINE_GLITCH, agent_id=9, line=0),
            )
        )
        injector = FaultInjector(plan)
        perturbed = injector.perturb(_outcome(4, {3: 2, 4: 4}), now=1.0)
        assert perturbed.keys[3] == 3  # agent 9 absent: lowest id hit

    def test_stuck_at_zero_can_erase_every_pattern(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=1.0, kind=FaultKind.STUCK_LINE, line=0,
                    stuck_value=0, duration=4.0,
                ),
            )
        )
        injector = FaultInjector(plan)
        perturbed = injector.perturb(_outcome(1, {1: 1}), now=2.0)
        assert perturbed.anomaly == "no-winner"

    def test_stuck_at_one_can_collide_adjacent_identities(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=1.0, kind=FaultKind.STUCK_LINE, line=0,
                    stuck_value=1, duration=4.0,
                ),
            )
        )
        injector = FaultInjector(plan)
        # Keys 4 (100) and 5 (101) differ only on line 0: stuck-at-1
        # makes them identical -> no unique winner on the lines.
        perturbed = injector.perturb(_outcome(5, {4: 4, 5: 5}), now=2.0)
        assert perturbed.anomaly == "duplicate-winner"

    def test_window_expires(self):
        plan = FaultPlan(
            events=(
                FaultEvent(
                    time=1.0, kind=FaultKind.STUCK_LINE, line=0,
                    stuck_value=1, duration=2.0,
                ),
            )
        )
        injector = FaultInjector(plan)
        perturbed = injector.perturb(_outcome(5, {4: 4, 5: 5}), now=3.5)
        assert perturbed.anomaly is None and perturbed.winner == 5

    def test_protocols_without_line_keys_are_untouchable(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time=0.0, kind=FaultKind.LINE_GLITCH, line=1),
            )
        )
        injector = FaultInjector(plan)
        perturbed = injector.perturb(_outcome(3, {}), now=5.0)
        assert perturbed.winner == 3 and perturbed.anomaly is None
        assert injector.applied == {}

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_command(self):
        args = build_parser().parse_args(["table", "4.1"])
        assert args.command == "table"
        assert args.number == "4.1"

    def test_invalid_table_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9.9"])

    def test_scale_option(self):
        args = build_parser().parse_args(["--scale", "smoke", "protocols"])
        assert args.scale == "smoke"

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "huge", "protocols"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.protocol == "rr"
        assert args.agents == 10

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_protocols_lists_registry(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for name in ("rr", "fcfs", "aap1", "central-rr", "hybrid"):
            assert name in out

    def test_run_prints_metrics(self, capsys):
        code = main(
            ["--scale", "smoke", "run", "--protocol", "fcfs", "--agents", "6", "--load", "2.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean W" in out
        assert "fairness" in out

    def test_table_smoke(self, capsys):
        assert main(["--scale", "smoke", "table", "4.5"]) == 0
        out = capsys.readouterr().out
        assert "Table 4.5" in out
        assert "10 agents" in out

    def test_figure_smoke(self, capsys):
        assert main(["--scale", "smoke", "figure"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4.1" in out
        assert "FCFS" in out

    def test_run_with_invalid_load_reports_error(self, capsys):
        code = main(["--scale", "smoke", "run", "--agents", "4", "--load", "8.0"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestCompareCommand:
    def test_compare_prints_all_requested_protocols(self, capsys):
        code = main(
            [
                "--scale", "smoke", "compare",
                "--protocols", "rr", "fcfs",
                "--agents", "6", "--load", "2.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rr" in out and "fcfs" in out and "t_N/t_1" in out

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.protocols == ["rr", "fcfs", "aap1", "aap2"]

    def test_compare_rejects_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--protocols", "lottery"])


class TestFigureCSVOption:
    def test_csv_written(self, tmp_path, capsys):
        target = tmp_path / "figure.csv"
        code = main(["--scale", "smoke", "figure", "--csv", str(target)])
        assert code == 0
        assert target.read_text().startswith("x,fcfs,rr")
        assert "series written" in capsys.readouterr().out

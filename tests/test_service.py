"""The arbitration service: admission, lifecycle, failure ladder.

Covers the robustness headline feature by feature, against real process
pools where the platform allows and the serial path everywhere else:

- bounded admission with explicit backpressure (reject + retry-after,
  scaled by backlog) — the queue is the service's *whole* memory
  commitment to unstarted work;
- the terminal-state guarantee: every accepted job reaches exactly one
  of done / failed / rejected / timeout, with RunOutcome provenance or
  a CellFailure diagnostic;
- per-job deadlines (queued and mid-run) and cell budgets;
- worker-crash recovery: respawn + bounded replay, then serial
  execution, then whole-pool degradation — results identical to an
  untroubled run at every rung;
- cross-client dedup and shared-cache replay;
- service counters and JSONL lifecycle telemetry.
"""

import pickle

import pytest

from repro.errors import ConfigurationError, ServiceError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SimulationSettings
from repro.service import (
    AdmissionController,
    ArbitrationService,
    BackoffPolicy,
    Job,
    JobBudget,
    ServiceConfig,
    ServiceEvent,
)
from repro.session.request import RunRequest
from repro.session.session import Session
from repro.workload.scenarios import equal_load

#: Fast, jitter-free pacing so crash tests never wait on real backoff.
FAST = BackoffPolicy(base=0.001, cap=0.01, jitter=0.0)

SETTINGS = SimulationSettings(batches=2, batch_size=30, warmup=5, seed=11)


def _request(seed=11, protocol="rr", agents=3, load=0.5, engine="batch"):
    return RunRequest(
        equal_load(agents, load), protocol, SimulationSettings(
            batches=2, batch_size=30, warmup=5, seed=seed, engine=engine
        )
    )


def _service(tmp_path=None, **overrides):
    overrides.setdefault("backoff", FAST)
    overrides.setdefault("poll_interval", 0.02)
    cache = ResultCache(tmp_path / "cache") if tmp_path is not None else None
    return ArbitrationService(cache=cache, config=ServiceConfig(**overrides))


def _fingerprint(result):
    return (
        result.elapsed,
        result.utilization,
        result.system_throughput().mean,
        result.mean_waiting().mean,
    )


class TestAdmissionController:
    def test_admits_until_the_limit_then_refuses_with_scaled_hint(self):
        admission = AdmissionController(limit=2, retry_after=0.1)
        assert admission.offer(Job("a", [])) is None
        assert admission.offer(Job("b", [])) is None
        hint = admission.offer(Job("c", []))
        assert hint == pytest.approx(0.1 * 2)  # base x backlog
        assert admission.high_water == 2

    def test_take_drains_fifo_up_to_the_gather_limit(self):
        admission = AdmissionController(limit=8)
        for name in "abcd":
            admission.offer(Job(name, []))
        first = admission.take(3, timeout=0)
        assert [job.job_id for job in first] == ["a", "b", "c"]
        assert [job.job_id for job in admission.take(3, timeout=0)] == ["d"]

    def test_closed_controller_refuses_but_stays_takeable(self):
        admission = AdmissionController(limit=4)
        admission.offer(Job("queued", []))
        admission.close()
        assert admission.offer(Job("late", [])) is not None
        assert [job.job_id for job in admission.take(4, timeout=0)] == ["queued"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(limit=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(retry_after=0.0)


class TestJobLifecycle:
    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            JobBudget(deadline=-1.0)
        with pytest.raises(ConfigurationError):
            JobBudget(max_cells=0)
        assert JobBudget(deadline=0.0).deadline == 0.0  # zero is legal

    def test_terminal_state_is_written_exactly_once(self):
        job = Job("once", [])
        job._finish("done", outcomes=[])
        job._finish("failed", error="too late")
        assert job.state == "done"
        assert job.error is None

    def test_results_raise_with_state_and_diagnostic(self):
        job = Job("sad", [])
        job._finish("timeout", error="deadline expired after 0.100s")
        with pytest.raises(ServiceError, match="timeout.*deadline expired"):
            job.results()

    def test_service_event_json_is_canonical(self):
        event = ServiceEvent(seq=3, kind="admit", job_id="job-1", state="queued")
        assert event.to_json() == (
            '{"detail":"","job_id":"job-1","kind":"admit","seq":3,"state":"queued"}'
        )


class TestHappyPath:
    def test_job_runs_to_done_with_provenance(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            job = service.submit([_request(protocol="rr"), _request(protocol="fcfs")])
            assert job.wait(60)
            assert job.state == "done"
            assert [outcome.route for outcome in job.outcomes] == ["lanes", "lanes"]
            assert all(outcome.stored for outcome in job.outcomes)
            assert len(job.results()) == 2

    def test_second_client_replays_from_the_shared_cache(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            first = service.submit([_request()])
            first.wait(60)
            second = service.submit([_request()])
            second.wait(60)
            assert [outcome.route for outcome in second.outcomes] == ["cache"]
            assert pickle.dumps(first.results()[0]) == pickle.dumps(
                second.results()[0]
            )
            counters = service.stats_snapshot()["counters"]
            assert counters["service.cache_hits"] == 1
            assert counters["service.executed"] == 1

    def test_identical_requests_in_one_gather_dedup(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            job = service.submit([_request(), _request()])
            job.wait(60)
            assert job.state == "done"
            assert len(job.outcomes) == 2
            assert service.stats_snapshot()["counters"]["service.deduplicated"] == 1
            # Only one execution happened; both slots carry its result.
            assert service.stats_snapshot()["counters"]["service.executed"] == 1

    def test_empty_job_is_done_immediately(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            job = service.submit([])
            assert job.state == "done"
            assert job.results() == []

    def test_results_byte_identical_to_direct_session(self, tmp_path):
        requests = [_request(protocol="rr"), _request(protocol="fcfs")]
        with _service(tmp_path, serial=True) as service:
            job = service.submit(list(requests))
            job.wait(60)
            served = job.results()
        direct = [
            outcome.result for outcome in Session().run_requests(list(requests))
        ]
        assert [pickle.dumps(a) for a in served] == [pickle.dumps(b) for b in direct]


class TestBackpressureAndBudgets:
    def test_full_queue_rejects_with_retry_after(self):
        service = _service(queue_limit=1, serial=True)
        # Stuff the queue directly so the dispatcher (never started)
        # cannot drain it under the test.
        service.admission.offer(Job("blocker", [_request()]))
        job = service.submit([_request(seed=99)])
        assert job.state == "rejected"
        assert job.retry_after is not None and job.retry_after > 0
        assert "queue full" in job.error
        service.close(drain=False)

    def test_cell_budget_rejects_before_queueing(self, tmp_path):
        with _service(tmp_path, serial=True, default_max_cells=1) as service:
            job = service.submit([_request(seed=1), _request(seed=2)])
            assert job.state == "rejected"
            assert "max_cells" in job.error
            assert service.stats_snapshot()["counters"]["service.rejected"] == 1

    def test_rejected_jobs_never_reach_the_queue(self, tmp_path):
        with _service(tmp_path, serial=True, default_max_cells=1) as service:
            service.submit([_request(seed=1), _request(seed=2)])
            assert len(service.admission) == 0


class TestDeadlines:
    def test_zero_deadline_expires_at_dispatch(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            job = service.submit([_request()], deadline=0.0)
            assert job.wait(30)
            assert job.state == "timeout"
            assert "deadline expired" in job.error
            counters = service.stats_snapshot()["counters"]
            assert counters["service.deadline_exceeded"] == 1

    def test_deadline_survivors_unaffected_in_the_same_gather(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            doomed = service.submit([_request(seed=1)], deadline=0.0)
            healthy = service.submit([_request(seed=2)])
            assert doomed.wait(30) and healthy.wait(60)
            assert doomed.state == "timeout"
            assert healthy.state == "done"

    def test_default_deadline_applies_when_job_brings_none(self, tmp_path):
        with _service(tmp_path, serial=True, default_deadline=0.0) as service:
            job = service.submit([_request()])
            job.wait(30)
            assert job.state == "timeout"


@pytest.mark.slow
class TestCrashRecovery:
    def test_worker_crash_is_replayed_and_heals(self, tmp_path):
        with _service(tmp_path, shards=1, workers=1) as service:
            service.pool.arm_kills(1)
            job = service.submit([_request()])
            assert job.wait(60)
            assert job.state == "done"
            assert job.attempts == 1
            counters = service.stats_snapshot()["counters"]
            assert counters["service.crashes"] == 1
            assert counters["service.retried"] == 1
            assert service.pool.respawns == 1

    def test_crashed_replay_matches_untroubled_run_exactly(self, tmp_path):
        with _service(tmp_path, shards=1, workers=1) as service:
            service.pool.arm_kills(1)
            job = service.submit([_request()])
            job.wait(60)
            crashed = job.results()[0]
        clean = Session().run_requests([_request()])[0].result
        assert pickle.dumps(crashed) == pickle.dumps(clean)

    def test_repeated_crash_runs_serially_instead_of_spinning(self, tmp_path):
        with _service(tmp_path, shards=1, workers=1, max_replays=1) as service:
            service.pool.arm_kills(2)  # the replay crashes too
            job = service.submit([_request()])
            assert job.wait(60)
            assert job.state == "done"  # second crash -> in-process serial run
            assert service.pool.crashes == 2

    def test_respawn_budget_exhaustion_degrades_the_pool(self, tmp_path):
        with _service(
            tmp_path, shards=1, workers=1, max_respawns=0, max_replays=5
        ) as service:
            service.pool.arm_kills(1)
            job = service.submit([_request()])
            assert job.wait(60)
            assert job.state == "done"
            assert service.pool.degraded
            counters = service.stats_snapshot()["counters"]
            assert counters["service.degraded"] == 1
            # Later jobs keep completing on the serial path.
            follow_up = service.submit([_request(seed=77)])
            assert follow_up.wait(60)
            assert follow_up.state == "done"

    def test_one_crash_consumes_one_respawn_despite_queued_payloads(self, tmp_path):
        # One dead worker fails every queued future of its shard with
        # BrokenProcessPool at once; shard generations make that cost a
        # single respawn, with the stranded payloads replayed on the
        # replacement pool — so one respawn in the budget is enough.
        with _service(
            tmp_path, shards=1, workers=1, max_respawns=1, max_replays=1
        ) as service:
            service.pool.arm_kills(1)
            # engine="event" routes each cell as its own direct payload,
            # so several futures queue behind the one that kills the pool.
            job = service.submit([_request(seed=s, engine="event") for s in range(4)])
            assert job.wait(60)
            assert job.state == "done", job.error
            assert service.pool.respawns == 1
            assert not service.pool.degraded

    def test_degradation_drops_no_queued_payload(self, tmp_path):
        # Respawn-budget exhaustion degrades the pool while several
        # payloads are still pending across both shards; every one must
        # be drained to the serial path, none silently cancelled.
        with _service(
            tmp_path, shards=2, workers=1, max_respawns=0, max_replays=5
        ) as service:
            service.pool.arm_kills(1)
            job = service.submit([_request(seed=s, engine="event") for s in range(6)])
            assert job.wait(60)
            assert job.state == "done", job.error
            assert service.pool.degraded
        clean = Session().run_requests(
            [_request(seed=s, engine="event") for s in range(6)]
        )
        for mine, theirs in zip(job.outcomes, clean):
            assert pickle.dumps(mine.result) == pickle.dumps(theirs.result)


class TestFailureDiagnostics:
    def test_failing_cell_fails_the_job_with_cell_failure(self, tmp_path, monkeypatch):
        import repro.session.single as single_module

        def doomed(scenario, protocol, settings):
            raise RuntimeError("deterministic bug")

        monkeypatch.setattr(single_module, "run_cell", doomed)
        with _service(tmp_path, serial=True) as service:
            # engine="event" routes the cell down the direct per-cell
            # path, which is what the patched run_cell intercepts.
            job = service.submit([_request(engine="event")], tag="doomed-job")
            assert job.wait(60)
            assert job.state == "failed"
            assert job.failure is not None
            assert job.failure.protocol == "rr"
            assert "deterministic bug" in job.failure.error
            assert service.stats_snapshot()["counters"]["service.failed"] == 1

    def test_close_without_drain_fails_queued_jobs_terminally(self):
        service = _service(serial=True)
        job = Job("stranded", [_request()])
        service.admission.offer(job)  # dispatcher never started
        service.close(drain=False)
        assert job.state == "failed"
        assert "service stopped" in job.error

    def test_submit_after_close_is_rejected(self, tmp_path):
        service = _service(tmp_path, serial=True)
        service.close()
        job = service.submit([_request()])
        assert job.state == "rejected"
        assert "shutting down" in job.error


class TestRegistryRetention:
    def test_oldest_terminal_jobs_are_evicted_beyond_the_cap(self):
        service = _service(serial=True, job_retention=2)
        try:
            jobs = [service.submit([]) for _ in range(5)]  # empty => done at submit
            assert all(job.state == "done" for job in jobs)
            assert len(service._jobs) <= 2
            with pytest.raises(ServiceError, match="retention"):
                service.job(jobs[0].job_id)
            # Evicted states still count in the aggregate snapshot.
            assert service.stats_snapshot()["jobs"]["done"] == 5
        finally:
            service.close()

    def test_active_jobs_are_never_evicted(self):
        service = _service(serial=True, job_retention=1)
        try:
            stranded = Job("stuck", [_request()])  # queued, never dispatched
            service._jobs[stranded.job_id] = stranded
            for _ in range(3):
                service.submit([])
            assert "stuck" in service._jobs
        finally:
            service.close()

    def test_retention_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(job_retention=0)


class TestExecutorDuckType:
    def test_run_requests_returns_outcomes_in_order(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            outcomes = service.run_requests(
                [_request(protocol="rr"), _request(protocol="fcfs")]
            )
            assert [outcome.request.protocol for outcome in outcomes] == [
                "rr", "fcfs"
            ]

    def test_simulate_single_run(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            result = service.simulate(equal_load(3, 0.5), "rr", SETTINGS)
            assert result.utilization > 0

    def test_session_can_front_a_service(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            session = Session(executor=service)
            session.submit(equal_load(3, 0.5), "rr", SETTINGS)
            session.submit(equal_load(3, 0.5), "rr", SETTINGS)  # dedups in Session
            outcomes = session.gather()
            assert [outcome.route for outcome in outcomes][1] == "dedup"


class TestTelemetry:
    def test_lifecycle_events_stream_as_jsonl(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        cache = ResultCache(tmp_path / "cache")
        config = ServiceConfig(
            serial=True, backoff=FAST, poll_interval=0.02, jsonl_path=str(path)
        )
        with ArbitrationService(cache=cache, config=config) as service:
            done = service.submit([_request()])
            done.wait(60)
            rejected = service.submit(
                [_request(seed=5), _request(seed=7)], max_cells=1
            )
            assert rejected.state == "rejected"
            timed_out = service.submit([_request(seed=6)], deadline=0.0)
            timed_out.wait(60)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        kinds = [line["kind"] for line in lines]
        assert kinds[0] == "admit"
        assert "terminal" in kinds and "deadline" in kinds
        seqs = [line["seq"] for line in lines]
        assert seqs == sorted(seqs)  # stream order is the sequence order

    def test_snapshot_shape(self, tmp_path):
        with _service(tmp_path, serial=True) as service:
            job = service.submit([_request()])
            job.wait(60)
            snapshot = service.stats_snapshot()
        assert snapshot["backlog"] == 0
        assert snapshot["queue_limit"] == 64
        assert snapshot["jobs"] == {"done": 1}
        assert snapshot["pool"]["degraded"] is True  # serial config

"""Tests for the line-level control-acquisition handshake.

The headline test cross-validates the handshake machine against the
abstract BusSystem: same arrivals in, identical grants and timing out.
"""

import pytest

from repro.baselines.central import CentralFCFS
from repro.core.round_robin import DistributedRoundRobin
from repro.engine.simulator import Simulator
from repro.engine.event import EventPriority
from repro.errors import ProtocolError
from repro.bus.handshake import AgentState, HandshakeBus


def _bus(num_agents=4, arbiter=None, **kwargs):
    completions = []
    bus = HandshakeBus(
        arbiter or DistributedRoundRobin(num_agents),
        on_completion=lambda *record: completions.append(record),
        **kwargs,
    )
    return bus, completions


class TestLineBehaviour:
    def test_idle_bus_lines_low(self):
        bus, __ = _bus()
        assert bus.line_levels() == {"BR": False, "AP": False, "BB": False}

    def test_request_raises_br(self):
        bus, __ = _bus()
        bus.request(2)
        assert bus.line_levels()["BR"] is True
        assert bus.state[2] is AgentState.REQUESTING

    def test_ap_rises_then_bb(self):
        bus, __ = _bus()
        bus.request(2)
        bus.simulator.step()  # the kick: AP rises
        assert bus.line_levels()["AP"] is True
        assert bus.state[2] is AgentState.COMPETING
        bus.simulator.step()  # AP falls: winner pending, seizes idle bus
        assert bus.line_levels() == {"BR": False, "AP": False, "BB": True}
        assert bus.state[2] is AgentState.MASTER

    def test_loser_stays_on_br(self):
        bus, __ = _bus()
        bus.request(1)
        bus.request(3)
        bus.simulator.run(until=0.5)
        assert bus.state[3] is AgentState.MASTER
        # The loser drops back to REQUESTING when AP falls — and joins
        # the next arbitration, which starts at the winner's grant, so
        # by the end of the same instant it is competing again.
        assert bus.state[1] in (AgentState.REQUESTING, AgentState.COMPETING)
        assert bus.line_levels()["BR"] is True

    def test_tenure_end_releases_bb(self):
        bus, completions = _bus()
        bus.request(2)
        bus.simulator.run()
        assert bus.line_levels()["BB"] is False
        assert completions == [(2, 0.0, 0.5, 1.5)]

    def test_double_request_rejected(self):
        bus, __ = _bus()
        bus.request(2)
        with pytest.raises(ProtocolError):
            bus.request(2)


class TestHandshakeTiming:
    def test_overlapped_arbitration_back_to_back(self):
        bus, completions = _bus()
        bus.request(1)
        bus.request(2)
        bus.request(3)
        bus.simulator.run()
        grant_times = [grant for grant, __ in bus.grant_log]
        assert grant_times == pytest.approx([0.5, 1.5, 2.5])

    def test_second_arbitration_starts_at_grant(self):
        bus, __ = _bus()
        bus.request(1)
        bus.request(2)
        bus.simulator.run(until=0.6)
        # First master granted at 0.5; the next arbitration's AP must
        # already be up, overlapping the tenure.
        assert bus.line_levels()["AP"] is True

    def test_fcfs_arbiter_drives_handshake(self):
        bus, __ = _bus(arbiter=CentralFCFS(4))
        bus.request(3)
        bus.simulator.run(until=0.2)
        bus.request(4)
        bus.simulator.run()
        assert [agent for __, agent in bus.grant_log] == [3, 4]


class TestCrossValidationAgainstBusSystem:
    def test_identical_grants_and_timing(self):
        """The §4.1 abstraction check: the line-level machine reproduces
        BusSystem's behaviour event for event."""
        from repro.bus.model import BusSystem
        from repro.stats.collector import CompletionCollector
        from repro.workload.distributions import Exponential
        from repro.workload.scenarios import AgentSpec, ScenarioSpec

        num_agents = 6
        scenario = ScenarioSpec(
            name="xval",
            agents=tuple(
                AgentSpec(agent_id=i, interrequest=Exponential(2.0))
                for i in range(1, num_agents + 1)
            ),
        )
        collector = CompletionCollector(
            batches=2, batch_size=400, warmup=0, keep_records=True
        )
        system = BusSystem(
            scenario, DistributedRoundRobin(num_agents), collector, seed=33
        )
        system.run()
        reference = [
            (record.agent_id, record.issue_time, record.grant_time)
            for record in collector.records
        ]

        # Drive the handshake bus with the *same arrival instants*.
        arrivals = sorted(
            (record.issue_time, record.agent_id) for record in collector.records
        )
        completions = []
        bus = HandshakeBus(
            DistributedRoundRobin(num_agents),
            on_completion=lambda *record: completions.append(record),
        )
        for time, agent in arrivals:
            bus.simulator.schedule_at(
                time,
                lambda agent=agent: bus.request(agent),
                priority=EventPriority.REQUEST,
            )
        bus.simulator.run()

        produced = [
            (agent, issue, grant) for agent, issue, grant, __ in completions
        ]
        assert len(produced) == len(reference)
        for ours, theirs in zip(produced, reference):
            assert ours[0] == theirs[0]
            assert ours[1] == pytest.approx(theirs[1])
            assert ours[2] == pytest.approx(theirs[2])

"""Tests for the robustness experiment grid and its CLI entry point.

The load-bearing acceptance property: the grid is deterministic — two
runs at the same scale and seed render byte-identical tables, whether
cells execute serially or across worker processes — and it reproduces
the §3.1 contrast (static-identity RR recovers, rotating-priority RR
fails permanently) at smoke scale.
"""

import pytest

from repro.experiments import robustness
from repro.experiments.scale import SCALES
from repro.experiments.sweep import SweepExecutor
from repro.faults.plan import FaultKind

SMOKE = SCALES["smoke"]
SEED = 19880530


def _render(tables):
    return "\n\n".join(table.render() for table in tables)


@pytest.fixture(scope="module")
def grid_tables():
    """One full smoke-scale grid, shared by the assertion tests."""
    return robustness.run(scale=SMOKE, seed=SEED, executor=SweepExecutor(jobs=1))


class TestFaultPlanSelection:
    def test_plans_are_deterministic(self):
        first = robustness.fault_plan_for("rr-faulty-register", 0.05, SMOKE, SEED)
        second = robustness.fault_plan_for("rr-faulty-register", 0.05, SMOKE, SEED)
        assert first == second and len(first) > 0

    def test_kinds_respect_declared_capabilities(self):
        plan = robustness.fault_plan_for("fcfs-glitchable", 0.05, SMOKE, SEED)
        assert FaultKind.COUNTER_UPSET in plan.kinds()
        assert FaultKind.DROPPED_BROADCAST not in plan.kinds()
        rr_plan = robustness.fault_plan_for("rotating-rr", 0.05, SMOKE, SEED)
        assert FaultKind.COUNTER_UPSET not in rr_plan.kinds()

    def test_dropout_excluded_from_grid_plans(self):
        for protocol in robustness.ROBUSTNESS_PROTOCOLS:
            plan = robustness.fault_plan_for(protocol, 0.2, SMOKE, SEED)
            assert FaultKind.AGENT_DROPOUT not in plan.kinds()


class TestGridDeterminism:
    def test_repeat_run_renders_byte_identical(self, grid_tables):
        again = robustness.run(scale=SMOKE, seed=SEED, executor=SweepExecutor(jobs=1))
        assert _render(again) == _render(grid_tables)

    def test_parallel_matches_serial_byte_for_byte(self, grid_tables):
        parallel = robustness.run(
            scale=SMOKE, seed=SEED, executor=SweepExecutor(jobs=2)
        )
        assert _render(parallel) == _render(grid_tables)


class TestSection31Contrast:
    def _panel(self, grid_tables, protocol):
        for table in grid_tables:
            if protocol in table.title:
                return table
        raise AssertionError(f"no panel for {protocol}")

    def test_static_identity_rr_never_fails(self, grid_tables):
        panel = self._panel(grid_tables, "rr-faulty-register")
        assert all(not record["failed"] for record in panel.data)
        # At the highest rate faults landed and the watchdog recovered.
        top = panel.data[-1]
        assert top["planned_faults"] > 0
        assert top["anomalies"] == top["recoveries"]
        assert top["anomalies"] > 0
        assert top["mean_recovery_latency"] is not None

    def test_rotating_rr_fails_permanently_once_faults_land(self, grid_tables):
        panel = self._panel(grid_tables, "rotating-rr")
        landed = [r for r in panel.data if r["planned_faults"] > 0]
        assert landed, "no non-empty fault plans in the rotating panel"
        assert all(record["failed"] for record in landed)
        assert all(record["recoveries"] == 0 for record in landed)

    def test_fcfs_counter_upsets_stay_contained(self, grid_tables):
        panel = self._panel(grid_tables, "fcfs-glitchable")
        assert all(not record["failed"] for record in panel.data)

    def test_failed_rows_render_fail_marker(self, grid_tables):
        panel = self._panel(grid_tables, "rotating-rr")
        for row, record in zip(panel.rows, panel.data):
            assert (row[-1] == "FAIL") == record["failed"]


class TestFaultsCli:
    def test_faults_subcommand_prints_grid(self, capsys):
        from repro.cli import main

        status = main(
            [
                "--scale", "smoke",
                "faults",
                "--protocols", "rotating-rr",
                "--rates", "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "Robustness: rotating-rr" in out
        assert "FAIL" in out

    def test_unsupported_fault_kind_rejected_cleanly(self, capsys):
        # central-rr declares only agent-dropout: the grid's bus-level
        # plans must be rejected at configuration time, as a CLI error.
        from repro.cli import main

        status = main(
            ["--scale", "smoke", "faults", "--protocols", "central-rr"]
        )
        assert status == 1
        assert "central-rr" in capsys.readouterr().err

"""Unit tests for the observability layer: events, sinks, metrics, wiring."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cache import cache_key
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.observability import (
    ArbitrationEvent,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    MetricsSink,
    NullSink,
    ROUNDS_BUCKETS,
    TeeSink,
    TelemetrySettings,
    event_from_dict,
    merge_metrics,
    render_metrics,
)
from repro.workload.scenarios import equal_load

from _utils import quick_settings


EVENT = ArbitrationEvent(
    index=3,
    time=12.5,
    competitors=(1, 4, 7),
    winner=7,
    rounds=2,
    settle_time=1.0,
    anomaly=None,
    watchdog_attempt=1,
    fault_tags=("deviated",),
)


class TestArbitrationEvent:
    def test_json_round_trip_is_exact(self):
        line = EVENT.to_json()
        assert event_from_dict(json.loads(line)) == EVENT
        assert event_from_dict(json.loads(line)).to_json() == line

    def test_canonical_encoding_has_fixed_field_order(self):
        payload = EVENT.to_json()
        assert payload.startswith('{"index":3,"time":12.5,"competitors":[1,4,7],')
        assert " " not in payload

    def test_unknown_fields_rejected(self):
        payload = EVENT.to_dict()
        payload["extra"] = 1
        with pytest.raises(ConfigurationError, match="unknown ArbitrationEvent"):
            event_from_dict(payload)

    def test_optional_fields_default(self):
        minimal = {
            "index": 0,
            "time": 0.0,
            "competitors": [2],
            "winner": 2,
            "rounds": 1,
            "settle_time": 0.5,
        }
        event = event_from_dict(minimal)
        assert event.anomaly is None
        assert event.watchdog_attempt == 0
        assert event.fault_tags == ()


class TestTelemetrySettings:
    def test_all_off_is_rejected(self):
        with pytest.raises(ConfigurationError, match="records nothing"):
            TelemetrySettings()

    def test_spec_key_distinguishes_knobs(self):
        keys = {
            tuple(TelemetrySettings(events=True).spec_key()),
            tuple(TelemetrySettings(metrics=True).spec_key()),
            tuple(TelemetrySettings(events=True, metrics=True).spec_key()),
            tuple(TelemetrySettings(jsonl_path="t.jsonl").spec_key()),
        }
        assert len(keys) == 4


class TestSinks:
    def test_in_memory_sink_retains_order(self):
        sink = InMemorySink()
        events = [
            ArbitrationEvent(i, float(i), (1,), 1, 1, 0.5) for i in range(5)
        ]
        for event in events:
            sink.emit(event)
        assert list(sink) == events
        assert len(sink) == 5

    def test_null_sink_discards(self):
        sink = NullSink()
        sink.emit(EVENT)
        sink.close()

    def test_jsonl_sink_writes_canonical_lines(self, tmp_path):
        path = tmp_path / "nested" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.emit(EVENT)
        sink.close()
        assert sink.emitted == 1
        assert path.read_text(encoding="utf-8") == EVENT.to_json() + "\n"

    def test_jsonl_sink_does_not_close_borrowed_handles(self, tmp_path):
        with (tmp_path / "trace.jsonl").open("w", encoding="utf-8") as handle:
            sink = JsonlSink(handle)
            sink.emit(EVENT)
            sink.close()
            assert not handle.closed

    def test_tee_fans_out_in_order(self):
        first, second = InMemorySink(), InMemorySink()
        tee = TeeSink(first, second)
        tee.emit(EVENT)
        tee.close()
        assert first.events == [EVENT] == second.events


class TestMetricsRegistry:
    def test_histogram_buckets_are_inclusive_with_overflow(self):
        histogram = Histogram("h", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 4.0, 9.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.mean == pytest.approx(16.0 / 5)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            Histogram("h", (2.0, 1.0))

    def test_histogram_merge_requires_identical_bounds(self):
        left = Histogram("h", (1.0, 2.0))
        right = Histogram("h", (1.0, 3.0))
        with pytest.raises(ConfigurationError, match="identical buckets"):
            left.merge(right)

    def test_registry_bounds_mismatch_on_reuse(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1.0, 2.0))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.histogram("h", (1.0, 3.0))

    def test_counter_rejects_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            registry.counter("c").increment(-1)

    def test_merge_is_associative_and_none_tolerant(self):
        def build(value):
            registry = MetricsRegistry()
            registry.counter("c").increment(value)
            registry.histogram("h", ROUNDS_BUCKETS).observe(float(value))
            return registry

        left, mid, right = build(1), build(2), build(3)
        one_way = merge_metrics([left, None, mid, right])
        other = merge_metrics([merge_metrics([left, mid]), right])
        assert one_way == other
        assert one_way.counter("c").value == 6

    def test_metrics_sink_separates_grants_from_anomalies(self):
        registry = MetricsRegistry()
        sink = MetricsSink(registry)
        sink.emit(ArbitrationEvent(0, 0.0, (1, 2), 2, 1, 0.5))
        sink.emit(
            ArbitrationEvent(
                1, 1.0, (1, 2), None, 1, 0.5, anomaly="no-winner"
            )
        )
        sink.emit(
            ArbitrationEvent(2, 2.0, (1, 2), 1, 1, 0.5, watchdog_attempt=1)
        )
        counters = {name: c.value for name, c in registry.counters().items()}
        assert counters["arbitrations"] == 3
        assert counters["grants"] == 2
        assert counters["anomaly.no-winner"] == 1
        assert counters["watchdog_retries"] == 1
        assert registry.histogram("rounds_per_grant", ROUNDS_BUCKETS).count == 2

    def test_render_metrics_lists_everything(self):
        registry = MetricsRegistry()
        registry.counter("grants").increment(4)
        registry.histogram("h", (1.0, 2.0)).observe(1.5)
        text = render_metrics(registry)
        assert "grants" in text and "4" in text
        assert "≤2:1" in text
        assert render_metrics(MetricsRegistry()) == "(empty registry)"


class TestRunnerWiring:
    def test_default_settings_record_nothing(self):
        result = run_simulation(equal_load(4, 1.0), "rr", quick_settings())
        assert result.events is None
        assert result.metrics is None

    def test_events_and_metrics_populate_run_result(self):
        settings = quick_settings(
            telemetry=TelemetrySettings(events=True, metrics=True)
        )
        result = run_simulation(equal_load(4, 2.0), "rr", settings)
        assert result.events
        assert result.metrics is not None
        grants = result.metrics.counter("grants").value
        clean = sum(1 for event in result.events if event.anomaly is None)
        assert grants == clean

    def test_jsonl_path_streams_the_same_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        settings = quick_settings(
            telemetry=TelemetrySettings(events=True, jsonl_path=str(path))
        )
        result = run_simulation(equal_load(4, 2.0), "rr", settings)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert lines == [event.to_json() for event in result.events]

    def test_telemetry_changes_the_cache_key(self):
        scenario = equal_load(4, 1.0)
        plain = quick_settings()
        tele = quick_settings(telemetry=TelemetrySettings(events=True))
        assert cache_key(scenario, "rr", plain) != cache_key(scenario, "rr", tele)

    def test_telemetry_does_not_perturb_results(self):
        # The acceptance bar for the whole layer: identical metrics with
        # telemetry on and off, same seed.
        scenario = equal_load(6, 2.0)
        plain = run_simulation(scenario, "rr", quick_settings(keep_order=True))
        observed = run_simulation(
            scenario,
            "rr",
            quick_settings(
                keep_order=True,
                telemetry=TelemetrySettings(events=True, metrics=True),
            ),
        )
        assert plain.collector.completion_order == observed.collector.completion_order
        assert plain.system_throughput().mean == observed.system_throughput().mean
        assert plain.mean_waiting().mean == observed.mean_waiting().mean


class TestSweepMetrics:
    def test_merged_metrics_across_cells(self):
        settings = quick_settings(telemetry=TelemetrySettings(metrics=True))
        cells = [
            SweepCell(equal_load(4, 2.0), protocol, settings)
            for protocol in ("rr", "fcfs")
        ]
        results = SweepExecutor(jobs=1).run(cells)
        merged = SweepExecutor.merged_metrics(results)
        total = sum(result.metrics.counter("grants").value for result in results)
        assert merged.counter("grants").value == total

    def test_merged_metrics_skips_untelemetried_cells(self):
        plain = SweepCell(equal_load(4, 2.0), "rr", quick_settings())
        observed = SweepCell(
            equal_load(4, 2.0),
            "rr",
            quick_settings(telemetry=TelemetrySettings(metrics=True)),
        )
        results = SweepExecutor(jobs=1).run([plain, observed])
        merged = SweepExecutor.merged_metrics(results)
        assert merged.counter("grants").value == results[1].metrics.counter(
            "grants"
        ).value

"""Property tests for the open-loop arrival layer.

The MMPP sampler is the one place the workload layer does nontrivial
stochastic work (competing exponentials against a hidden modulating
chain), so its contract is pinned as properties over the whole
parameter space hypothesis can reach:

- every inter-arrival draw is strictly positive, so cumulative arrival
  schedules are strictly increasing;
- sampling is a pure function of (parameters, initial phase, RNG
  stream): fresh instances with equal seeds reproduce byte-equal
  schedules, and the advertised phase state evolves identically;
- the long-run empirical rate converges on the analytic stationary
  rate ``1 / mean`` (tolerance scaled by the distribution's own CV);
- the closed-form survival function is a genuine survival function and
  matches the empirical tail;
- requests carrying MMPP scenarios cross the JSON wire byte-identically
  (the epoch-6 strategies in ``test_cache_epoch6_session.py`` fold the
  widened vocabulary into the cache-key properties).

The scenario builders get the corresponding algebraic checks: offered
load, ramp skew, and class fractions are exactly what the names claim.
"""

import math
import random

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.session import RunRequest
from repro.workload.arrivals import (
    MarkovModulatedPoisson,
    bursty_equal_load,
    heterogeneous_load,
    on_off_poisson,
    two_class_priority_load,
)

_rates = st.floats(min_value=0.2, max_value=5.0, allow_nan=False)
_switches = st.floats(min_value=0.05, max_value=2.0, allow_nan=False)

#: Full two-phase MMPPs plus the degenerate on-off corner (one silent
#: phase) — the zero-rate branch consumes RNG differently and must obey
#: every property too.
_mmpps = st.builds(
    MarkovModulatedPoisson,
    rates=st.one_of(
        st.tuples(_rates, _rates),
        st.tuples(_rates, st.just(0.0)),
        st.tuples(st.just(0.0), _rates),
    ),
    switch_rates=st.tuples(_switches, _switches),
    phase=st.sampled_from([0, 1]),
)

_seeds = st.integers(min_value=0, max_value=2**31)


class TestSamplerProperties:
    @hyp_settings(max_examples=60, deadline=None)
    @given(mmpp=_mmpps, seed=_seeds)
    def test_arrival_schedules_strictly_increase(self, mmpp, seed):
        rng = random.Random(seed)
        clock = 0.0
        for _ in range(200):
            draw = mmpp.sample(rng)
            assert draw > 0.0
            assert clock + draw > clock
            clock += draw

    @hyp_settings(max_examples=60, deadline=None)
    @given(mmpp=_mmpps, seed=_seeds)
    def test_equal_seeds_reproduce_byte_equal_schedules(self, mmpp, seed):
        twin = MarkovModulatedPoisson(mmpp.rates, mmpp.switch_rates, mmpp.phase)
        rng_a, rng_b = random.Random(seed), random.Random(seed)
        schedule_a = [mmpp.sample(rng_a) for _ in range(100)]
        schedule_b = [twin.sample(rng_b) for _ in range(100)]
        # strict float equality: same draws, same phase trajectory
        assert schedule_a == schedule_b
        assert mmpp.phase == twin.phase

    @hyp_settings(max_examples=25, deadline=None)
    @given(mmpp=_mmpps, seed=_seeds)
    def test_long_horizon_rate_matches_stationary_mean(self, mmpp, seed):
        rng = random.Random(seed)
        draws = 4000
        total = sum(mmpp.sample(rng) for _ in range(draws))
        empirical_mean = total / draws
        # Standard error of the sample mean, inflated for the draw-to-draw
        # correlation the modulating chain introduces.
        tolerance = 8.0 * mmpp.cv * mmpp.mean / math.sqrt(draws) + 0.02 * mmpp.mean
        assert empirical_mean == pytest.approx(mmpp.mean, abs=tolerance)

    @hyp_settings(max_examples=60, deadline=None)
    @given(mmpp=_mmpps)
    def test_survival_is_a_survival_function(self, mmpp):
        assert mmpp.survival(0.0) == 1.0
        assert mmpp.survival(-1.0) == 1.0
        previous = 1.0
        for step in range(1, 40):
            x = step * 0.25 * mmpp.mean
            value = mmpp.survival(x)
            assert 0.0 <= value <= previous + 1e-12
            previous = value
        # The tail decays at the slow eigenvalue of D0, which for a very
        # bursty on-off source is far slower than 1 / mean — bound the
        # far tail loosely and let the empirical-tail test pin the shape.
        assert mmpp.survival(200.0 * mmpp.mean) < 1e-3

    def test_survival_matches_empirical_tail(self):
        mmpp = MarkovModulatedPoisson((2.0, 0.25), (0.2, 0.1))
        rng = random.Random(404)
        draws = sorted(mmpp.sample(rng) for _ in range(40000))
        for x in (0.5, 1.0, 2.0, 5.0):
            empirical = sum(1 for d in draws if d > x) / len(draws)
            assert mmpp.survival(x) == pytest.approx(empirical, abs=0.01)


class TestParameterValidation:
    def test_rejects_negative_and_all_zero_rates(self):
        with pytest.raises(ConfigurationError):
            MarkovModulatedPoisson((-1.0, 1.0), (0.1, 0.1))
        with pytest.raises(ConfigurationError):
            MarkovModulatedPoisson((0.0, 0.0), (0.1, 0.1))

    def test_rejects_nonpositive_switch_rates_and_bad_phase(self):
        with pytest.raises(ConfigurationError):
            MarkovModulatedPoisson((1.0, 2.0), (0.0, 0.1))
        with pytest.raises(ConfigurationError):
            MarkovModulatedPoisson((1.0, 2.0), (0.1, 0.1), phase=2)

    def test_on_off_validates_its_shape(self):
        with pytest.raises(ConfigurationError):
            on_off_poisson(0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            on_off_poisson(1.0, 0.0, 1.0)


class TestAnalyticMoments:
    def test_on_off_long_run_rate(self):
        source = on_off_poisson(rate=2.0, mean_on=3.0, mean_off=5.0)
        # long-run rate = rate * on_fraction => mean = (on + off) / (rate * on)
        assert source.mean == pytest.approx((3.0 + 5.0) / (2.0 * 3.0))

    def test_equal_rates_degenerate_to_plain_poisson(self):
        flat = MarkovModulatedPoisson((1.5, 1.5), (0.3, 0.7))
        assert flat.mean == pytest.approx(1.0 / 1.5)
        assert flat.cv == pytest.approx(1.0)

    @hyp_settings(max_examples=40, deadline=None)
    @given(mmpp=_mmpps)
    def test_burstiness_never_below_poisson(self, mmpp):
        assert mmpp.cv >= 1.0 - 1e-9


class TestCodecRoundTrip:
    @hyp_settings(max_examples=30, deadline=None)
    @given(mmpp=_mmpps)
    def test_mmpp_requests_cross_the_wire_byte_identically(self, mmpp):
        from repro.workload.scenarios import AgentSpec, ScenarioSpec

        scenario = ScenarioSpec(
            name="wire-probe",
            agents=(
                AgentSpec(agent_id=1, interrequest=mmpp, open_loop=True),
                AgentSpec(agent_id=2, interrequest=mmpp, priority_fraction=0.25),
            ),
        )
        request = RunRequest(scenario, "rr", tag="wire")
        restored = RunRequest.from_json(request.to_json())
        assert restored.to_json() == request.to_json()
        assert restored.cache_key() == request.cache_key()
        # and the restored distributions are real MMPPs with the phase kept
        spec = restored.scenario.agents[0]
        assert isinstance(spec.interrequest, MarkovModulatedPoisson)
        assert spec.interrequest.spec_key() == mmpp.spec_key()

    def test_round_trip_preserves_a_nondefault_phase(self):
        source = MarkovModulatedPoisson((1.0, 0.1), (0.2, 0.4), phase=1)
        from repro.workload.scenarios import AgentSpec, ScenarioSpec

        scenario = ScenarioSpec(
            name="phase-probe",
            agents=(AgentSpec(agent_id=1, interrequest=source, open_loop=True),),
        )
        restored = RunRequest.from_json(RunRequest(scenario, "fcfs").to_json())
        assert restored.scenario.agents[0].interrequest.phase == 1


class TestBuilderAlgebra:
    def test_bursty_offered_load_is_exact(self):
        scenario = bursty_equal_load(6, 0.9, on_fraction=0.3, cycle_time=10.0)
        offered = sum(1.0 / spec.interrequest.mean for spec in scenario.agents)
        assert offered == pytest.approx(0.9)
        for spec in scenario.agents:
            assert spec.open_loop
            assert spec.interrequest.rates[1] == 0.0  # genuinely on-off

    def test_bursty_agents_do_not_share_distribution_state(self):
        scenario = bursty_equal_load(4, 0.8)
        sources = [spec.interrequest for spec in scenario.agents]
        assert len(set(map(id, sources))) == len(sources)

    def test_heterogeneous_ramp_hits_skew_and_total(self):
        scenario = heterogeneous_load(5, 0.8, skew=3.0)
        loads = [1.0 / spec.interrequest.mean for spec in scenario.agents]
        assert sum(loads) == pytest.approx(0.8)
        assert loads[-1] / loads[0] == pytest.approx(3.0)

    def test_two_class_sets_the_urgent_fraction_everywhere(self):
        scenario = two_class_priority_load(5, 2.0, urgent_fraction=0.35)
        assert all(spec.priority_fraction == 0.35 for spec in scenario.agents)
        assert all(not spec.open_loop for spec in scenario.agents)
        with pytest.raises(ConfigurationError):
            two_class_priority_load(5, 2.0, urgent_fraction=1.0)

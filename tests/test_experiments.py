"""Tests for the experiment harness (smoke scale, shape assertions)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figure_4_1, table_4_1, table_4_2, table_4_4, table_4_5
from repro.experiments.formatting import ExperimentTable, ascii_plot, fmt_estimate
from repro.experiments.runner import PROTOCOLS, make_arbiter, run_simulation
from repro.experiments.scale import SCALES, Scale, current_scale
from repro.stats.batch_means import batch_means
from repro.workload.scenarios import equal_load

from _utils import quick_settings

SMOKE = SCALES["smoke"]


class TestScale:
    def test_known_scales(self):
        assert {"smoke", "quick", "default", "paper"} <= set(SCALES)

    def test_paper_scale_matches_paper(self):
        paper = SCALES["paper"]
        assert paper.batches == 10
        assert paper.batch_size == 8000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale().name == "paper"

    def test_explicit_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale("smoke").name == "smoke"

    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert current_scale().name == "quick"

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            current_scale("galactic")

    def test_total_completions(self):
        scale = Scale("x", batches=3, batch_size=10, warmup=5)
        assert scale.total_completions == 35


class TestRegistry:
    def test_all_registered_protocols_instantiate(self):
        for name in PROTOCOLS:
            arbiter = make_arbiter(name, 8)
            assert arbiter.num_agents == 8

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            make_arbiter("lottery", 8)

    @pytest.mark.parametrize("name", sorted(PROTOCOLS))
    def test_every_protocol_completes_a_run(self, name):
        result = run_simulation(
            equal_load(6, 2.0), name, quick_settings(batches=2, batch_size=150, warmup=50)
        )
        assert result.system_throughput().mean > 0.5


class TestFormatting:
    def test_fmt_estimate(self):
        estimate = batch_means([1.0, 1.1, 0.9])
        assert fmt_estimate(estimate).startswith("1.00 ±")

    def test_table_render_aligns_columns(self):
        table = ExperimentTable(title="T", headers=["A", "Blong"])
        table.add_row(["1", "2"], {"a": 1})
        text = table.render()
        assert "T" in text and "Blong" in text and text.count("\n") >= 3

    def test_table_data_records(self):
        table = ExperimentTable(title="T", headers=["A"])
        table.add_row(["1"], {"a": 1})
        assert table.data == [{"a": 1}]

    def test_ascii_plot_contains_legend(self):
        plot = ascii_plot({"FCFS": [(0, 0), (1, 1)], "RR": [(0, 0), (2, 1)]})
        assert "FCFS" in plot and "RR" in plot

    def test_ascii_plot_empty(self):
        assert ascii_plot({}) == "(no data)"


class TestTable41Shape:
    def test_panel_has_all_loads(self):
        panel = table_4_1.run_panel(6, loads=(1.5, 2.5), scale=SMOKE)
        assert len(panel.rows) == 2

    def test_rr_ratio_near_one(self):
        panel = table_4_1.run_panel(6, loads=(2.0,), scale=SCALES["quick"])
        ratio = panel.data[0]["ratio_rr"]
        assert ratio.covers(1.0) or abs(ratio.mean - 1.0) < 0.1

    def test_aap_column_optional(self):
        with_aap = table_4_1.run_panel(6, loads=(2.0,), scale=SMOKE, include_aap=True)
        without = table_4_1.run_panel(6, loads=(2.0,), scale=SMOKE)
        assert "t_N/t_1 AAP" in with_aap.headers
        assert "t_N/t_1 AAP" not in without.headers


class TestTable42Shape:
    def test_rr_variance_exceeds_fcfs_at_saturation(self):
        panel = table_4_2.run_panel(10, loads=(2.0,), scale=SCALES["quick"])
        row = panel.data[0]
        assert row["std_rr"].mean > row["std_fcfs"].mean

    def test_conservation_of_mean_waiting(self):
        # Footnote 4: RR and FCFS share the same mean waiting time.
        panel = table_4_2.run_panel(10, loads=(2.0,), scale=SCALES["quick"])
        row = panel.data[0]
        assert row["mean_w_rr"].mean == pytest.approx(
            row["mean_w_fcfs"].mean, rel=0.05
        )


class TestTable44Shape:
    def test_low_load_ratio_tracks_demand(self):
        panel = table_4_4.run_panel(2.0, num_agents=10, base_loads=(0.25,), scale=SCALES["quick"])
        row = panel.data[0]
        assert row["ratio_rr"].mean == pytest.approx(2.0, abs=0.4)

    def test_saturation_pushes_ratio_toward_one(self):
        panel = table_4_4.run_panel(
            2.0, num_agents=10, base_loads=(5.0,), scale=SCALES["quick"]
        )
        row = panel.data[0]
        assert row["ratio_rr"].mean < 1.3


class TestTable45Shape:
    def test_deterministic_worst_case_halves_throughput(self):
        panel = table_4_5.run_panel(10, cvs=(0.0,), scale=SCALES["quick"])
        row = panel.data[0]
        assert row["ratio_rr"].mean == pytest.approx(0.5, abs=0.05)

    def test_variability_restores_fairness(self):
        panel = table_4_5.run_panel(10, cvs=(0.5,), scale=SCALES["quick"])
        row = panel.data[0]
        assert row["ratio_rr"].mean > 0.65


class TestFigure41:
    def test_series_present(self):
        figure = figure_4_1.run(num_agents=8, load=1.5, scale=SMOKE)
        assert set(figure.series) == {"FCFS", "RR"}

    def test_render_mentions_parameters(self):
        figure = figure_4_1.run(num_agents=8, load=1.5, scale=SMOKE)
        text = figure.render()
        assert "8 agents" in text and "1.5" in text

    def test_cdf_series_monotone(self):
        figure = figure_4_1.run(num_agents=8, load=1.5, scale=SMOKE)
        for series in figure.series.values():
            values = [y for _, y in series]
            assert values == sorted(values)

"""Bus-level tests of priority-traffic integration (§2.4, §3.1, §3.2)."""

import pytest

from repro.bus.model import BusSystem
from repro.experiments.runner import make_arbiter
from repro.stats.collector import CompletionCollector
from repro.workload.distributions import Exponential
from repro.workload.scenarios import AgentSpec, ScenarioSpec


def _mixed_scenario(num_agents=8, urgent_agents=(7, 8), load=2.5):
    think = num_agents / load - 1.0
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=Exponential(think),
            priority_fraction=1.0 if i in urgent_agents else 0.0,
        )
        for i in range(1, num_agents + 1)
    )
    return ScenarioSpec(name="priority-mix", agents=agents)


def _run(protocol, scenario=None, seed=5, completions=3000):
    scenario = scenario or _mixed_scenario()
    collector = CompletionCollector(
        batches=2, batch_size=completions // 2, warmup=0, keep_records=True
    )
    system = BusSystem(
        scenario, make_arbiter(protocol, scenario.num_agents), collector, seed=seed
    )
    system.run()
    return collector.records


def _mean_wait(records, priority):
    waits = [r.waiting_time for r in records if r.priority == priority]
    assert waits, f"no {'priority' if priority else 'normal'} completions"
    return sum(waits) / len(waits)


PROTOCOLS = ["rr", "rr-impl2", "rr-impl3", "fcfs", "fcfs-aincr", "aap1", "aap2"]


class TestUrgentTrafficAcrossProtocols:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_urgent_requests_wait_less(self, protocol):
        records = _run(protocol)
        assert _mean_wait(records, True) < _mean_wait(records, False)

    @pytest.mark.parametrize("protocol", ["rr", "fcfs"])
    def test_urgent_wait_bounded_by_residual_plus_service(self, protocol):
        # With no competing urgent traffic in flight, an urgent request
        # waits at most: the settling arbitration + current tenure +
        # other urgent requests.  Here two urgent agents compete, so the
        # bound is loose but finite and far below the fair-share wait.
        records = _run(protocol)
        urgent = [r.waiting_time for r in records if r.priority]
        assert sum(urgent) / len(urgent) < 4.0

    def test_paper_faithful_rr_pointer_reset_starves_low_ids(self):
        # Reproduction finding: §3.1's "record the winner of every
        # arbitration" includes urgent wins, so steady urgent traffic
        # from high identities keeps resetting the RR scan to the top —
        # the normal class degenerates toward static priority.
        records = _run("rr")
        counts = {}
        for record in records:
            if not record.priority:
                counts[record.agent_id] = counts.get(record.agent_id, 0) + 1
        assert counts[6] > 3 * counts[1]

    def test_frozen_pointer_variant_restores_fairness(self):
        from repro.core.round_robin import DistributedRoundRobin
        from repro.experiments.runner import PROTOCOLS

        PROTOCOLS["rr-frozen-ptr"] = lambda n, r=1: DistributedRoundRobin(
            n, record_priority_winners=False
        )
        try:
            records = _run("rr-frozen-ptr")
        finally:
            del PROTOCOLS["rr-frozen-ptr"]
        counts = {}
        for record in records:
            if not record.priority:
                counts[record.agent_id] = counts.get(record.agent_id, 0) + 1
        values = [counts[a] for a in sorted(counts)]
        assert max(values) <= 1.25 * min(values)

    def test_urgent_class_shares_by_protocol_rule(self):
        # Two always-urgent agents: within the priority class the RR
        # arbiter with IGNORE_RR falls back to static order, so agent 8
        # is favoured over agent 7 under saturation-level urgency.
        scenario = _mixed_scenario(urgent_agents=(7, 8), load=6.0)
        records = _run("rr", scenario=scenario)
        urgent_counts = {7: 0, 8: 0}
        for record in records:
            if record.priority:
                urgent_counts[record.agent_id] += 1
        assert urgent_counts[8] >= urgent_counts[7]


class TestPriorityDoesNotBreakInvariants:
    @pytest.mark.parametrize("protocol", ["rr", "fcfs-aincr", "aap2"])
    def test_no_starvation_of_normal_traffic(self, protocol):
        records = _run(protocol)
        normal_agents = {r.agent_id for r in records if not r.priority}
        assert normal_agents == {1, 2, 3, 4, 5, 6}

    def test_fcfs_order_preserved_within_normal_class(self):
        records = _run("fcfs-aincr")
        normal = [r for r in records if not r.priority]
        inversions = sum(
            1
            for earlier, later in zip(normal, normal[1:])
            if later.issue_time < earlier.issue_time - 1e-9
        )
        # Urgent service can delay normal grants but never reorders the
        # normal queue itself.
        assert inversions == 0

"""Tests for the workload scenario builders."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.distributions import Deterministic
from repro.workload.scenarios import (
    AgentSpec,
    ScenarioSpec,
    equal_load,
    mean_interrequest_for_load,
    open_loop_equal_load,
    unequal_load,
    worst_case_rr,
)


class TestLoadMath:
    @pytest.mark.parametrize("load,mean", [(0.5, 1.0), (0.2, 4.0), (1.0, 0.0)])
    def test_inverts_offered_load(self, load, mean):
        assert mean_interrequest_for_load(load) == pytest.approx(mean)

    def test_round_trips_through_agent_spec(self):
        mean = mean_interrequest_for_load(0.125)
        spec = AgentSpec(agent_id=1, interrequest=Deterministic(mean))
        assert spec.offered_load() == pytest.approx(0.125)

    def test_invalid_load_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_interrequest_for_load(0.0)
        with pytest.raises(ConfigurationError):
            mean_interrequest_for_load(1.2)

    def test_transaction_time_scales(self):
        assert mean_interrequest_for_load(0.5, transaction_time=2.0) == pytest.approx(2.0)


class TestEqualLoad:
    def test_population_size(self):
        scenario = equal_load(30, 1.5)
        assert scenario.num_agents == 30
        assert len(scenario.agents) == 30

    def test_total_offered_load(self):
        scenario = equal_load(30, 1.5)
        assert scenario.total_offered_load() == pytest.approx(1.5)

    def test_identical_agents(self):
        scenario = equal_load(10, 2.0)
        means = {spec.interrequest.mean for spec in scenario.agents}
        assert len(means) == 1

    def test_paper_example_load_2_with_10_agents(self):
        # Per-agent load 0.2 → mean inter-request 4.0 (used in §4.1's
        # saturation discussion).
        scenario = equal_load(10, 2.0)
        assert scenario.agents[0].interrequest.mean == pytest.approx(4.0)

    def test_cv_propagates(self):
        scenario = equal_load(10, 2.0, cv=0.5)
        assert scenario.agents[0].interrequest.cv == pytest.approx(0.5)

    def test_agent_ids_are_1_to_n(self):
        scenario = equal_load(5, 1.0)
        assert [spec.agent_id for spec in scenario.agents] == [1, 2, 3, 4, 5]


class TestUnequalLoad:
    def test_hot_agent_rate_factor(self):
        scenario = unequal_load(30, 0.05, 2.0)
        assert scenario.agent(1).offered_load() == pytest.approx(0.10)
        assert scenario.agent(2).offered_load() == pytest.approx(0.05)

    def test_total_matches_paper_rows(self):
        # 29 regular agents at L/30 plus one at 2L/30: Table 4.4(a)'s
        # first row has total 0.26 for a base of 0.25.
        scenario = unequal_load(30, 0.25 / 30, 2.0)
        assert scenario.total_offered_load() == pytest.approx(0.2583, abs=1e-3)

    def test_custom_hot_agent(self):
        scenario = unequal_load(10, 0.05, 4.0, hot_agent=7)
        assert scenario.agent(7).offered_load() == pytest.approx(0.20)

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            unequal_load(10, 0.05, 0.0)

    def test_hot_load_must_stay_feasible(self):
        with pytest.raises(ConfigurationError):
            unequal_load(10, 0.3, 4.0)  # hot agent would need load 1.2


class TestWorstCaseRR:
    def test_paper_means(self):
        scenario = worst_case_rr(10)
        assert scenario.agent(1).interrequest.mean == pytest.approx(9.5)
        assert scenario.agent(2).interrequest.mean == pytest.approx(6.4)

    def test_load_ratio_30_agents(self):
        # The paper's Table 4.5(b): load ratio 0.90 for 30 agents.
        scenario = worst_case_rr(30)
        ratio = scenario.agent(1).offered_load() / scenario.agent(2).offered_load()
        assert ratio == pytest.approx(0.898, abs=0.005)

    def test_load_ratio_64_agents(self):
        scenario = worst_case_rr(64)
        ratio = scenario.agent(1).offered_load() / scenario.agent(2).offered_load()
        assert ratio == pytest.approx(0.952, abs=0.005)

    def test_cv_zero_is_deterministic(self):
        scenario = worst_case_rr(10, cv=0.0)
        assert scenario.agent(1).interrequest.cv == 0.0

    def test_too_few_agents_rejected(self):
        with pytest.raises(ConfigurationError):
            worst_case_rr(4)

    def test_custom_slow_agent(self):
        scenario = worst_case_rr(10, slow_agent=5)
        assert scenario.agent(5).interrequest.mean == pytest.approx(9.5)
        assert scenario.agent(1).interrequest.mean == pytest.approx(6.4)


class TestOpenLoopEqualLoad:
    def test_arrival_rate_load(self):
        scenario = open_loop_equal_load(10, 0.8)
        # Mean inter-arrival = S / per-agent load = 1 / 0.08 = 12.5.
        assert scenario.agents[0].interrequest.mean == pytest.approx(12.5)

    def test_open_loop_flags(self):
        scenario = open_loop_equal_load(10, 0.8, max_outstanding=4)
        assert scenario.agents[0].open_loop is True
        assert scenario.agents[0].max_outstanding == 4

    def test_unstable_load_rejected(self):
        with pytest.raises(ConfigurationError):
            open_loop_equal_load(10, 1.2)


class TestScenarioSpecValidation:
    def test_duplicate_agent_ids_rejected(self):
        specs = (
            AgentSpec(agent_id=1, interrequest=Deterministic(1.0)),
            AgentSpec(agent_id=1, interrequest=Deterministic(2.0)),
        )
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="dup", agents=specs)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="empty", agents=())

    def test_unknown_agent_lookup(self):
        scenario = equal_load(3, 0.5)
        with pytest.raises(ConfigurationError):
            scenario.agent(9)

"""Sanity checks on the example scripts.

Every example must at least compile and define a ``main``; the cheap
ones are additionally executed end to end (stdout captured) so a broken
API surface shows up here rather than in a user's terminal.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestAllExamples:
    def test_expected_set_present(self):
        names = {path.stem for path in EXAMPLES}
        assert {
            "quickstart",
            "fairness_study",
            "prefetch_overlap",
            "realtime_priority",
            "worst_case_phase_lock",
            "fault_tolerance",
            "bus_monitor",
            "capacity_planning",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_compiles_and_has_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_has_module_docstring_with_run_line(self, path):
        doc = ast.get_docstring(ast.parse(path.read_text()))
        assert doc and "Run:" in doc

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_main_guard_present(self, path):
        assert 'if __name__ == "__main__":' in path.read_text()


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", ["bus_monitor", "fault_tolerance"])
    def test_runs_to_completion(self, name, capsys):
        path = next(path for path in EXAMPLES if path.stem == name)
        module = _load(path)
        module.main()
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 5

"""Unit tests for the wired-OR line and the arbitration line bundle."""

import pytest

from repro.errors import SignalError
from repro.signals.lines import ArbitrationLineBundle, lines_required
from repro.signals.wired_or import WiredOrLine


class TestWiredOrLine:
    def test_floats_low_initially(self):
        assert WiredOrLine().value is False

    def test_single_driver_pulls_high(self):
        line = WiredOrLine()
        line.assert_(1)
        assert line.value is True

    def test_or_of_multiple_drivers(self):
        line = WiredOrLine()
        line.assert_(1)
        line.assert_(2)
        line.release(1)
        assert line.value is True  # driver 2 still holds it
        line.release(2)
        assert line.value is False

    def test_assert_is_idempotent(self):
        line = WiredOrLine()
        line.assert_(1)
        line.assert_(1)
        line.release(1)
        assert line.value is False

    def test_release_without_assert_raises(self):
        with pytest.raises(SignalError):
            WiredOrLine().release(1)

    def test_release_if_held_is_lenient(self):
        WiredOrLine().release_if_held(1)  # no exception

    def test_asserting_set_reported(self):
        line = WiredOrLine()
        line.assert_(3)
        line.assert_(7)
        assert line.asserting == frozenset({3, 7})

    def test_clear_removes_everyone(self):
        line = WiredOrLine()
        line.assert_(1)
        line.clear()
        assert line.value is False


class TestLinesRequired:
    @pytest.mark.parametrize(
        "agents,width",
        [(1, 1), (2, 2), (3, 2), (7, 3), (8, 4), (10, 4), (15, 4), (30, 5), (63, 6), (64, 7)],
    )
    def test_ceil_log2_n_plus_1(self, agents, width):
        assert lines_required(agents) == width

    def test_futurebus_uses_six_lines(self):
        # The paper: "in the Futurebus standard, k=6" (up to 63 devices).
        assert lines_required(63) == 6

    def test_zero_agents_rejected(self):
        with pytest.raises(SignalError):
            lines_required(0)


class TestArbitrationLineBundle:
    def test_observed_is_wired_or_word(self):
        bundle = ArbitrationLineBundle(4)
        bundle.apply(1, 0b1010)
        bundle.apply(2, 0b0011)
        assert bundle.observed() == 0b1011

    def test_reapply_replaces_pattern(self):
        bundle = ArbitrationLineBundle(4)
        bundle.apply(1, 0b1111)
        bundle.apply(1, 0b1000)
        assert bundle.observed() == 0b1000

    def test_withdraw(self):
        bundle = ArbitrationLineBundle(4)
        bundle.apply(1, 0b101)
        bundle.withdraw(1)
        assert bundle.observed() == 0

    def test_applied_by_tracks_driver(self):
        bundle = ArbitrationLineBundle(4)
        bundle.apply(9, 0b110)
        assert bundle.applied_by(9) == 0b110
        assert bundle.applied_by(2) == 0

    def test_capacity(self):
        assert ArbitrationLineBundle(5).capacity == 31

    def test_too_wide_value_rejected(self):
        with pytest.raises(SignalError):
            ArbitrationLineBundle(3).apply(1, 0b1000)

    def test_negative_value_rejected(self):
        with pytest.raises(SignalError):
            ArbitrationLineBundle(3).apply(1, -1)

    def test_zero_width_rejected(self):
        with pytest.raises(SignalError):
            ArbitrationLineBundle(0)

    def test_clear(self):
        bundle = ArbitrationLineBundle(3)
        bundle.apply(1, 0b111)
        bundle.clear()
        assert bundle.observed() == 0
        assert bundle.applied_by(1) == 0

    def test_independent_drivers_on_shared_line(self):
        bundle = ArbitrationLineBundle(2)
        bundle.apply(1, 0b10)
        bundle.apply(2, 0b10)
        bundle.withdraw(1)
        assert bundle.observed() == 0b10

"""The shared retry-pacing vocabulary: deterministic jittered backoff.

One :class:`~repro.service.backoff.BackoffPolicy` paces every retry in
the repository — the sweep executor's per-cell retry, the service's
shard respawns and payload replays.  The properties pinned here are the
ones those layers rely on:

- **deterministic**: the jitter derives from ``(seed, token, attempt)``
  by hashing, so two processes with the same policy compute identical
  delays — a retry schedule is reproducible like everything else;
- **full jitter**: every delay lands in ``[(1 - jitter) * d, d]`` where
  ``d`` is the capped exponential envelope, so herds spread without any
  delay collapsing to zero;
- **capped**: the envelope never exceeds ``cap`` however many attempts.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import RETRY_BACKOFF
from repro.service.backoff import BackoffPolicy


class TestDelaySchedule:
    def test_deterministic_across_instances(self):
        a = BackoffPolicy(seed=7)
        b = BackoffPolicy(seed=7)
        for attempt in range(6):
            assert a.delay(attempt, token="cell-3") == b.delay(attempt, token="cell-3")

    def test_seed_token_and_attempt_all_separate_schedules(self):
        base = BackoffPolicy(seed=1).delay(2, token="t")
        assert BackoffPolicy(seed=2).delay(2, token="t") != base
        assert BackoffPolicy(seed=1).delay(2, token="u") != base
        assert BackoffPolicy(seed=1).delay(3, token="t") != base

    def test_full_jitter_bounds(self):
        policy = BackoffPolicy(base=0.1, cap=10.0, multiplier=2.0, jitter=0.5)
        for attempt in range(8):
            envelope = min(policy.cap, policy.base * policy.multiplier**attempt)
            for token in ("a", "b", "c"):
                delay = policy.delay(attempt, token=token)
                assert (1.0 - policy.jitter) * envelope <= delay <= envelope

    def test_envelope_grows_then_caps(self):
        policy = BackoffPolicy(base=0.05, cap=0.4, multiplier=2.0, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in range(6)]
        assert delays[:4] == [0.05, 0.1, 0.2, 0.4]
        assert delays[4:] == [0.4, 0.4]  # capped, not growing

    def test_zero_jitter_is_exactly_the_envelope(self):
        policy = BackoffPolicy(base=0.125, jitter=0.0)
        assert policy.delay(0) == 0.125
        assert policy.delay(1) == 0.25

    def test_none_policy_never_waits(self):
        policy = BackoffPolicy.none()
        assert all(policy.delay(attempt) == 0.0 for attempt in range(5))
        policy.sleep(3, token="free")  # returns immediately


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": -0.1},
            {"cap": -1.0},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(**kwargs)


class TestSweepIntegration:
    def test_sweep_retry_policy_is_a_backoff_policy(self):
        assert isinstance(RETRY_BACKOFF, BackoffPolicy)
        assert RETRY_BACKOFF.cap <= 1.0  # a single in-process retry stays snappy

    def test_sweep_executor_uses_the_shared_policy_by_default(self):
        from repro.experiments.sweep import SweepExecutor

        assert SweepExecutor(jobs=1).backoff is RETRY_BACKOFF

    def test_sweep_retry_sleeps_through_the_policy(self, monkeypatch):
        import repro.experiments.sweep as sweep_module
        from repro.experiments.runner import SimulationSettings
        from repro.experiments.sweep import SweepCell, SweepExecutor
        from repro.workload.scenarios import equal_load

        real = sweep_module.run_simulation
        calls = {"n": 0}

        def flaky(scenario, protocol, settings):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient worker loss")
            return real(scenario, protocol, settings)

        monkeypatch.setattr(sweep_module, "run_simulation", flaky)
        slept = []
        policy = BackoffPolicy(base=0.02, jitter=0.5, seed=3)
        monkeypatch.setattr(
            BackoffPolicy, "sleep", lambda self, attempt, token="": slept.append(
                self.delay(attempt, token)
            )
        )
        executor = SweepExecutor(jobs=1, backoff=policy)
        settings = SimulationSettings(batches=2, batch_size=20, seed=5, engine="event")
        executor.run([SweepCell(equal_load(3, 0.5), "rr", settings, tag="flaky")])
        assert executor.stats.retries == 1
        assert slept == [policy.delay(0, "flaky")]

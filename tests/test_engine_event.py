"""Unit tests for repro.engine.event."""

import pytest

from repro.engine.event import Event, EventPriority


def _noop():
    pass


class TestEvent:
    def test_stores_time_and_action(self):
        event = Event(3.5, _noop)
        assert event.time == 3.5
        assert event.action is _noop

    def test_default_priority(self):
        assert Event(0.0, _noop).priority == EventPriority.DEFAULT

    def test_custom_priority(self):
        assert Event(0.0, _noop, priority=EventPriority.RELEASE).priority == 0

    def test_not_cancelled_initially(self):
        assert not Event(0.0, _noop).cancelled

    def test_cancel_marks(self):
        event = Event(0.0, _noop)
        event.cancel()
        assert event.cancelled

    def test_cancel_is_idempotent(self):
        event = Event(0.0, _noop)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_fire_runs_action(self):
        ran = []
        event = Event(1.0, lambda: ran.append(True))
        event.fire()
        assert ran == [True]

    def test_time_coerced_to_float(self):
        assert isinstance(Event(1, _noop).time, float)

    def test_label_kept(self):
        assert Event(0.0, _noop, label="grant").label == "grant"

    def test_repr_mentions_label(self):
        assert "grant" in repr(Event(0.0, _noop, label="grant"))


class TestEventPriority:
    def test_release_before_grant(self):
        assert EventPriority.RELEASE < EventPriority.GRANT

    def test_grant_before_arbitration(self):
        assert EventPriority.GRANT < EventPriority.ARBITRATION

    def test_arbitration_before_request(self):
        assert EventPriority.ARBITRATION < EventPriority.REQUEST

    def test_request_before_arb_kick(self):
        # The kick must run after all same-instant requests so the
        # competitor snapshot is complete.
        assert EventPriority.REQUEST < EventPriority.ARB_KICK

    def test_priorities_are_ints(self):
        for priority in EventPriority:
            assert isinstance(priority.value, int)

"""Tests for the parallel contention settle process, incl. property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ArbitrationError, SignalError
from repro.signals.contention import ContentionResult, ParallelContention, applied_pattern


class TestAppliedPattern:
    def test_paper_example_first_agent(self):
        # Agents 1010101 and 0011100: the first removes its three lowest
        # bits, leaving 1010000 (§2.1's worked example).
        observed = 0b1010101 | 0b0011100
        assert applied_pattern(0b1010101, observed, 7) == 0b1010000

    def test_paper_example_second_agent(self):
        observed = 0b1010101 | 0b0011100
        assert applied_pattern(0b0011100, observed, 7) == 0

    def test_paper_example_reapply(self):
        # Next round: lines carry 1010000; the first agent is no longer
        # dominated anywhere and reapplies its full identity.
        assert applied_pattern(0b1010101, 0b1010000, 7) == 0b1010101

    def test_undominated_agent_applies_everything(self):
        assert applied_pattern(0b111, 0b111, 3) == 0b111

    def test_fully_dominated_agent_withdraws_all(self):
        assert applied_pattern(0b011, 0b100, 3) == 0

    def test_negative_identity_rejected(self):
        with pytest.raises(SignalError):
            applied_pattern(-1, 0, 3)

    def test_observed_wider_than_bundle_rejected(self):
        with pytest.raises(SignalError):
            applied_pattern(0b01, 0b100, 2)


class TestResolve:
    def test_single_competitor_wins_in_one_round(self):
        result = ParallelContention(4).resolve([0b1010])
        assert result.winner_identity == 0b1010

    def test_two_competitors(self):
        result = ParallelContention(7).resolve([0b1010101, 0b0011100])
        assert result.winner_identity == 0b1010101

    def test_empty_contention_reports_nobody(self):
        result = ParallelContention(4).resolve([])
        assert result.empty
        assert result.rounds == 0

    def test_identity_zero_rejected(self):
        with pytest.raises(SignalError):
            ParallelContention(4).resolve([0])

    def test_identity_too_wide_rejected(self):
        with pytest.raises(SignalError):
            ParallelContention(3).resolve([8])

    def test_duplicate_identities_rejected(self):
        with pytest.raises(ArbitrationError):
            ParallelContention(4).resolve([5, 5])

    def test_history_starts_with_full_or(self):
        result = ParallelContention(4).resolve([0b1000, 0b0111])
        assert result.history[0] == 0b1111

    def test_history_ends_with_winner(self):
        result = ParallelContention(4).resolve([0b1000, 0b0111])
        assert result.history[-1] == result.winner_identity

    def test_all_agents_competing_full_house(self):
        width = 4
        identities = list(range(1, 16))
        result = ParallelContention(width).resolve(identities)
        assert result.winner_identity == 15

    def test_adjacent_identities(self):
        result = ParallelContention(6).resolve([0b101010, 0b101011])
        assert result.winner_identity == 0b101011

    def test_result_type(self):
        assert isinstance(ParallelContention(3).resolve([1]), ContentionResult)


class TestSettleProperties:
    @given(
        st.integers(min_value=2, max_value=10).flatmap(
            lambda width: st.tuples(
                st.just(width),
                st.lists(
                    st.integers(min_value=1, max_value=2**10 - 1),
                    min_size=1,
                    max_size=24,
                    unique=True,
                ).map(lambda ids: [i for i in ids if i < 2**width] or [1]),
            )
        )
    )
    def test_settles_to_maximum(self, width_and_ids):
        width, identities = width_and_ids
        result = ParallelContention(width).resolve(identities)
        assert result.winner_identity == max(identities)

    @given(
        st.lists(
            st.integers(min_value=1, max_value=255),
            min_size=1,
            max_size=30,
            unique=True,
        )
    )
    def test_rounds_bounded_by_width(self, identities):
        width = 8
        result = ParallelContention(width).resolve(identities)
        # The synchronous-round model settles within k rounds (+1 to
        # confirm the fixpoint); Taub's k/2 bound is for the analog
        # process with worst-case physical placement.
        assert 1 <= result.rounds <= width + 1

    @given(
        st.lists(
            st.integers(min_value=1, max_value=127),
            min_size=1,
            max_size=20,
            unique=True,
        )
    )
    def test_winner_visible_to_all(self, identities):
        # At the end of arbitration the settled word equals the winner's
        # identity, so every agent knows who won — the property the RR
        # protocol depends on (§1, requirement 2).
        result = ParallelContention(7).resolve(identities)
        assert result.winner_identity in identities

    @given(st.integers(min_value=1, max_value=63))
    def test_self_contention(self, identity):
        result = ParallelContention(6).resolve([identity])
        assert result.winner_identity == identity

"""Tests for the run-level result object."""

import pytest

from repro.errors import StatisticsError
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load, unequal_load

from _utils import quick_settings


@pytest.fixture(scope="module")
def rr_result():
    return run_simulation(equal_load(8, 2.0), "rr", quick_settings(keep_samples=True))


@pytest.fixture(scope="module")
def fcfs_result():
    return run_simulation(
        equal_load(8, 2.0), "fcfs", quick_settings(keep_samples=True)
    )


class TestHeadlineEstimates:
    def test_system_throughput_near_saturation(self, rr_result):
        # Load 2.0 saturates the bus: throughput ≈ 1 transaction per unit.
        assert rr_result.system_throughput().mean == pytest.approx(1.0, abs=0.02)

    def test_mean_waiting_includes_transaction(self, rr_result):
        # W is issue → completion, so it is at least the transaction time
        # plus the idle-bus arbitration delay.
        assert rr_result.mean_waiting().mean >= 1.5

    def test_queueing_is_waiting_minus_transaction(self, rr_result):
        waiting = rr_result.mean_waiting().mean
        queueing = rr_result.mean_queueing().mean
        assert waiting - queueing == pytest.approx(1.0, abs=1e-6)

    def test_std_waiting_positive_under_contention(self, rr_result):
        assert rr_result.std_waiting().mean > 0.0

    def test_utilization_bounded(self, rr_result):
        assert 0.0 < rr_result.utilization <= 1.0


class TestFairnessMetrics:
    def test_extreme_ratio_uses_highest_and_lowest(self, rr_result):
        direct = rr_result.throughput_ratio(8, 1)
        extreme = rr_result.extreme_throughput_ratio()
        assert direct.mean == pytest.approx(extreme.mean)

    def test_bandwidth_shares_sum_to_one(self, rr_result):
        shares = rr_result.bandwidth_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert set(shares) == set(range(1, 9))

    def test_rr_shares_equal(self, rr_result):
        shares = rr_result.bandwidth_shares()
        for share in shares.values():
            assert share == pytest.approx(1 / 8, abs=0.01)

    def test_agent_throughput(self, rr_result):
        # 8 agents sharing a saturated bus: 1/8 transaction per unit each.
        estimate = rr_result.agent_throughput(4)
        assert estimate.mean == pytest.approx(1 / 8, abs=0.01)


class TestDistributional:
    def test_waiting_cdf_matches_mean(self, rr_result):
        cdf = rr_result.waiting_cdf()
        assert cdf.mean == pytest.approx(rr_result.mean_waiting().mean, rel=0.02)

    def test_overlap_metrics_consistency(self, fcfs_result):
        metrics = fcfs_result.overlap_metrics(4.0)
        # E[min(v, W)] + E[(W - v)+] == E[W], batch by batch.
        assert metrics.overlapped.mean + metrics.residual_waiting.mean == (
            pytest.approx(metrics.total_waiting.mean)
        )

    def test_overlap_zero_overlaps_nothing(self, fcfs_result):
        metrics = fcfs_result.overlap_metrics(0.0)
        assert metrics.overlapped.mean == 0.0
        assert metrics.residual_waiting.mean == pytest.approx(
            metrics.total_waiting.mean
        )

    def test_huge_overlap_covers_everything(self, fcfs_result):
        metrics = fcfs_result.overlap_metrics(10_000.0)
        assert metrics.residual_waiting.mean == pytest.approx(0.0)
        assert metrics.productivity.mean == pytest.approx(1.0)

    def test_productivity_between_zero_and_one(self, fcfs_result):
        metrics = fcfs_result.overlap_metrics(3.0)
        assert 0.0 < metrics.productivity.mean <= 1.0

    def test_negative_overlap_rejected(self, fcfs_result):
        with pytest.raises(StatisticsError):
            fcfs_result.overlap_metrics(-1.0)

    def test_overlap_requires_samples(self):
        result = run_simulation(equal_load(8, 2.0), "rr", quick_settings())
        with pytest.raises(StatisticsError):
            result.overlap_metrics(3.0)

    def test_overlap_requires_homogeneous_population(self):
        result = run_simulation(
            unequal_load(8, 0.1, 2.0), "rr", quick_settings(keep_samples=True)
        )
        with pytest.raises(StatisticsError):
            result.overlap_metrics(3.0)

    def test_cdf_requires_samples(self):
        result = run_simulation(equal_load(8, 2.0), "rr", quick_settings())
        with pytest.raises(StatisticsError):
            result.waiting_cdf()

"""Branch-coverage backfill for trace-driven workloads.

``tests/test_traces.py`` covers replay order, cycling, I/O round-trips
and the synthesizer's statistics; this file pins the remaining paths —
the empirical survival function, batched replay at exhaustion, the
content-addressed ``spec_key``, and the degenerate-trace edges.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.traces import TraceDistribution, load_trace, save_trace

RNG = random.Random(0)  # ignored by replay; the interface requires one


class TestSurvival:
    def test_empirical_survival_steps(self):
        trace = TraceDistribution([1.0, 2.0, 3.0, 4.0])
        assert trace.survival(0.0) == 1.0
        assert trace.survival(1.0) == 0.75
        assert trace.survival(2.5) == 0.5
        assert trace.survival(4.0) == 0.0

    def test_zero_mean_trace_has_zero_cv(self):
        trace = TraceDistribution([0.0, 0.0, 0.0])
        assert trace.mean == 0.0
        assert trace.cv == 0.0
        assert trace.survival(0.0) == 0.0


class TestOffsets:
    def test_offset_wraps_modulo_length(self):
        trace = TraceDistribution([1.0, 2.0, 3.0], offset=4)
        assert trace.sample(RNG) == 2.0  # 4 % 3 == 1

    def test_length_property(self):
        assert TraceDistribution([5.0, 6.0]).length == 2


class TestBatchedReplay:
    def test_batch_stops_at_exhaustion_without_raising(self):
        trace = TraceDistribution([1.0, 2.0, 3.0], cycle=False)
        # A prefetch larger than the remainder returns what exists.
        assert trace.sample_batch(RNG, 10) == [1.0, 2.0, 3.0]

    def test_batch_raises_only_when_nothing_is_available(self):
        trace = TraceDistribution([1.0], cycle=False)
        assert trace.sample_batch(RNG, 5) == [1.0]
        with pytest.raises(ConfigurationError, match="exhausted"):
            trace.sample_batch(RNG, 1)

    def test_cycling_batch_never_exhausts(self):
        trace = TraceDistribution([1.0, 2.0])
        assert trace.sample_batch(RNG, 5) == [1.0, 2.0, 1.0, 2.0, 1.0]


class TestSpecKey:
    def test_same_samples_same_key(self):
        assert (
            TraceDistribution([1.0, 2.0]).spec_key()
            == TraceDistribution([1.0, 2.0]).spec_key()
        )

    def test_key_distinguishes_samples_offset_and_cycling(self):
        base = TraceDistribution([1.0, 2.0, 3.0]).spec_key()
        assert TraceDistribution([1.0, 2.0, 4.0]).spec_key() != base
        assert TraceDistribution([1.0, 2.0, 3.0], offset=1).spec_key() != base
        assert TraceDistribution([1.0, 2.0, 3.0], cycle=False).spec_key() != base

    def test_key_tracks_replay_position(self):
        # Two replays of one trace from different positions are
        # different arrival processes, so the key must move with index.
        trace = TraceDistribution([1.0, 2.0, 3.0])
        before = trace.spec_key()
        trace.sample(RNG)
        assert trace.spec_key() != before

    def test_exhaustion_is_part_of_the_key(self):
        trace = TraceDistribution([1.0], cycle=False)
        fresh = trace.spec_key()
        trace.sample(RNG)
        assert trace.spec_key() != fresh


class TestTraceIOEdges:
    def test_save_without_header(self, tmp_path):
        path = tmp_path / "bare.trace"
        save_trace(path, [0.5, 1.0])
        assert not path.read_text().startswith("#")
        assert load_trace(path) == [0.5, 1.0]

    def test_multiline_header_is_commented_per_line(self, tmp_path):
        path = tmp_path / "doc.trace"
        save_trace(path, [1.0], header="line one\nline two")
        lines = path.read_text().splitlines()
        assert lines[0] == "# line one"
        assert lines[1] == "# line two"
        assert load_trace(path) == [1.0]

    def test_values_written_to_six_decimals(self, tmp_path):
        path = tmp_path / "precise.trace"
        save_trace(path, [1.0 / 3.0])
        assert path.read_text().strip() == "0.333333"

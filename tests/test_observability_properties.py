"""Property tests: conservation laws of the arbitration-event stream.

Telemetry is only trustworthy if it obeys the physics of the bus it
observes, whatever the seed, population or fault schedule.  Hypothesis
drives randomized runs — healthy and fault-injected — and checks the
laws the conformance and golden suites implicitly lean on:

- exactly one winner per clean arbitration, drawn from that pass's
  competitor set;
- the stream is strictly ordered: indices are 0..n-1 and start times
  strictly increase (every pass burns at least one settle period);
- grant conservation: per-agent grant counts match the collector's
  completion totals up to the in-flight slack (at most one granted-but-
  unstarted transaction plus one in-flight transaction at run end);
- the watchdog-attempt field replays exactly from the anomaly history:
  0 outside an episode, the running anomaly count inside one, reset by
  the clean grant that closes it — so retry markers can never appear on
  a stream with no preceding anomaly.
"""

from collections import Counter

from hypothesis import given, settings as hyp_settings, strategies as st

from repro.bus.watchdog import WatchdogPolicy
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.faults.plan import FaultKind, FaultPlan
from repro.observability.events import TelemetrySettings
from repro.workload.scenarios import equal_load

seeds = st.integers(min_value=0, max_value=2**31 - 1)
populations = st.integers(min_value=2, max_value=8)
loads = st.sampled_from([0.6, 1.2, 2.0, 3.0])
protocols = st.sampled_from(["rr", "rr-impl3", "fcfs", "fcfs-aincr", "fixed"])


def observed_run(protocol, agents, load, seed, fault_rate=0.0):
    # equal_load splits the total offered load evenly and caps each
    # agent at 1.0, so small populations clamp the saturated draws.
    load = min(load, float(agents))
    fault_plan = None
    watchdog = None
    if fault_rate > 0.0:
        fault_plan = FaultPlan.generate(
            seed=seed,
            rate=fault_rate,
            horizon=120.0,
            kinds=(FaultKind.DROPPED_BROADCAST, FaultKind.LINE_GLITCH),
            num_agents=agents,
        )
        watchdog = WatchdogPolicy()
    settings = SimulationSettings(
        batches=2,
        batch_size=40,
        warmup=0,
        seed=seed,
        fault_plan=fault_plan,
        watchdog=watchdog,
        telemetry=TelemetrySettings(events=True, metrics=True),
    )
    return run_simulation(equal_load(agents, load), protocol, settings)


class TestCleanRoundLaws:
    @given(protocol=protocols, agents=populations, load=loads, seed=seeds)
    @hyp_settings(max_examples=25, deadline=None)
    def test_one_winner_per_clean_round_from_the_competitor_set(
        self, protocol, agents, load, seed
    ):
        result = observed_run(protocol, agents, load, seed)
        for event in result.events:
            if event.anomaly is None:
                assert event.winner is not None
                assert event.winner in event.competitors
            else:
                assert event.winner is None

    @given(protocol=protocols, agents=populations, load=loads, seed=seeds)
    @hyp_settings(max_examples=25, deadline=None)
    def test_stream_is_strictly_ordered(self, protocol, agents, load, seed):
        result = observed_run(protocol, agents, load, seed)
        indices = [event.index for event in result.events]
        assert indices == list(range(len(indices)))
        times = [event.time for event in result.events]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))


class TestGrantConservation:
    @given(protocol=protocols, agents=populations, seed=seeds)
    @hyp_settings(max_examples=25, deadline=None)
    def test_grants_match_collector_completions_up_to_inflight_slack(
        self, protocol, agents, seed
    ):
        # Closed loop, warmup=0: every completion was granted, and at
        # run end at most one grant is awaiting bus tenure plus one
        # transaction is still on the bus.
        result = observed_run(protocol, agents, 2.0, seed)
        grants = Counter(
            event.winner for event in result.events if event.anomaly is None
        )
        totals = result.collector.agent_totals
        slack = sum(grants.values()) - sum(totals.values())
        assert 0 <= slack <= 2
        for agent, granted in grants.items():
            completed = totals.get(agent, 0)
            assert 0 <= granted - completed <= 1

    @given(protocol=protocols, agents=populations, seed=seeds)
    @hyp_settings(max_examples=15, deadline=None)
    def test_metrics_registry_agrees_with_the_event_stream(
        self, protocol, agents, seed
    ):
        result = observed_run(protocol, agents, 2.0, seed)
        clean = [event for event in result.events if event.anomaly is None]
        registry = result.metrics
        assert registry.counter("arbitrations").value == len(result.events)
        assert registry.counter("grants").value == len(clean)
        assert registry.counter("settle_rounds").value == sum(
            event.rounds for event in result.events
        )


class TestWatchdogAttemptLaw:
    @given(seed=seeds, rate=st.sampled_from([0.05, 0.15, 0.3]))
    @hyp_settings(max_examples=20, deadline=None)
    def test_attempt_field_replays_from_anomaly_history(self, seed, rate):
        # rr-faulty-register + dropped broadcasts: the one combination
        # guaranteed to produce real watchdog episodes (§3.1).
        result = observed_run("rr-faulty-register", 6, 2.0, seed, fault_rate=rate)
        episode_anomalies = 0
        for event in result.events:
            assert event.watchdog_attempt == episode_anomalies
            if event.anomaly is not None:
                episode_anomalies += 1
            else:
                episode_anomalies = 0

    @given(seed=seeds, rate=st.sampled_from([0.05, 0.15, 0.3]))
    @hyp_settings(max_examples=20, deadline=None)
    def test_retry_markers_only_after_anomalies(self, seed, rate):
        result = observed_run("rr-faulty-register", 6, 2.0, seed, fault_rate=rate)
        anomaly_seen = False
        for event in result.events:
            if event.watchdog_attempt > 0:
                assert anomaly_seen, "retry marker with no preceding anomaly"
            if event.anomaly is not None:
                anomaly_seen = True

    @given(protocol=protocols, agents=populations, seed=seeds)
    @hyp_settings(max_examples=15, deadline=None)
    def test_healthy_runs_never_carry_retry_markers(self, protocol, agents, seed):
        result = observed_run(protocol, agents, 2.0, seed)
        assert all(event.watchdog_attempt == 0 for event in result.events)
        assert all(event.anomaly is None for event in result.events)
        assert all(event.fault_tags == () for event in result.events)

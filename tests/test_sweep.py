"""Tests for the sweep executor and the content-addressed result cache.

The load-bearing property is *determinism*: a sweep's results must be a
pure function of its cells — independent of worker count, execution
order, cache state, and how many cells share a scenario object.  Every
test here ultimately checks some facet of that.
"""

import pickle

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepCell, SweepExecutor, resolve_jobs
from repro.signals.contention import ParallelContention
from repro.workload.scenarios import AgentSpec, ScenarioSpec, equal_load
from repro.workload.traces import TraceDistribution

SETTINGS = SimulationSettings(batches=3, batch_size=60, warmup=30, seed=424242)


def _fingerprint(result):
    """Everything observable about a run, exactly (no tolerances)."""
    return (
        result.protocol,
        result.utilization,
        result.elapsed,
        tuple(
            (
                batch.count,
                batch.sum_waiting,
                batch.sum_waiting_sq,
                batch.sum_queueing,
                batch.start_time,
                batch.end_time,
                tuple(sorted(batch.agent_counts.items())),
            )
            for batch in result.collector.completed_batches()
        ),
    )


def _grid(loads=(0.5, 1.5), protocols=("rr", "fcfs")):
    return [
        SweepCell(equal_load(6, load), protocol, SETTINGS)
        for load in loads
        for protocol in protocols
    ]


class TestSerialExecution:
    def test_matches_direct_run_simulation(self):
        result = SweepExecutor(jobs=1).simulate(equal_load(6, 1.5), "rr", SETTINGS)
        direct = run_simulation(equal_load(6, 1.5), "rr", SETTINGS)
        assert _fingerprint(result) == _fingerprint(direct)

    def test_results_in_cell_order(self):
        cells = _grid()
        results = SweepExecutor(jobs=1).run(cells)
        assert [r.protocol for r in results] == [c.protocol for c in cells]

    def test_shared_trace_scenario_cells_are_independent(self):
        # Two cells sharing one stateful trace-replay scenario object
        # must both start from the same trace position (each cell gets a
        # private copy), so identical cells give identical results.
        trace = tuple(float(2 + (i * 7) % 5) for i in range(400))
        scenario = ScenarioSpec(
            name="shared-trace",
            agents=tuple(
                AgentSpec(agent_id=i, interrequest=TraceDistribution(trace, cycle=True))
                for i in range(1, 5)
            ),
        )
        first, second = SweepExecutor(jobs=1).run(
            [SweepCell(scenario, "rr", SETTINGS), SweepCell(scenario, "rr", SETTINGS)]
        )
        assert _fingerprint(first) == _fingerprint(second)


class TestParallelExecution:
    def test_bit_identical_to_serial(self):
        cells = _grid(loads=(0.5, 1.5, 2.5))
        serial = SweepExecutor(jobs=1).run(cells)
        parallel_executor = SweepExecutor(jobs=2)
        parallel = parallel_executor.run(cells)
        assert [_fingerprint(r) for r in parallel] == [
            _fingerprint(r) for r in serial
        ]
        # One of the two backends must have run the batch; on platforms
        # without process pools the fallback path was exercised instead,
        # which the equality above covers identically.
        stats = parallel_executor.stats
        assert stats.parallel_batches + stats.serial_batches == 1

    def test_single_cell_stays_serial(self):
        executor = SweepExecutor(jobs=4)
        executor.run([SweepCell(equal_load(4, 1.0), "rr", SETTINGS)])
        assert executor.stats.parallel_batches == 0


class TestResolveJobs:
    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert SweepExecutor().jobs == 3

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            SweepExecutor()


class TestCacheKey:
    def test_stable(self):
        assert cache_key(equal_load(6, 1.5), "rr", SETTINGS) == cache_key(
            equal_load(6, 1.5), "rr", SETTINGS
        )

    def test_sensitive_to_protocol(self):
        scenario = equal_load(6, 1.5)
        assert cache_key(scenario, "rr", SETTINGS) != cache_key(
            scenario, "fcfs", SETTINGS
        )

    def test_sensitive_to_seed(self):
        scenario = equal_load(6, 1.5)
        reseeded = SimulationSettings(
            batches=SETTINGS.batches,
            batch_size=SETTINGS.batch_size,
            warmup=SETTINGS.warmup,
            seed=SETTINGS.seed + 1,
        )
        assert cache_key(scenario, "rr", SETTINGS) != cache_key(
            scenario, "rr", reseeded
        )

    def test_sensitive_to_scenario(self):
        assert cache_key(equal_load(6, 1.5), "rr", SETTINGS) != cache_key(
            equal_load(6, 2.0), "rr", SETTINGS
        )


class TestResultCache:
    def test_cold_run_executes_then_warm_run_replays(self, tmp_path):
        cells = _grid()
        cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        cold_results = cold.run(cells)
        assert cold.stats.executed == len(cells)
        assert cold.stats.cache_hits == 0

        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        warm_results = warm.run(cells)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(cells)
        assert [_fingerprint(r) for r in warm_results] == [
            _fingerprint(r) for r in cold_results
        ]

    def test_seed_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=cache).run(_grid())
        reseeded = SimulationSettings(
            batches=SETTINGS.batches,
            batch_size=SETTINGS.batch_size,
            warmup=SETTINGS.warmup,
            seed=SETTINGS.seed + 1,
        )
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        executor.run([SweepCell(equal_load(6, 0.5), "rr", reseeded)])
        assert executor.stats.cache_hits == 0
        assert executor.stats.executed == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(equal_load(4, 1.0), "rr", SETTINGS)
        cache.put(key, run_simulation(equal_load(4, 1.0), "rr", SETTINGS))
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()

    def test_file_as_cache_dir_rejected(self, tmp_path):
        path = tmp_path / "occupied"
        path.write_text("not a directory")
        with pytest.raises(ConfigurationError):
            ResultCache(path)

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=cache).run(_grid())
        assert len(cache) == 4
        assert cache.clear() == 4
        assert len(cache) == 0

    def test_entries_round_trip_through_pickle(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = SweepExecutor(jobs=1, cache=cache).simulate(
            equal_load(4, 1.0), "rr", SETTINGS
        )
        key = cache_key(equal_load(4, 1.0), "rr", SETTINGS)
        reloaded = pickle.loads((tmp_path / f"{key}.pkl").read_bytes())
        assert _fingerprint(reloaded) == _fingerprint(result)


class TestContentionMemo:
    @given(
        rounds=st.lists(
            st.sets(st.integers(min_value=1, max_value=31), min_size=1, max_size=6),
            min_size=1,
            max_size=25,
        )
    )
    @hyp_settings(max_examples=60, deadline=None)
    def test_memoized_matches_uncached(self, rounds):
        memoized = ParallelContention(5)
        uncached = ParallelContention(5, cache_size=0)
        for identities in rounds:
            competitors = sorted(identities)
            assert memoized.resolve(competitors) == uncached.resolve(competitors)

    def test_cache_hits_counted(self):
        contention = ParallelContention(5)
        contention.resolve([3, 9])
        contention.resolve([9, 3])  # same set, different order: memo hit
        assert contention.cache_hits == 1

    def test_bounded_cache_clears_when_full(self):
        contention = ParallelContention(5, cache_size=2)
        contention.resolve([1])
        contention.resolve([2])
        contention.resolve([3])  # exceeds the bound: memo restarts
        contention.resolve([3])
        assert contention.cache_hits == 1
        assert len(contention._cache) <= 2

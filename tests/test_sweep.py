"""Tests for the sweep executor and the content-addressed result cache.

The load-bearing property is *determinism*: a sweep's results must be a
pure function of its cells — independent of worker count, execution
order, cache state, and how many cells share a scenario object.  Every
test here ultimately checks some facet of that.
"""

import pickle
from dataclasses import replace

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SweepExecutionError
from repro.experiments import sweep as sweep_module
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepCell, SweepExecutor, resolve_jobs
from repro.signals.contention import ParallelContention
from repro.workload.scenarios import AgentSpec, ScenarioSpec, equal_load
from repro.workload.traces import TraceDistribution

SETTINGS = SimulationSettings(batches=3, batch_size=60, warmup=30, seed=424242)

#: Cells pinned to the event engine: the per-cell execution backends
#: (process pools, retries, failure diagnostics) only see cells that
#: are not swept into the lane-packed batch path.
EVENT_SETTINGS = replace(SETTINGS, engine="event")


def _fingerprint(result):
    """Everything observable about a run, exactly (no tolerances)."""
    return (
        result.protocol,
        result.utilization,
        result.elapsed,
        tuple(
            (
                batch.count,
                batch.sum_waiting,
                batch.sum_waiting_sq,
                batch.sum_queueing,
                batch.start_time,
                batch.end_time,
                tuple(sorted(batch.agent_counts.items())),
            )
            for batch in result.collector.completed_batches()
        ),
    )


def _grid(loads=(0.5, 1.5), protocols=("rr", "fcfs"), settings=SETTINGS):
    return [
        SweepCell(equal_load(6, load), protocol, settings)
        for load in loads
        for protocol in protocols
    ]


class TestSerialExecution:
    def test_matches_direct_run_simulation(self):
        result = SweepExecutor(jobs=1).simulate(equal_load(6, 1.5), "rr", SETTINGS)
        direct = run_simulation(equal_load(6, 1.5), "rr", SETTINGS)
        assert _fingerprint(result) == _fingerprint(direct)

    def test_results_in_cell_order(self):
        cells = _grid()
        results = SweepExecutor(jobs=1).run(cells)
        assert [r.protocol for r in results] == [c.protocol for c in cells]

    def test_shared_trace_scenario_cells_are_independent(self):
        # Two cells sharing one stateful trace-replay scenario object
        # must both start from the same trace position (each cell gets a
        # private copy), so identical cells give identical results.
        trace = tuple(float(2 + (i * 7) % 5) for i in range(400))
        scenario = ScenarioSpec(
            name="shared-trace",
            agents=tuple(
                AgentSpec(agent_id=i, interrequest=TraceDistribution(trace, cycle=True))
                for i in range(1, 5)
            ),
        )
        first, second = SweepExecutor(jobs=1).run(
            [SweepCell(scenario, "rr", SETTINGS), SweepCell(scenario, "rr", SETTINGS)]
        )
        assert _fingerprint(first) == _fingerprint(second)


class TestParallelExecution:
    def test_bit_identical_to_serial(self):
        cells = _grid(loads=(0.5, 1.5, 2.5), settings=EVENT_SETTINGS)
        serial = SweepExecutor(jobs=1).run(cells)
        parallel_executor = SweepExecutor(jobs=2)
        parallel = parallel_executor.run(cells)
        assert [_fingerprint(r) for r in parallel] == [
            _fingerprint(r) for r in serial
        ]
        # One of the two backends must have run the batch; on platforms
        # without process pools the fallback path was exercised instead,
        # which the equality above covers identically.
        stats = parallel_executor.stats
        assert stats.parallel_batches + stats.serial_batches == 1

    def test_single_cell_stays_serial(self):
        executor = SweepExecutor(jobs=4)
        executor.run([SweepCell(equal_load(4, 1.0), "rr", SETTINGS)])
        assert executor.stats.parallel_batches == 0


class _BrokenSubmitPool:
    """A pool whose first submit tears, as a crashed worker would."""

    def __init__(self, max_workers):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, *args, **kwargs):
        from concurrent.futures import BrokenExecutor

        raise BrokenExecutor("worker pool torn down")


class _UnavailablePool:
    """A platform where process pools cannot even be created."""

    def __init__(self, max_workers):
        raise OSError("no semaphores available")


class TestRetryAndDegradation:
    def test_transient_failure_is_retried_once_and_heals(self, monkeypatch):
        real = sweep_module.run_simulation
        calls = {"n": 0}

        def flaky(scenario, protocol, settings):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient worker loss")
            return real(scenario, protocol, settings)

        monkeypatch.setattr(sweep_module, "run_simulation", flaky)
        cells = _grid(loads=(0.5,), protocols=("rr", "fcfs"), settings=EVENT_SETTINGS)
        executor = SweepExecutor(jobs=1)
        results = executor.run(cells)
        assert [r.protocol for r in results] == ["rr", "fcfs"]
        assert executor.stats.retries == 1
        assert executor.stats.failures == []
        # The healed cell's result matches an untroubled run exactly.
        clean = SweepExecutor(jobs=1).run(cells)
        assert [_fingerprint(r) for r in results] == [
            _fingerprint(r) for r in clean
        ]

    def test_persistent_failure_raises_with_cell_diagnostics(self, monkeypatch):
        def doomed(scenario, protocol, settings):
            raise RuntimeError("deterministic bug")

        monkeypatch.setattr(sweep_module, "run_simulation", doomed)
        executor = SweepExecutor(jobs=1)
        cells = [SweepCell(equal_load(4, 1.0), "rr", EVENT_SETTINGS, tag="probe-cell")]
        with pytest.raises(SweepExecutionError) as excinfo:
            executor.run(cells)
        message = str(excinfo.value)
        assert "probe-cell" in message and "deterministic bug" in message
        assert len(executor.stats.failures) == 1
        failure = executor.stats.failures[0]
        assert failure.protocol == "rr"
        assert failure.tag == "probe-cell"
        assert failure.first_error == failure.error
        assert executor.stats.retries == 1

    def test_broken_pool_degrades_to_serial_retries(self, monkeypatch):
        monkeypatch.setattr(
            sweep_module, "ProcessPoolExecutor", _BrokenSubmitPool
        )
        cells = _grid(settings=EVENT_SETTINGS)
        executor = SweepExecutor(jobs=2)
        results = executor.run(cells)
        serial = SweepExecutor(jobs=1).run(cells)
        assert [_fingerprint(r) for r in results] == [
            _fingerprint(r) for r in serial
        ]
        # Every cell came back through the in-process retry path.
        assert executor.stats.retries == len(cells)
        assert executor.stats.failures == []

    def test_unconstructible_pool_falls_back_to_plain_serial(self, monkeypatch):
        monkeypatch.setattr(sweep_module, "ProcessPoolExecutor", _UnavailablePool)
        cells = _grid(settings=EVENT_SETTINGS)
        executor = SweepExecutor(jobs=2)
        results = executor.run(cells)
        serial = SweepExecutor(jobs=1).run(cells)
        assert [_fingerprint(r) for r in results] == [
            _fingerprint(r) for r in serial
        ]
        # The whole batch re-ran serially without touching retry logic.
        assert executor.stats.serial_batches == 1
        assert executor.stats.retries == 0


class TestResolveJobs:
    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)

    def test_zero_means_all_cores(self):
        assert resolve_jobs(0) >= 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert SweepExecutor().jobs == 3

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigurationError):
            SweepExecutor()


class TestCacheKey:
    def test_stable(self):
        assert cache_key(equal_load(6, 1.5), "rr", SETTINGS) == cache_key(
            equal_load(6, 1.5), "rr", SETTINGS
        )

    def test_sensitive_to_protocol(self):
        scenario = equal_load(6, 1.5)
        assert cache_key(scenario, "rr", SETTINGS) != cache_key(
            scenario, "fcfs", SETTINGS
        )

    def test_sensitive_to_seed(self):
        scenario = equal_load(6, 1.5)
        reseeded = SimulationSettings(
            batches=SETTINGS.batches,
            batch_size=SETTINGS.batch_size,
            warmup=SETTINGS.warmup,
            seed=SETTINGS.seed + 1,
        )
        assert cache_key(scenario, "rr", SETTINGS) != cache_key(
            scenario, "rr", reseeded
        )

    def test_sensitive_to_scenario(self):
        assert cache_key(equal_load(6, 1.5), "rr", SETTINGS) != cache_key(
            equal_load(6, 2.0), "rr", SETTINGS
        )


class TestResultCache:
    def test_cold_run_executes_then_warm_run_replays(self, tmp_path):
        cells = _grid()
        cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        cold_results = cold.run(cells)
        assert cold.stats.executed == len(cells)
        assert cold.stats.cache_hits == 0

        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        warm_results = warm.run(cells)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(cells)
        assert [_fingerprint(r) for r in warm_results] == [
            _fingerprint(r) for r in cold_results
        ]

    def test_seed_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=cache).run(_grid())
        reseeded = SimulationSettings(
            batches=SETTINGS.batches,
            batch_size=SETTINGS.batch_size,
            warmup=SETTINGS.warmup,
            seed=SETTINGS.seed + 1,
        )
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        executor.run([SweepCell(equal_load(6, 0.5), "rr", reseeded)])
        assert executor.stats.cache_hits == 0
        assert executor.stats.executed == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(equal_load(4, 1.0), "rr", SETTINGS)
        cache.put(key, run_simulation(equal_load(4, 1.0), "rr", SETTINGS))
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning):
            assert cache.get(key) is None
        assert not path.exists()

    def test_corrupt_entry_is_quarantined_for_inspection(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(equal_load(4, 1.0), "rr", SETTINGS)
        cache.put(key, run_simulation(equal_load(4, 1.0), "rr", SETTINGS))
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(b"truncated garbage")
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            assert cache.get(key) is None
        assert cache.quarantined == 1
        # The bytes survive under .corrupt for post-mortem, and the key
        # is a clean miss that can be re-stored and re-read normally.
        quarantined = tmp_path / f"{key}.corrupt"
        assert quarantined.read_bytes() == b"truncated garbage"
        result = run_simulation(equal_load(4, 1.0), "rr", SETTINGS)
        cache.put(key, result)
        assert _fingerprint(cache.get(key)) == _fingerprint(result)

    def test_truncated_pickle_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(equal_load(4, 1.0), "rr", SETTINGS)
        cache.put(key, run_simulation(equal_load(4, 1.0), "rr", SETTINGS))
        path = tmp_path / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[: 50])
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            assert cache.get(key) is None
        assert cache.misses == 1

    def test_file_as_cache_dir_rejected(self, tmp_path):
        path = tmp_path / "occupied"
        path.write_text("not a directory")
        with pytest.raises(ConfigurationError):
            ResultCache(path)

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=1, cache=cache).run(_grid())
        assert len(cache) == 4
        assert cache.clear() == 4
        assert len(cache) == 0

    def test_entries_round_trip_through_pickle(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = SweepExecutor(jobs=1, cache=cache).simulate(
            equal_load(4, 1.0), "rr", SETTINGS
        )
        key = cache_key(equal_load(4, 1.0), "rr", SETTINGS)
        reloaded = pickle.loads((tmp_path / f"{key}.pkl").read_bytes())
        assert _fingerprint(reloaded) == _fingerprint(result)


class TestContentionMemo:
    @given(
        rounds=st.lists(
            st.sets(st.integers(min_value=1, max_value=31), min_size=1, max_size=6),
            min_size=1,
            max_size=25,
        )
    )
    @hyp_settings(max_examples=60, deadline=None)
    def test_memoized_matches_uncached(self, rounds):
        memoized = ParallelContention(5)
        uncached = ParallelContention(5, cache_size=0)
        for identities in rounds:
            competitors = sorted(identities)
            assert memoized.resolve(competitors) == uncached.resolve(competitors)

    def test_cache_hits_counted(self):
        contention = ParallelContention(5)
        contention.resolve([3, 9])
        contention.resolve([9, 3])  # same set, different order: memo hit
        assert contention.cache_hits == 1

    def test_bounded_cache_clears_when_full(self):
        contention = ParallelContention(5, cache_size=2)
        contention.resolve([1])
        contention.resolve([2])
        contention.resolve([3])  # exceeds the bound: memo restarts
        contention.resolve([3])
        assert contention.cache_hits == 1
        assert len(contention._cache) <= 2

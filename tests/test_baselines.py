"""Tests for the baseline arbiters: fixed priority and the two AAPs."""

import pytest

from repro.baselines.assured_access import BatchingAssuredAccess, FuturebusAssuredAccess
from repro.baselines.fixed_priority import FixedPriorityArbiter
from repro.errors import ArbitrationError

from _utils import drive_arbiter


class TestFixedPriority:
    def test_highest_identity_always_wins(self):
        arbiter = FixedPriorityArbiter(8)
        for agent in (2, 5, 7):
            arbiter.request(agent, 0.0)
        assert arbiter.start_arbitration(0.0).winner == 7

    def test_starves_low_identity(self):
        # Agent 8 re-requests immediately; agent 1 never gets served.
        arbiter = FixedPriorityArbiter(8)
        arbiter.request(1, 0.0)
        arbiter.request(8, 0.0)
        for _ in range(10):
            winner = arbiter.start_arbitration(0.0).winner
            assert winner == 8
            arbiter.grant(8, 0.0)
            arbiter.request(8, 0.0)

    def test_priority_bit_dominates_identity(self):
        arbiter = FixedPriorityArbiter(8)
        arbiter.request(7, 0.0)
        arbiter.request(2, 0.0, priority=True)
        assert arbiter.start_arbitration(0.0).winner == 2

    def test_empty_arbitration_raises(self):
        with pytest.raises(ArbitrationError):
            FixedPriorityArbiter(4).start_arbitration(0.0)


class TestBatchingAssuredAccess:
    def test_batch_serves_descending_identity(self):
        arbiter = BatchingAssuredAccess(8)
        served = drive_arbiter(arbiter, [(0.0, 2), (0.0, 5), (0.0, 7)])
        assert served == [7, 5, 2]

    def test_newcomer_waits_for_batch_end(self):
        arbiter = BatchingAssuredAccess(8)
        arbiter.request(2, 0.0)
        arbiter.request(5, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.5).winner, 0.5)  # 5 served
        # 8 arrives mid-batch: even though 8 > 2, the batch member goes first.
        arbiter.request(8, 1.0)
        assert arbiter.start_arbitration(1.0).winner == 2

    def test_request_after_batch_end_forms_fresh_batch(self):
        arbiter = BatchingAssuredAccess(8)
        arbiter.request(2, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.5)  # batch done
        # 4 arrives to an idle bus and forms a new batch alone; 6 arrives
        # later, so despite its higher identity it waits in the room.
        arbiter.request(4, 1.0)
        arbiter.request(6, 1.5)
        winner = arbiter.start_arbitration(1.5).winner
        arbiter.grant(winner, 1.5)
        assert winner == 4
        assert arbiter.start_arbitration(2.0).winner == 6

    def test_mid_batch_arrivals_batch_together(self):
        arbiter = BatchingAssuredAccess(8)
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.2).winner, 0.2)  # 6
        arbiter.request(7, 0.5)   # waits: batch {3} in progress
        arbiter.request(4, 0.7)   # waits too
        arbiter.grant(arbiter.start_arbitration(0.8).winner, 1.0)  # 3, batch ends
        # New batch = {7, 4}: 7 first, and 5 arriving strictly after the
        # batch formed must wait for it to end.
        arbiter.request(5, 1.1)
        winner = arbiter.start_arbitration(1.1).winner
        arbiter.grant(winner, 1.2)
        assert winner == 7
        assert arbiter.start_arbitration(1.5).winner == 4

    def test_simultaneous_with_formation_joins_batch(self):
        arbiter = BatchingAssuredAccess(8)
        arbiter.request(3, 2.0)
        arbiter.request(6, 2.0)  # same instant: same request-line edge
        assert arbiter.batch_members() == {3, 6}

    def test_batches_formed_diagnostic(self):
        arbiter = BatchingAssuredAccess(8)
        arbiter.request(3, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)
        arbiter.request(4, 1.0)
        assert arbiter.batches_formed == 2

    def test_priority_request_bypasses_batching(self):
        arbiter = BatchingAssuredAccess(8)
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.2).winner, 0.2)  # 6
        arbiter.request(7, 0.5, priority=True)  # urgent: ignores the batch
        assert arbiter.start_arbitration(0.5).winner == 7

    def test_reset(self):
        arbiter = BatchingAssuredAccess(8)
        arbiter.request(3, 0.0)
        arbiter.reset()
        assert not arbiter.has_waiting()
        assert arbiter.batch_members() == set()


class TestFuturebusAssuredAccess:
    def test_within_batch_descending_identity(self):
        arbiter = FuturebusAssuredAccess(8)
        served = drive_arbiter(arbiter, [(0.0, 2), (0.0, 5), (0.0, 7)])
        assert served == [7, 5, 2]

    def test_served_agent_inhibited_until_release(self):
        arbiter = FuturebusAssuredAccess(8)
        arbiter.request(5, 0.0)
        arbiter.request(3, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 5
        arbiter.release(5, 1.0)
        arbiter.request(5, 1.0)  # 5 re-requests immediately but is inhibited
        assert arbiter.start_arbitration(1.0).winner == 3

    def test_late_joiner_admitted_to_open_batch(self):
        # §2.2: an agent whose request arrives during a batch joins it if
        # it has not been served in this batch.
        arbiter = FuturebusAssuredAccess(8)
        arbiter.request(3, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 3 served
        arbiter.release(3, 1.0)
        arbiter.request(6, 1.0)  # batch still open (3 inhibited)
        assert arbiter.start_arbitration(1.0).winner == 6

    def test_fairness_release_when_all_inhibited(self):
        arbiter = FuturebusAssuredAccess(8)
        arbiter.request(5, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)
        arbiter.release(5, 1.0)
        arbiter.request(5, 1.0)
        # Only 5 is waiting and it is inhibited: the request line is low,
        # a fairness release occurs and 5 competes again.
        assert arbiter.has_waiting()
        assert arbiter.start_arbitration(1.5).winner == 5
        assert arbiter.fairness_releases == 1

    def test_release_on_idle_bus(self):
        arbiter = FuturebusAssuredAccess(8)
        arbiter.request(5, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)
        arbiter.release(5, 1.0)
        # No outstanding requests at all: that, too, is a release cycle.
        assert arbiter.inhibited_agents() == set()

    def test_no_agent_served_twice_per_batch(self):
        arbiter = FuturebusAssuredAccess(4)
        for agent in (1, 2, 3, 4):
            arbiter.request(agent, 0.0)
        served = []
        for _ in range(4):
            winner = arbiter.start_arbitration(0.0).winner
            arbiter.grant(winner, 0.0)
            arbiter.release(winner, 0.5)
            arbiter.request(winner, 0.5)  # greedy re-request
            served.append(winner)
        assert sorted(served) == [1, 2, 3, 4]

    def test_priority_tenure_does_not_inhibit(self):
        arbiter = FuturebusAssuredAccess(8)
        arbiter.request(5, 0.0, priority=True)
        arbiter.request(3, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # urgent 5
        arbiter.release(5, 1.0)
        assert 5 not in arbiter.inhibited_agents()

    def test_reset(self):
        arbiter = FuturebusAssuredAccess(8)
        arbiter.request(5, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)
        arbiter.release(5, 1.0)
        arbiter.reset()
        assert arbiter.inhibited_agents() == set()
        assert arbiter.fairness_releases == 0

"""Model-based tests: each arbiter vs an independent reference policy.

Hypothesis drives random request/arbitrate/grant interleavings through
an arbiter while a *plainly written* reference model of its scheduling
policy runs alongside; every winner must match.  Unlike the
bus-simulation equivalence tests, these exercise arbitrary request
patterns (including ones no closed-loop workload would produce) and
keep the reference logic independent of the implementation's.
"""

from hypothesis import given, settings as hyp_settings, strategies as st

from repro.baselines.assured_access import BatchingAssuredAccess, FuturebusAssuredAccess
from repro.baselines.fixed_priority import FixedPriorityArbiter
from repro.core.fcfs import DistributedFCFS
from repro.core.round_robin import DistributedRoundRobin


class _Driver:
    """Random closed-loop driver: requests and grants in random order."""

    def __init__(self, arbiter, data, num_agents, steps=80):
        self.arbiter = arbiter
        self.data = data
        self.num_agents = num_agents
        self.steps = steps
        self.now = 0.0
        self.waiting = set()

    def run(self, on_request, check_winner):
        for __ in range(self.steps):
            idle = sorted(set(range(1, self.num_agents + 1)) - self.waiting)
            serve = self.waiting and (
                not idle or self.data.draw(st.booleans(), label="serve?")
            )
            if serve:
                winner = self.arbiter.start_arbitration(self.now).winner
                check_winner(winner, self.now)
                self.arbiter.grant(winner, self.now)
                self.now += 1.0
                self.arbiter.release(winner, self.now)
                self.waiting.discard(winner)
            else:
                agent = self.data.draw(st.sampled_from(idle), label="requester")
                self.arbiter.request(agent, self.now)
                self.waiting.add(agent)
                on_request(agent, self.now)
            self.now += self.data.draw(
                st.floats(min_value=0.01, max_value=2.0), label="gap"
            )


class TestFixedPriorityOracle:
    @given(st.data())
    @hyp_settings(max_examples=40, deadline=None)
    def test_always_the_maximum_waiting_identity(self, data):
        num_agents = data.draw(st.integers(min_value=2, max_value=12))
        driver = _Driver(FixedPriorityArbiter(num_agents), data, num_agents)
        driver.run(
            on_request=lambda agent, now: None,
            check_winner=lambda winner, now: (
                # reference: plain max over the waiting set
                None if winner == max(driver.waiting) else (_ for _ in ()).throw(
                    AssertionError(f"{winner} != max{sorted(driver.waiting)}")
                )
            ),
        )


class TestRoundRobinOracle:
    @given(st.data())
    @hyp_settings(max_examples=40, deadline=None)
    def test_descending_scan_from_previous_winner(self, data):
        num_agents = data.draw(st.integers(min_value=2, max_value=12))
        arbiter = DistributedRoundRobin(num_agents)
        driver = _Driver(arbiter, data, num_agents)
        state = {"pointer": 0}

        def check(winner, now):
            below = {a for a in driver.waiting if a < state["pointer"]}
            expected = max(below) if below else max(driver.waiting)
            assert winner == expected
            state["pointer"] = winner

        driver.run(on_request=lambda agent, now: None, check_winner=check)


class TestFCFSOracle:
    @given(st.data())
    @hyp_settings(max_examples=40, deadline=None)
    def test_a_incr_serves_oldest_request(self, data):
        num_agents = data.draw(st.integers(min_value=2, max_value=12))
        arbiter = DistributedFCFS(num_agents, strategy=2)
        driver = _Driver(arbiter, data, num_agents)
        issue_time = {}

        def check(winner, now):
            # reference: earliest issue time wins; id breaks exact ties.
            expected = min(
                driver.waiting, key=lambda agent: (issue_time[agent], -agent)
            )
            assert winner == expected

        driver.run(
            on_request=lambda agent, now: issue_time.__setitem__(agent, now),
            check_winner=check,
        )


class TestBatchingOracle:
    @given(st.data())
    @hyp_settings(max_examples=40, deadline=None)
    def test_batch_membership_and_order(self, data):
        num_agents = data.draw(st.integers(min_value=2, max_value=12))
        arbiter = BatchingAssuredAccess(num_agents)
        driver = _Driver(arbiter, data, num_agents)
        model = {"batch": set(), "room": set()}

        def on_request(agent, now):
            if model["batch"]:
                model["room"].add(agent)
            else:
                model["batch"].add(agent)

        def check(winner, now):
            assert winner == max(model["batch"])
            model["batch"].discard(winner)
            if not model["batch"]:
                model["batch"], model["room"] = model["room"], set()

        driver.run(on_request=on_request, check_winner=check)


class TestFuturebusOracle:
    @given(st.data())
    @hyp_settings(max_examples=40, deadline=None)
    def test_inhibit_and_release_semantics(self, data):
        num_agents = data.draw(st.integers(min_value=2, max_value=12))
        arbiter = FuturebusAssuredAccess(num_agents)
        driver = _Driver(arbiter, data, num_agents)
        inhibited = set()

        def check(winner, now):
            eligible = driver.waiting - inhibited
            if not eligible:
                inhibited.clear()  # fairness release
                eligible = set(driver.waiting)
            assert winner == max(eligible)
            inhibited.add(winner)
            # At tenure end the request line is low whenever every
            # remaining waiter is inhibited (or none remain): release.
            remaining = driver.waiting - {winner}
            if not (remaining - inhibited):
                inhibited.clear()

        def on_request(agent, now):
            # Request-line check: if all waiting are inhibited, release.
            if driver.waiting and not (driver.waiting - inhibited):
                inhibited.clear()

        driver.run(on_request=on_request, check_winner=check)


class TestMultiOutstandingFCFSOracle:
    @given(st.data())
    @hyp_settings(max_examples=40, deadline=None)
    def test_globally_oldest_request_served_first(self, data):
        num_agents = data.draw(st.integers(min_value=2, max_value=8))
        capacity = data.draw(st.integers(min_value=2, max_value=4))
        arbiter = DistributedFCFS(num_agents, strategy=2, max_outstanding=capacity)
        now = 0.0
        pending = []  # (issue_time, agent) in issue order
        per_agent = {agent: 0 for agent in range(1, num_agents + 1)}
        for __ in range(80):
            can_request = [a for a, n in per_agent.items() if n < capacity]
            serve = pending and (
                not can_request or data.draw(st.booleans(), label="serve?")
            )
            if serve:
                winner = arbiter.start_arbitration(now).winner
                # reference: the globally oldest pending request's agent
                # (ties impossible: strictly increasing issue times).
                expected = pending[0][1]
                assert winner == expected
                arbiter.grant(winner, now)
                pending.pop(0)
                per_agent[winner] -= 1
            else:
                agent = data.draw(st.sampled_from(sorted(can_request)), label="agent")
                arbiter.request(agent, now)
                pending.append((now, agent))
                per_agent[agent] += 1
            now += data.draw(
                st.floats(min_value=0.01, max_value=1.0), label="gap"
            )
        assert arbiter.counter_wraps == 0  # §3.2 sizing holds for r > 1 too


class TestHybridOracle:
    @given(st.data())
    @hyp_settings(max_examples=40, deadline=None)
    def test_fcfs_by_tick_rr_within_cohort(self, data):
        from repro.core.hybrid import HybridArbiter

        num_agents = data.draw(st.integers(min_value=2, max_value=10))
        arbiter = HybridArbiter(num_agents)
        driver = _Driver(arbiter, data, num_agents)
        tick_of = {}
        state = {"tick": 0, "pointer": 0}

        def on_request(agent, now):
            # Distinct arrival instants in this driver: every request is
            # its own tick unless two land at the same instant (the
            # driver's gaps are strictly positive, so they never do).
            state["tick"] += 1
            tick_of[agent] = state["tick"]

        def check(winner, now):
            oldest_tick = min(tick_of[a] for a in driver.waiting)
            cohort = {a for a in driver.waiting if tick_of[a] == oldest_tick}
            below = {a for a in cohort if a < state["pointer"]}
            expected = max(below) if below else max(cohort)
            assert winner == expected
            state["pointer"] = winner

        driver.run(on_request=on_request, check_winner=check)


class TestAdaptiveOracleSpreadArrivals:
    @given(st.data())
    @hyp_settings(max_examples=30, deadline=None)
    def test_fcfs_mode_for_non_coincident_arrivals(self, data):
        from repro.core.adaptive import AdaptiveArbiter

        num_agents = data.draw(st.integers(min_value=2, max_value=10))
        arbiter = AdaptiveArbiter(num_agents)
        driver = _Driver(arbiter, data, num_agents)
        issue_time = {}

        def check(winner, now):
            # With strictly positive inter-arrival gaps the coincidence
            # fraction stays 0 and the arbiter schedules pure FCFS.
            assert arbiter.mode == "fcfs"
            expected = min(
                driver.waiting, key=lambda agent: (issue_time[agent], -agent)
            )
            assert winner == expected

        driver.run(
            on_request=lambda agent, now: issue_time.__setitem__(agent, now),
            check_winner=check,
        )

"""Exhaustive small-space verification of the contention models.

For small identity widths the entire space of competitor subsets is
enumerable; both settle models must find the maximum on *every* subset,
not just sampled ones.  This is the strongest statement the test suite
makes about the max-finding substrate.
"""

import itertools

import pytest

from repro.signals.async_settle import AsyncContention
from repro.signals.binary_patterned import BinaryPatternedArbitration
from repro.signals.contention import ParallelContention


class TestExhaustiveSynchronous:
    @pytest.mark.parametrize("width", [2, 3])
    def test_every_subset_settles_to_max(self, width):
        identities = list(range(1, 2**width))
        contention = ParallelContention(width)
        for size in range(1, len(identities) + 1):
            for subset in itertools.combinations(identities, size):
                result = contention.resolve(subset)
                assert result.winner_identity == max(subset), subset

    def test_width_4_all_pairs_and_triples(self):
        identities = list(range(1, 16))
        contention = ParallelContention(4)
        for size in (1, 2, 3):
            for subset in itertools.combinations(identities, size):
                assert contention.resolve(subset).winner_identity == max(subset)

    @pytest.mark.parametrize("width", [2, 3])
    def test_rounds_bounded_everywhere(self, width):
        identities = list(range(1, 2**width))
        contention = ParallelContention(width)
        worst = 0
        for size in range(1, len(identities) + 1):
            for subset in itertools.combinations(identities, size):
                worst = max(worst, contention.resolve(subset).rounds)
        assert worst <= width + 1


class TestExhaustiveBinaryPatterned:
    def test_width_3_every_subset(self):
        identities = list(range(1, 8))
        arbiter = BinaryPatternedArbitration(3)
        for size in range(1, 8):
            for subset in itertools.combinations(identities, size):
                outcome = arbiter.resolve(subset)
                winners = [i for i, won in outcome.won.items() if won]
                assert len(winners) == 1
                assert subset[winners[0]] == max(subset)


class TestExhaustiveAsynchronous:
    @pytest.mark.parametrize(
        "positions",
        [
            (0.0, 1.0),          # opposite ends
            (0.0, 0.0),          # co-located
            (0.25, 0.75),        # interior
        ],
    )
    def test_width_3_all_pairs_all_placements(self, positions):
        contention = AsyncContention(3)
        for a, b in itertools.combinations(range(1, 8), 2):
            result = contention.resolve(
                [(positions[0], a), (positions[1], b)]
            )
            assert result.winner_identity == max(a, b)

    def test_width_2_all_subsets_spread(self):
        contention = AsyncContention(2)
        identities = [1, 2, 3]
        spots = [0.0, 0.5, 1.0]
        for size in (1, 2, 3):
            for subset in itertools.combinations(identities, size):
                placements = list(zip(spots, subset))
                result = contention.resolve(placements)
                assert result.winner_identity == max(subset)

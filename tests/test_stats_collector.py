"""Tests for the streaming completion collector."""

import pytest

from repro.bus.records import CompletionRecord
from repro.errors import StatisticsError
from repro.stats.collector import CompletionCollector


def _record(agent=1, issue=0.0, grant=0.5, done=1.5):
    return CompletionRecord(
        agent_id=agent, issue_time=issue, grant_time=grant, completion_time=done
    )


def _fill(collector, count, start_time=0.0, agent=1):
    time = start_time
    for _ in range(count):
        collector.record(
            _record(agent=agent, issue=time, grant=time + 0.5, done=time + 1.5)
        )
        time += 1.0
    return time


class TestWarmupAndBatching:
    def test_warmup_discarded(self):
        collector = CompletionCollector(batches=2, batch_size=3, warmup=4)
        _fill(collector, 10)
        assert sum(batch.count for batch in collector.batch_stats) == 6

    def test_satisfied_after_needed(self):
        collector = CompletionCollector(batches=2, batch_size=3, warmup=4)
        assert collector.needed == 10
        _fill(collector, 9)
        assert not collector.satisfied()
        _fill(collector, 1, start_time=9.0)
        assert collector.satisfied()

    def test_batch_indices_sequential(self):
        collector = CompletionCollector(batches=3, batch_size=2, warmup=0)
        _fill(collector, 6)
        assert [batch.index for batch in collector.batch_stats] == [0, 1, 2]

    def test_records_beyond_needed_ignored(self):
        collector = CompletionCollector(batches=2, batch_size=2, warmup=0)
        _fill(collector, 8)
        assert sum(batch.count for batch in collector.batch_stats) == 4

    def test_completed_batches_filters_partial(self):
        collector = CompletionCollector(batches=3, batch_size=4, warmup=0)
        _fill(collector, 9)  # 2 full batches + 1 partial
        assert len(collector.completed_batches()) == 2

    def test_validation(self):
        with pytest.raises(StatisticsError):
            CompletionCollector(batches=1)
        with pytest.raises(StatisticsError):
            CompletionCollector(batch_size=0)
        with pytest.raises(StatisticsError):
            CompletionCollector(warmup=-1)


class TestBatchStatistics:
    def test_waiting_moments(self):
        collector = CompletionCollector(batches=2, batch_size=2, warmup=0)
        collector.record(_record(issue=0.0, done=2.0))   # W = 2
        collector.record(_record(issue=1.0, done=5.0))   # W = 4
        batch = collector.batch_stats[0]
        assert batch.mean_waiting == pytest.approx(3.0)
        assert batch.std_waiting == pytest.approx(1.0)

    def test_queueing_delay_tracked(self):
        collector = CompletionCollector(batches=2, batch_size=1, warmup=0)
        collector.record(_record(issue=0.0, grant=0.75, done=1.75))
        assert collector.batch_stats[0].mean_queueing == pytest.approx(0.75)

    def test_batch_duration_spans_boundaries(self):
        collector = CompletionCollector(batches=2, batch_size=3, warmup=2)
        _fill(collector, 8)
        # Warmup ends at the 2nd completion (t = 2.5); first batch ends at
        # the 5th (t = 5.5): duration 3.0.
        assert collector.batch_stats[0].duration == pytest.approx(3.0)

    def test_throughput(self):
        collector = CompletionCollector(batches=2, batch_size=4, warmup=0)
        _fill(collector, 8)
        batch = collector.batch_stats[1]
        assert batch.throughput() == pytest.approx(4.0 / batch.duration)

    def test_agent_counts(self):
        collector = CompletionCollector(batches=2, batch_size=2, warmup=0)
        collector.record(_record(agent=1))
        collector.record(_record(agent=2))
        collector.record(_record(agent=2))
        collector.record(_record(agent=2))
        assert collector.batch_stats[0].agent_counts == {1: 1, 2: 1}
        assert collector.agent_totals == {1: 1, 2: 3}

    def test_empty_batch_moments_raise(self):
        from repro.stats.collector import BatchStats

        empty = BatchStats(index=0)
        with pytest.raises(StatisticsError):
            _ = empty.mean_waiting
        with pytest.raises(StatisticsError):
            _ = empty.std_waiting
        with pytest.raises(StatisticsError):
            empty.throughput()


class TestSampleRetention:
    def test_samples_per_batch_when_enabled(self):
        collector = CompletionCollector(
            batches=2, batch_size=2, warmup=1, keep_samples=True
        )
        _fill(collector, 5)
        assert all(len(batch.samples) == 2 for batch in collector.batch_stats)

    def test_all_samples_concatenates(self):
        collector = CompletionCollector(
            batches=2, batch_size=2, warmup=0, keep_samples=True
        )
        _fill(collector, 4)
        assert len(collector.all_samples()) == 4

    def test_all_samples_requires_flag(self):
        collector = CompletionCollector(batches=2, batch_size=2, warmup=0)
        _fill(collector, 4)
        with pytest.raises(StatisticsError):
            collector.all_samples()

    def test_order_retention(self):
        collector = CompletionCollector(
            batches=2, batch_size=1, warmup=1, keep_order=True
        )
        for agent in (3, 1, 2):
            collector.record(_record(agent=agent))
        # Order includes warmup completions: it is the grant sequence.
        assert collector.completion_order == [3, 1, 2]

    def test_record_retention(self):
        collector = CompletionCollector(
            batches=2, batch_size=1, warmup=0, keep_records=True
        )
        collector.record(_record(agent=5))
        assert collector.records[0].agent_id == 5

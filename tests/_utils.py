"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.base import Arbiter
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import ScenarioSpec


def quick_settings(**overrides) -> SimulationSettings:
    """Small-but-meaningful run lengths for integration tests."""
    defaults = dict(batches=4, batch_size=400, warmup=100, seed=20260705)
    defaults.update(overrides)
    return SimulationSettings(**defaults)


def grant_sequence(
    scenario: ScenarioSpec,
    protocol: str,
    completions: int = 600,
    seed: int = 1,
) -> List[int]:
    """The exact order in which agents are served, from the first grant."""
    settings = SimulationSettings(
        batches=2,
        batch_size=completions // 2,
        warmup=0,
        seed=seed,
        keep_order=True,
    )
    result = run_simulation(scenario, protocol, settings)
    return result.collector.completion_order[:completions]


def completion_records(
    scenario: ScenarioSpec,
    protocol: str,
    completions: int = 600,
    seed: int = 1,
):
    """Full completion records, in service order."""
    from repro.bus.model import BusSystem
    from repro.experiments.runner import make_arbiter
    from repro.stats.collector import CompletionCollector

    collector = CompletionCollector(
        batches=2, batch_size=completions // 2, warmup=0, keep_records=True
    )
    capacity = max(spec.max_outstanding for spec in scenario.agents)
    system = BusSystem(
        scenario,
        make_arbiter(protocol, scenario.num_agents, capacity),
        collector,
        seed=seed,
    )
    system.run()
    return collector.records[:completions]


def drive_arbiter(
    arbiter: Arbiter,
    arrivals: Sequence[Tuple[float, int]],
    priorities: Optional[Dict[int, bool]] = None,
) -> List[int]:
    """Serve a fixed request script through an arbiter, logically.

    ``arrivals`` is a list of (time, agent_id) pairs, time-sorted; each
    agent appears while it has no pending request.  Service is immediate:
    one request is granted per arbitration, service takes one time unit,
    and arbitrations happen back to back starting at the latest arrival
    seen so far.  Returns the order in which agents are served.
    """
    priorities = priorities or {}
    pending = sorted(arrivals)
    served: List[int] = []
    now = 0.0
    index = 0
    while index < len(pending) or arbiter.has_waiting():
        while index < len(pending) and pending[index][0] <= now:
            time, agent = pending[index]
            arbiter.request(agent, time, priority=priorities.get(agent, False))
            index += 1
        if not arbiter.has_waiting():
            now = pending[index][0]
            continue
        outcome = arbiter.start_arbitration(now)
        arbiter.grant(outcome.winner, now)
        served.append(outcome.winner)
        now += 1.0
        arbiter.release(outcome.winner, now)
    return served

"""Branch-coverage backfill for the analytical models.

The main analysis suites validate the models against the paper's tables
and the simulator; this file pins the edges those tests skip — the
remaining validation branches, parameter-scaling invariances, and the
limits the closed forms must respect.
"""

import dataclasses

import pytest

from repro.analysis.batching import (
    aap1_extreme_ratio,
    aap1_miss_probabilities,
    aap1_relative_throughputs,
)
from repro.analysis.mva import mva_closed_bus
from repro.analysis.saturation import (
    saturated_cycle_time,
    saturated_mean_waiting,
    saturated_per_agent_throughput,
)
from repro.errors import ConfigurationError
from repro.workload.distributions import Exponential


class TestMVAEdges:
    def test_negative_arbitration_time_rejected(self):
        with pytest.raises(ConfigurationError):
            mva_closed_bus(5, 1.0, arbitration_time=-0.1)

    def test_zero_arbitration_single_agent_is_pure_service(self):
        # No arbitration exposure, one agent: W is exactly one service.
        result = mva_closed_bus(1, mean_think_time=4.0, arbitration_time=0.0)
        assert result.mean_waiting == pytest.approx(1.0)
        assert result.throughput == pytest.approx(1.0 / 5.0)
        assert result.utilization == pytest.approx(result.throughput)

    def test_zero_think_time_allowed_and_saturates(self):
        result = mva_closed_bus(8, mean_think_time=0.0)
        assert result.utilization == pytest.approx(1.0, abs=0.01)

    def test_transaction_time_scales_waiting(self):
        # Doubling S and R̄ together doubles W and halves X.
        unit = mva_closed_bus(6, mean_think_time=2.0, arbitration_time=0.0)
        scaled = mva_closed_bus(
            6, mean_think_time=4.0, transaction_time=2.0, arbitration_time=0.0
        )
        assert scaled.mean_waiting == pytest.approx(2.0 * unit.mean_waiting)
        assert scaled.throughput == pytest.approx(unit.throughput / 2.0)
        assert scaled.mean_queue == pytest.approx(unit.mean_queue)

    def test_result_is_frozen(self):
        result = mva_closed_bus(4, mean_think_time=1.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.throughput = 0.0


class TestSaturationEdges:
    def test_nonpositive_transaction_time_rejected_everywhere(self):
        with pytest.raises(ConfigurationError):
            saturated_cycle_time(4, transaction_time=0.0)
        with pytest.raises(ConfigurationError):
            saturated_mean_waiting(4, 1.0, transaction_time=-1.0)
        with pytest.raises(ConfigurationError):
            saturated_per_agent_throughput(4, transaction_time=0.0)

    def test_per_agent_throughput_validates_population(self):
        with pytest.raises(ConfigurationError):
            saturated_per_agent_throughput(0)

    def test_cycle_time_and_throughput_are_reciprocal(self):
        for n in (1, 4, 30):
            for s in (0.5, 1.0, 2.0):
                assert saturated_cycle_time(n, s) * saturated_per_agent_throughput(
                    n, s
                ) == pytest.approx(1.0)

    def test_waiting_scales_with_transaction_time(self):
        # 10 agents, R̄ = 6 at S = 2: W = 10·2 − 6 = 14.
        assert saturated_mean_waiting(10, 6.0, transaction_time=2.0) == 14.0


class TestAAP1Edges:
    def test_long_thinks_restore_fairness(self):
        # With thinks far longer than a batch, everyone misses alike:
        # every q → 1 and the extreme ratio collapses toward 1.
        ratio = aap1_extreme_ratio(8, Exponential(500.0))
        assert ratio == pytest.approx(1.0, abs=0.02)
        q = aap1_miss_probabilities(8, Exponential(500.0))
        assert all(value > 0.98 for value in q.values())

    def test_extreme_ratio_bounded_by_factor_two(self):
        for think_mean in (0.1, 1.0, 3.0, 10.0):
            ratio = aap1_extreme_ratio(16, Exponential(think_mean))
            assert 1.0 <= ratio <= 2.0 + 1e-9

    def test_scale_invariance_in_transaction_time(self):
        # Scaling think times and the transaction time together leaves
        # the (dimensionless) miss probabilities unchanged.
        unit = aap1_miss_probabilities(12, Exponential(2.0))
        scaled = aap1_miss_probabilities(
            12, Exponential(6.0), transaction_time=3.0
        )
        for agent_id in unit:
            assert scaled[agent_id] == pytest.approx(unit[agent_id])

    def test_relative_throughputs_validate_like_miss_probabilities(self):
        with pytest.raises(ConfigurationError):
            aap1_relative_throughputs(1, Exponential(3.0))
        with pytest.raises(ConfigurationError):
            aap1_extreme_ratio(8, Exponential(3.0), transaction_time=-1.0)

    def test_two_agents_minimal_population(self):
        shares = aap1_relative_throughputs(2, Exponential(1.0))
        assert shares[2] == pytest.approx(1.0)
        assert 0.5 - 1e-9 <= shares[1] <= 1.0

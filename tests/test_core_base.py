"""Tests for the arbiter base machinery and the max-finder strategies."""

import pytest
from hypothesis import given, strategies as st

from repro.core.base import (
    DirectMaxFinder,
    Request,
    SingleOutstandingArbiter,
    WiredOrMaxFinder,
    identity_bits,
)
from repro.core.round_robin import DistributedRoundRobin
from repro.errors import ArbitrationError, ConfigurationError, ProtocolError


class TestIdentityBits:
    @pytest.mark.parametrize("agents,bits", [(1, 1), (3, 2), (10, 4), (30, 5), (64, 7)])
    def test_matches_lines_required(self, agents, bits):
        assert identity_bits(agents) == bits

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            identity_bits(0)


class TestDirectMaxFinder:
    def test_picks_largest_key(self):
        assert DirectMaxFinder().find_max({1: 10, 2: 30, 3: 20}) == 2

    def test_empty_raises(self):
        with pytest.raises(ArbitrationError):
            DirectMaxFinder().find_max({})

    def test_single(self):
        assert DirectMaxFinder().find_max({7: 1}) == 7


class TestWiredOrMaxFinder:
    def test_picks_largest_key(self):
        finder = WiredOrMaxFinder(width=8)
        assert finder.find_max({1: 10, 2: 30, 3: 20}) == 2

    def test_counts_rounds(self):
        finder = WiredOrMaxFinder(width=8)
        finder.find_max({1: 5, 2: 9})
        assert finder.resolutions == 1
        assert finder.total_rounds >= 1

    def test_duplicate_keys_rejected(self):
        finder = WiredOrMaxFinder(width=8)
        with pytest.raises(ArbitrationError):
            finder.find_max({1: 5, 2: 5})

    def test_empty_raises(self):
        with pytest.raises(ArbitrationError):
            WiredOrMaxFinder(width=4).find_max({})

    @given(
        st.dictionaries(
            st.integers(min_value=1, max_value=30),
            st.integers(min_value=1, max_value=255),
            min_size=1,
            max_size=15,
        ).filter(lambda d: len(set(d.values())) == len(d))
    )
    def test_agrees_with_direct_finder(self, keys):
        direct = DirectMaxFinder().find_max(keys)
        wired = WiredOrMaxFinder(width=8).find_max(keys)
        assert direct == wired


class _MinimalArbiter(SingleOutstandingArbiter):
    """Tiny concrete subclass to exercise the base bookkeeping."""

    name = "minimal"

    def has_waiting(self):
        return bool(self._pending)

    def start_arbitration(self, now):
        raise NotImplementedError


class TestSingleOutstandingBookkeeping:
    def test_request_registers(self):
        arbiter = _MinimalArbiter(4)
        arbiter.request(2, 1.0)
        assert arbiter.waiting_agents() == frozenset({2})

    def test_request_returns_record(self):
        arbiter = _MinimalArbiter(4)
        record = arbiter.request(2, 1.5, priority=True)
        assert isinstance(record, Request)
        assert record.issue_time == 1.5
        assert record.priority is True

    def test_double_request_rejected(self):
        arbiter = _MinimalArbiter(4)
        arbiter.request(2, 1.0)
        with pytest.raises(ProtocolError):
            arbiter.request(2, 2.0)

    def test_agent_zero_rejected(self):
        with pytest.raises(ProtocolError):
            _MinimalArbiter(4).request(0, 1.0)

    def test_agent_above_n_rejected(self):
        with pytest.raises(ProtocolError):
            _MinimalArbiter(4).request(5, 1.0)

    def test_grant_removes_pending(self):
        arbiter = _MinimalArbiter(4)
        arbiter.request(2, 1.0)
        record = arbiter.grant(2, 2.0)
        assert record.agent_id == 2
        assert not arbiter.has_waiting()

    def test_grant_without_request_rejected(self):
        with pytest.raises(ProtocolError):
            _MinimalArbiter(4).grant(2, 1.0)

    def test_reset_clears_pending(self):
        arbiter = _MinimalArbiter(4)
        arbiter.request(1, 1.0)
        arbiter.reset()
        assert not arbiter.has_waiting()

    def test_zero_agents_rejected(self):
        with pytest.raises(ConfigurationError):
            _MinimalArbiter(0)

    def test_pending_requests_view_is_copy(self):
        arbiter = _MinimalArbiter(4)
        arbiter.request(1, 1.0)
        view = arbiter.pending_requests()
        view.clear()
        assert arbiter.has_waiting()


class TestArbiterWithWiredOrFinder:
    def test_rr_runs_on_full_settle_simulation(self):
        # End-to-end: the RR protocol resolving through the actual
        # wired-OR settle process picks the same winners as the fast path.
        fast = DistributedRoundRobin(8)
        slow = DistributedRoundRobin(
            8, max_finder=WiredOrMaxFinder(width=DistributedRoundRobin(8).identity_width)
        )
        for arbiter in (fast, slow):
            for agent in (1, 3, 5, 8):
                arbiter.request(agent, 0.0)
        for _ in range(4):
            w_fast = fast.start_arbitration(1.0).winner
            w_slow = slow.start_arbitration(1.0).winner
            assert w_fast == w_slow
            fast.grant(w_fast, 1.0)
            slow.grant(w_slow, 1.0)

"""Tests for the asynchronous, placement-aware settle model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ArbitrationError, SignalError
from repro.signals.async_settle import AsyncContention
from repro.signals.contention import ParallelContention


class TestBasics:
    def test_single_agent_settles_instantly(self):
        result = AsyncContention(4).resolve([(0.5, 0b1010)])
        assert result.winner_identity == 0b1010
        assert result.last_change_time == 0.0

    def test_paper_example_both_ends_of_bus(self):
        result = AsyncContention(7).resolve([(0.0, 0b1010101), (1.0, 0b0011100)])
        assert result.winner_identity == 0b1010101
        # One exchange across the whole bus: the loser withdraws after
        # seeing the winner's bits (1 propagation), and the final word
        # must still cross back (settle counts that propagation).
        assert result.settle_time <= 3.5

    def test_empty_contention(self):
        result = AsyncContention(4).resolve([])
        assert result.winner_identity == 0
        assert result.pattern_changes == 0

    def test_position_validation(self):
        with pytest.raises(SignalError):
            AsyncContention(4).resolve([(1.5, 3)])

    def test_identity_validation(self):
        with pytest.raises(SignalError):
            AsyncContention(4).resolve([(0.5, 0)])
        with pytest.raises(SignalError):
            AsyncContention(4).resolve([(0.5, 16)])

    def test_duplicate_identities_rejected(self):
        with pytest.raises(ArbitrationError):
            AsyncContention(4).resolve([(0.1, 5), (0.9, 5)])

    def test_logic_delay_validation(self):
        with pytest.raises(SignalError):
            AsyncContention(4, logic_delay=-0.1)

    def test_logic_delay_slows_settling(self):
        placements = [(0.0, 0b1010101), (1.0, 0b0011100), (0.5, 0b1001100)]
        fast = AsyncContention(7, logic_delay=0.0).resolve(placements)
        slow = AsyncContention(7, logic_delay=0.25).resolve(placements)
        assert slow.settle_time > fast.settle_time
        assert slow.winner_identity == fast.winner_identity


class TestConvergenceProperties:
    @given(st.data())
    def test_always_finds_the_maximum(self, data):
        width = data.draw(st.integers(min_value=2, max_value=8))
        count = data.draw(st.integers(min_value=1, max_value=min(10, 2**width - 1)))
        identities = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=2**width - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        positions = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=count,
                max_size=count,
            )
        )
        result = AsyncContention(width).resolve(list(zip(positions, identities)))
        assert result.winner_identity == max(identities)

    @given(st.data())
    def test_taub_style_settle_bound(self, data):
        # Taub proved the lines stop moving within k/2 end-to-end
        # propagations for his electrical model; our observation-timed
        # variant stays within a small tolerance of that, and well
        # within k.
        width = data.draw(st.integers(min_value=2, max_value=8))
        count = data.draw(st.integers(min_value=2, max_value=min(10, 2**width - 1)))
        identities = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=2**width - 1),
                min_size=count,
                max_size=count,
                unique=True,
            )
        )
        positions = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=count,
                max_size=count,
            )
        )
        result = AsyncContention(width).resolve(list(zip(positions, identities)))
        assert result.last_change_time <= width / 2 + 0.5
        assert result.settle_time <= width + 1.0

    @given(
        st.lists(
            st.integers(min_value=1, max_value=127),
            min_size=1,
            max_size=10,
            unique=True,
        )
    )
    def test_agrees_with_synchronous_model(self, identities):
        # Same winner as the synchronous-round model, for co-located
        # agents (zero propagation between them).
        synchronous = ParallelContention(7).resolve(identities)
        placements = [(0.5, identity) for identity in identities]
        asynchronous = AsyncContention(7).resolve(placements)
        assert asynchronous.winner_identity == synchronous.winner_identity

    def test_co_located_agents_settle_immediately(self):
        result = AsyncContention(6).resolve([(0.3, 40), (0.3, 33), (0.3, 17)])
        assert result.winner_identity == 40
        assert result.last_change_time == pytest.approx(0.0)

"""Regression tests for cache epoch 6: the engine leaves the key.

Epoch 6 accompanies the heterogeneous lane engine: the engines are
conformance-verified bit-identical across the whole batch domain —
fault plans and watchdog recovery included — so the ``engine`` selector
drops *out* of the content-addressed key and one payload serves both
execution paths.  The epoch bump retires every epoch-5 entry (which
keyed on the engine) without touching its bytes.  These tests pin the
behaviours the bump must preserve:

- entries written under an older epoch are *ignored* (clean miss, file
  left intact) — never replayed, never quarantined;
- the ``.corrupt`` quarantine path still fires on unreadable bytes;
- the engine field no longer separates keys: otherwise-identical cells
  key the same however they are executed, fault-plan cells included,
  and a payload stored by one engine replays for the other;
- lane packing is invisible to the cache: a grid executed as one
  super-batch hits entries stored by per-cell runs, in any order.
"""

from dataclasses import replace

import pytest

import repro.experiments.cache as cache_module
from repro.bus.watchdog import WatchdogPolicy
from repro.experiments.cache import CACHE_EPOCH, ResultCache, cache_key
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.faults.plan import BUS_LEVEL_FAULTS, FaultPlan
from repro.workload.scenarios import equal_load

SETTINGS = SimulationSettings(batches=2, batch_size=50, warmup=5, seed=21)


def _scenario():
    return equal_load(4, 1.5)


def _fault_settings(seed=21):
    plan = FaultPlan.generate(
        seed=seed,
        rate=0.3,
        horizon=100.0,
        kinds=tuple(sorted(BUS_LEVEL_FAULTS, key=lambda kind: kind.value)),
        num_agents=4,
        line_span=5,
    )
    return replace(
        SETTINGS, seed=seed, fault_plan=plan, watchdog=WatchdogPolicy()
    )


def _fingerprint(result):
    return (
        result.elapsed,
        result.utilization,
        result.system_throughput().mean,
        result.mean_waiting().mean,
    )


def test_epoch_is_six():
    assert CACHE_EPOCH == 6


def test_engine_field_is_not_part_of_the_key():
    scenario = _scenario()
    event_key = cache_key(scenario, "rr", replace(SETTINGS, engine="event"))
    batch_key = cache_key(scenario, "rr", replace(SETTINGS, engine="batch"))
    assert event_key == batch_key


def test_fault_plan_cells_key_identically_across_engines():
    # Fault plans are in the batch domain now; the plan (and watchdog
    # policy) stays in the key, the engine stays out.
    scenario = _scenario()
    faulty = _fault_settings()
    event_key = cache_key(scenario, "rr", replace(faulty, engine="event"))
    batch_key = cache_key(scenario, "rr", replace(faulty, engine="batch"))
    assert event_key == batch_key
    # The plan itself still separates cells from their fault-free twins.
    assert event_key != cache_key(scenario, "rr", replace(SETTINGS, seed=faulty.seed))


def test_old_epoch_entries_are_ignored_not_corrupted(tmp_path, monkeypatch):
    scenario = _scenario()
    result = run_simulation(scenario, "rr", SETTINGS)
    # Store the result under the previous epoch's key...
    monkeypatch.setattr(cache_module, "CACHE_EPOCH", CACHE_EPOCH - 1)
    old_key = cache_key(scenario, "rr", SETTINGS)
    cache = ResultCache(tmp_path)
    cache.put(old_key, result)
    monkeypatch.undo()
    # ...then look the same cell up under the current epoch: a clean
    # miss, with the stale file untouched (not deleted, not quarantined).
    new_key = cache_key(scenario, "rr", SETTINGS)
    assert new_key != old_key
    assert cache.get(new_key) is None
    assert cache.quarantined == 0
    stale = tmp_path / f"{old_key}.pkl"
    assert stale.exists()
    assert not (tmp_path / f"{old_key}.corrupt").exists()
    # The stale entry is still readable under its own key — the bump
    # retired it, nothing mangled it.
    assert _fingerprint(cache.get(old_key)) == _fingerprint(result)


def test_corrupt_quarantine_still_fires_after_the_bump(tmp_path):
    scenario = _scenario()
    cache = ResultCache(tmp_path)
    key = cache_key(scenario, "rr", SETTINGS)
    cache.put(key, run_simulation(scenario, "rr", SETTINGS))
    (tmp_path / f"{key}.pkl").write_bytes(b"epoch-6 garbage")
    with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
        assert cache.get(key) is None
    assert cache.quarantined == 1
    assert (tmp_path / f"{key}.corrupt").read_bytes() == b"epoch-6 garbage"


def test_payload_stored_by_one_engine_replays_for_the_other(tmp_path):
    # An event-engine result stored under the shared key is a hit for a
    # batch-engine lookup of the same cell (and vice versa) — safe only
    # because the engines are bit-identical on the domain.
    scenario = _scenario()
    cache = ResultCache(tmp_path)
    event_settings = replace(SETTINGS, engine="event")
    event_result = run_simulation(_scenario(), "rr", event_settings)
    cache.put(cache_key(scenario, "rr", event_settings), event_result)
    assert len(cache) == 1
    batch_lookup = cache.get(cache_key(scenario, "rr", replace(SETTINGS, engine="batch")))
    assert batch_lookup is not None
    assert _fingerprint(batch_lookup) == _fingerprint(event_result)
    # And the replayed payload matches what the batch engine computes.
    batch_result = run_simulation(_scenario(), "rr", replace(SETTINGS, engine="batch"))
    assert _fingerprint(batch_result) == _fingerprint(batch_lookup)
    assert batch_result.collector.agent_totals == batch_lookup.collector.agent_totals


def test_lane_packing_order_is_invisible_to_the_cache(tmp_path):
    # Fill the cache with one sweep, then re-run the same grid shuffled:
    # every cell hits, nothing re-executes, and results come back in the
    # new declaration order.
    def grid():
        return [
            SweepCell(equal_load(agents, load), protocol, replace(SETTINGS, seed=seed))
            for agents, load, protocol, seed in (
                (2, 1.0, "rr", 1),
                (6, 3.0, "fcfs", 2),
                (4, 2.0, "rr", 3),
                (4, 2.0, "fixed", 4),
            )
        ]

    warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
    first = warm.run(grid())
    assert warm.stats.cache_hits == 0
    assert warm.stats.executed == len(first)

    replay = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
    shuffled = list(reversed(grid()))
    second = replay.run(shuffled)
    assert replay.stats.cache_hits == len(shuffled)
    assert replay.stats.executed == 0
    for fresh, cached in zip(first, reversed(second)):
        assert _fingerprint(fresh) == _fingerprint(cached)

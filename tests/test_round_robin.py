"""Unit tests for the distributed round-robin protocol (§3.1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.round_robin import DistributedRoundRobin, RRPriorityPolicy
from repro.errors import ArbitrationError, ConfigurationError

from _utils import drive_arbiter


def _request_all(arbiter, agents, now=0.0):
    for agent in agents:
        arbiter.request(agent, now)


class TestConstruction:
    @pytest.mark.parametrize("impl", [1, 2, 3])
    def test_valid_implementations(self, impl):
        DistributedRoundRobin(8, implementation=impl)

    def test_invalid_implementation(self):
        with pytest.raises(ConfigurationError):
            DistributedRoundRobin(8, implementation=4)

    def test_impl_1_and_2_cost_one_extra_line(self):
        assert DistributedRoundRobin(8, implementation=1).extra_lines == 1
        assert DistributedRoundRobin(8, implementation=2).extra_lines == 1

    def test_impl_3_costs_no_extra_line(self):
        assert DistributedRoundRobin(8, implementation=3).extra_lines == 0

    def test_requires_winner_identity(self):
        # §3.1: all three implementations need the winner identity on the
        # bus, so binary-patterned lines cannot be used without a
        # winner broadcast.
        assert DistributedRoundRobin(8).requires_winner_identity is True

    def test_identity_width_has_priority_and_rr_bits(self):
        arbiter = DistributedRoundRobin(10)  # k = 4
        assert arbiter.identity_width == 6


class TestScanOrder:
    """The RR scan from winner j: j-1, …, 1, N, N-1, …, j."""

    @pytest.mark.parametrize("impl", [1, 2, 3])
    def test_first_arbitration_highest_wins(self, impl):
        arbiter = DistributedRoundRobin(8, implementation=impl)
        _request_all(arbiter, [2, 5, 7])
        assert arbiter.start_arbitration(0.0).winner == 7

    @pytest.mark.parametrize("impl", [1, 2, 3])
    def test_below_previous_winner_has_priority(self, impl):
        arbiter = DistributedRoundRobin(8, implementation=impl)
        _request_all(arbiter, [2, 5, 7])
        first = arbiter.start_arbitration(0.0)
        arbiter.grant(first.winner, 0.0)  # 7 served
        # 2 and 5 remain; 8 joins: 5 < 7 must win before 8.
        arbiter.request(8, 1.0)
        assert arbiter.start_arbitration(1.0).winner == 5

    @pytest.mark.parametrize("impl", [1, 2, 3])
    def test_wraps_to_top_when_nobody_below(self, impl):
        arbiter = DistributedRoundRobin(8, implementation=impl)
        _request_all(arbiter, [3, 6])
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 6
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 3
        arbiter.request(5, 1.0)
        arbiter.request(7, 1.0)
        # last winner 3; nobody below 3 → highest overall wins.
        assert arbiter.start_arbitration(1.0).winner == 7

    @pytest.mark.parametrize("impl", [1, 2, 3])
    def test_full_house_serves_descending_cycle(self, impl):
        arbiter = DistributedRoundRobin(5, implementation=impl)
        arrivals = [(0.0, agent) for agent in range(1, 6)]
        served = drive_arbiter(arbiter, arrivals)
        assert served == [5, 4, 3, 2, 1]

    def test_no_starvation_under_persistent_requests(self):
        # Every agent re-requests immediately: each must be served exactly
        # once per round.
        arbiter = DistributedRoundRobin(6)
        _request_all(arbiter, range(1, 7))
        served = []
        for _ in range(18):
            winner = arbiter.start_arbitration(0.0).winner
            arbiter.grant(winner, 0.0)
            served.append(winner)
            arbiter.request(winner, 0.0)  # immediately re-request
        for agent in range(1, 7):
            assert served.count(agent) == 3


class TestImplementation3:
    def test_empty_low_round_triggers_second_pass(self):
        arbiter = DistributedRoundRobin(8, implementation=3)
        _request_all(arbiter, [4, 6])
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 6 wins
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 4 wins
        # last winner = 4; only 5 and 7 requesting — both above 4.
        arbiter.request(5, 1.0)
        arbiter.request(7, 1.0)
        outcome = arbiter.start_arbitration(1.0)
        assert outcome.winner == 7
        assert outcome.rounds == 2
        assert arbiter.extra_passes == 1

    def test_initial_last_winner_is_n_plus_1(self):
        arbiter = DistributedRoundRobin(8, implementation=3)
        assert arbiter.last_winner == 9

    def test_first_arbitration_needs_no_second_pass(self):
        arbiter = DistributedRoundRobin(8, implementation=3)
        _request_all(arbiter, [2, 5])
        assert arbiter.start_arbitration(0.0).rounds == 1

    def test_single_pass_when_low_requests_exist(self):
        arbiter = DistributedRoundRobin(8, implementation=3)
        _request_all(arbiter, [3, 7])
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 7
        assert arbiter.start_arbitration(0.0).rounds == 1  # 3 < 7 competes


class TestImplementation1Keys:
    def test_rr_bit_is_msb_of_basic_layout(self):
        arbiter = DistributedRoundRobin(8)  # k = 4
        _request_all(arbiter, [2, 7])
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 7
        arbiter.request(8, 1.0)
        outcome = arbiter.start_arbitration(1.0)
        # agent 2 is below last winner 7: RR bit set → key 0b1_0010 = 18.
        assert outcome.keys[2] == (1 << 4) | 2
        assert outcome.keys[8] == 8

    def test_winner_recorded_without_rr_bit(self):
        arbiter = DistributedRoundRobin(8)
        _request_all(arbiter, [2, 7])
        arbiter.start_arbitration(0.0)
        assert arbiter.last_winner == 7  # static identity, not the keyed value


class TestErrorsAndReset:
    def test_arbitration_without_requests_raises(self):
        with pytest.raises(ArbitrationError):
            DistributedRoundRobin(4).start_arbitration(0.0)

    def test_reset_restores_initial_pointer(self):
        arbiter = DistributedRoundRobin(8)
        _request_all(arbiter, [5])
        arbiter.start_arbitration(0.0)
        arbiter.reset()
        assert arbiter.last_winner == 0
        assert not arbiter.has_waiting()

    def test_arbitration_counter(self):
        arbiter = DistributedRoundRobin(4)
        _request_all(arbiter, [1, 2])
        arbiter.start_arbitration(0.0)
        assert arbiter.arbitrations == 1


class TestPriorityIntegration:
    def test_priority_request_beats_rr_favourite(self):
        arbiter = DistributedRoundRobin(8)
        _request_all(arbiter, [5, 7])
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 7 wins
        # 5 is the RR favourite now, but 6 arrives with an urgent request.
        arbiter.request(6, 1.0, priority=True)
        assert arbiter.start_arbitration(1.0).winner == 6

    def test_priority_among_priorities_ignore_rr(self):
        arbiter = DistributedRoundRobin(8, priority_policy=RRPriorityPolicy.IGNORE_RR)
        arbiter.request(3, 0.0, priority=True)
        arbiter.request(6, 0.0, priority=True)
        assert arbiter.start_arbitration(0.0).winner == 6

    def test_rr_within_priority_class(self):
        arbiter = DistributedRoundRobin(
            8, priority_policy=RRPriorityPolicy.RR_WITHIN_CLASS
        )
        arbiter.request(3, 0.0, priority=True)
        arbiter.request(6, 0.0, priority=True)
        winner = arbiter.start_arbitration(0.0).winner
        arbiter.grant(winner, 0.0)
        assert winner == 6
        arbiter.request(6, 1.0, priority=True)
        # RR within class: 3 < last winner 6, so 3 goes first.
        assert arbiter.start_arbitration(1.0).winner == 3

    @pytest.mark.parametrize("impl", [2, 3])
    def test_priority_competes_despite_gating(self, impl):
        arbiter = DistributedRoundRobin(8, implementation=impl)
        _request_all(arbiter, [2, 7])
        arbiter.grant(arbiter.start_arbitration(0.0).winner, 0.0)  # 7
        arbiter.request(8, 1.0, priority=True)
        # Non-priority gating would exclude 8 (above last winner 7); the
        # urgent request competes anyway and wins.
        assert arbiter.start_arbitration(1.0).winner == 8


class TestSelectionRuleProperty:
    @given(
        st.sets(st.integers(min_value=1, max_value=20), min_size=1, max_size=20),
        st.integers(min_value=0, max_value=21),
    )
    def test_winner_matches_oracle_rule(self, waiting, last_winner):
        # Winner = max below last winner if any, else global max: the
        # definition of the descending RR scan.
        for impl in (1, 2, 3):
            arbiter = DistributedRoundRobin(20, implementation=impl)
            arbiter.last_winner = last_winner
            for agent in waiting:
                arbiter.request(agent, 0.0)
            below = {a for a in waiting if a < last_winner}
            expected = max(below) if below else max(waiting)
            assert arbiter.start_arbitration(0.0).winner == expected

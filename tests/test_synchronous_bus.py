"""Tests for the synchronous (clock-aligned) bus variant of §2.1."""

import pytest

from repro.bus.model import BusSystem
from repro.bus.timing import BusTiming
from repro.core.round_robin import DistributedRoundRobin
from repro.errors import ConfigurationError
from repro.stats.collector import CompletionCollector
from repro.workload.distributions import Deterministic
from repro.workload.scenarios import AgentSpec, ScenarioSpec

from _utils import quick_settings
from repro.experiments.runner import run_simulation
from repro.workload.scenarios import equal_load


def _run_micro(think_times, timing, completions=4):
    agents = tuple(
        AgentSpec(agent_id=i + 1, interrequest=Deterministic(think))
        for i, think in enumerate(think_times)
    )
    scenario = ScenarioSpec(name="sync-micro", agents=agents)
    collector = CompletionCollector(
        batches=2, batch_size=max(1, completions // 2), warmup=0, keep_records=True
    )
    system = BusSystem(
        scenario, DistributedRoundRobin(scenario.num_agents), collector,
        timing=timing, seed=1,
    )
    system.run()
    return collector.records


class TestTimingHelpers:
    def test_async_default(self):
        timing = BusTiming()
        assert not timing.synchronous
        assert timing.delay_to_next_edge(1.37) == 0.0

    def test_edge_alignment(self):
        timing = BusTiming(clock_period=0.25)
        assert timing.delay_to_next_edge(1.0) == 0.0
        assert timing.delay_to_next_edge(1.1) == pytest.approx(0.15)
        assert timing.delay_to_next_edge(1.25) == 0.0

    def test_negative_period_rejected(self):
        with pytest.raises(ConfigurationError):
            BusTiming(clock_period=-0.25)


class TestSynchronousMicroTiming:
    def test_arbitration_waits_for_clock_edge(self):
        # Lone agent, think 1.1: the request at t = 1.1 waits for the
        # 1.25 edge; arbitration runs 1.25-1.75; grant on-edge at 1.75.
        timing = BusTiming(clock_period=0.25)
        records = _run_micro([1.1], timing, completions=2)
        assert records[0].issue_time == pytest.approx(1.1)
        assert records[0].grant_time == pytest.approx(1.75)
        assert records[0].completion_time == pytest.approx(2.75)

    def test_on_edge_request_starts_immediately(self):
        timing = BusTiming(clock_period=0.25)
        records = _run_micro([1.0], timing, completions=2)
        assert records[0].grant_time == pytest.approx(1.5)

    def test_grants_land_on_edges(self):
        timing = BusTiming(clock_period=0.25)
        records = _run_micro([0.6, 0.9], timing, completions=8)
        for record in records:
            phase = record.grant_time % 0.25
            assert min(phase, 0.25 - phase) < 1e-9

    def test_async_bus_unchanged_by_default(self):
        records_default = _run_micro([1.1], BusTiming(), completions=2)
        assert records_default[0].grant_time == pytest.approx(1.6)


class TestSynchronousSystemBehaviour:
    def test_synchronisation_latency_costs_waiting(self):
        scenario = equal_load(8, 0.5)  # light load: idle dispatches dominate
        settings = quick_settings()
        async_run = run_simulation(scenario, "rr", settings)
        from dataclasses import replace

        sync_settings = replace(settings, timing=BusTiming(clock_period=0.5))
        sync_run = run_simulation(scenario, "rr", sync_settings)
        # Roughly a quarter-period of extra wait per request at light
        # load (half the period on average, but only when arriving
        # off-edge to an idle bus).
        assert sync_run.mean_waiting().mean > async_run.mean_waiting().mean
        assert sync_run.mean_waiting().mean < async_run.mean_waiting().mean + 0.5

    def test_saturated_bus_unaffected_by_clocking(self):
        # Under saturation arbitration overlaps tenures whose boundaries
        # are edge-aligned anyway: the clock costs nothing.
        scenario = equal_load(8, 3.0)
        settings = quick_settings()
        async_run = run_simulation(scenario, "rr", settings)
        from dataclasses import replace

        sync_settings = replace(settings, timing=BusTiming(clock_period=0.5))
        sync_run = run_simulation(scenario, "rr", sync_settings)
        assert sync_run.system_throughput().mean == pytest.approx(
            async_run.system_throughput().mean, rel=0.02
        )

"""Tests for trace-driven workloads."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workload.scenarios import AgentSpec, ScenarioSpec
from repro.workload.traces import (
    TraceDistribution,
    load_trace,
    save_trace,
    synthesize_program_trace,
)


class TestTraceDistribution:
    def test_replays_in_order(self):
        trace = TraceDistribution([1.0, 2.0, 3.0])
        rng = random.Random(0)
        assert [trace.sample(rng) for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_cycles_by_default(self):
        trace = TraceDistribution([1.0, 2.0])
        rng = random.Random(0)
        assert [trace.sample(rng) for _ in range(5)] == [1.0, 2.0, 1.0, 2.0, 1.0]

    def test_no_cycle_exhausts(self):
        trace = TraceDistribution([1.0], cycle=False)
        rng = random.Random(0)
        trace.sample(rng)
        with pytest.raises(ConfigurationError):
            trace.sample(rng)

    def test_offset_phases_agents_apart(self):
        base = [1.0, 2.0, 3.0]
        shifted = TraceDistribution(base, offset=1)
        rng = random.Random(0)
        assert shifted.sample(rng) == 2.0

    def test_declared_moments_match_samples(self):
        trace = TraceDistribution([2.0, 4.0])
        assert trace.mean == pytest.approx(3.0)
        assert trace.cv == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceDistribution([])
        with pytest.raises(ConfigurationError):
            TraceDistribution([-1.0])
        with pytest.raises(ConfigurationError):
            TraceDistribution([1.0], offset=-1)

    def test_usable_in_scenario(self):
        from repro.experiments.runner import SimulationSettings, run_simulation

        trace = synthesize_program_trace(500, seed=3)
        agents = tuple(
            AgentSpec(
                agent_id=i,
                interrequest=TraceDistribution(trace, offset=i * 37),
            )
            for i in range(1, 5)
        )
        scenario = ScenarioSpec(name="trace-driven", agents=agents)
        result = run_simulation(
            scenario,
            "rr",
            SimulationSettings(batches=2, batch_size=200, warmup=50, seed=1),
        )
        assert result.system_throughput().mean > 0.0


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "bus.trace"
        save_trace(path, [1.5, 2.25, 0.75], header="synthetic test trace")
        assert load_trace(path) == [1.5, 2.25, 0.75]

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "bus.trace"
        path.write_text("# header\n1.0\n\n2.0  # inline\n")
        assert load_trace(path) == [1.0, 2.0]

    def test_bad_number_reported_with_line(self, tmp_path):
        path = tmp_path / "bus.trace"
        path.write_text("1.0\nnot-a-number\n")
        with pytest.raises(ConfigurationError, match=":2:"):
            load_trace(path)

    def test_negative_rejected(self, tmp_path):
        path = tmp_path / "bus.trace"
        path.write_text("-0.5\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "bus.trace"
        path.write_text("# nothing here\n")
        with pytest.raises(ConfigurationError):
            load_trace(path)


class TestSynthesizer:
    def test_requested_length(self):
        assert len(synthesize_program_trace(321, seed=1)) == 321

    def test_deterministic_by_seed(self):
        assert synthesize_program_trace(100, seed=5) == synthesize_program_trace(
            100, seed=5
        )
        assert synthesize_program_trace(100, seed=5) != synthesize_program_trace(
            100, seed=6
        )

    def test_burstier_than_renewal(self):
        # Phase alternation makes the trace's CV exceed the exponential's
        # 1.0: that burstiness is what the synthesizer exists to provide.
        trace = TraceDistribution(synthesize_program_trace(5000, seed=2))
        assert trace.cv > 1.1

    def test_autocorrelated_phases(self):
        # Neighbouring samples come from the same program phase far more
        # often than not: lag-1 autocorrelation is clearly positive.
        values = synthesize_program_trace(5000, seed=4)
        mean = sum(values) / len(values)
        num = sum(
            (a - mean) * (b - mean) for a, b in zip(values, values[1:])
        )
        den = sum((v - mean) ** 2 for v in values)
        assert num / den > 0.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthesize_program_trace(0)
        with pytest.raises(ConfigurationError):
            synthesize_program_trace(10, compute_mean=0.0)

"""Tests for the §5 future-work extensions: hybrid and adaptive arbiters."""

import pytest

from repro.core.adaptive import AdaptiveArbiter
from repro.core.hybrid import HybridArbiter
from repro.errors import ArbitrationError, ConfigurationError

from _utils import drive_arbiter


class TestHybridOrdering:
    def test_fcfs_across_distinct_arrivals(self):
        arbiter = HybridArbiter(8)
        served = drive_arbiter(arbiter, [(0.0, 5), (0.5, 8), (1.2, 2)])
        assert served == [5, 8, 2]

    def test_rr_within_simultaneous_cohort(self):
        # Three simultaneous arrivals: plain FCFS would serve 7, 5, 2
        # (static priority); the hybrid serves them round-robin.  With no
        # previous winner the first pick is the highest, then the RR scan
        # takes over inside the cohort.
        arbiter = HybridArbiter(8)
        for agent in (2, 5, 7):
            arbiter.request(agent, 1.0)
        served = []
        for _ in range(3):
            winner = arbiter.start_arbitration(2.0).winner
            arbiter.grant(winner, 2.0)
            served.append(winner)
        assert served == [7, 5, 2]

    def test_rr_pointer_carries_across_cohorts(self):
        arbiter = HybridArbiter(8)
        # First cohort: agents 6, 7.  7 then 6 served; last winner 6.
        arbiter.request(6, 0.0)
        arbiter.request(7, 0.0)
        for _ in range(2):
            arbiter.grant(arbiter.start_arbitration(1.0).winner, 1.0)
        assert arbiter.last_winner == 6
        # Second simultaneous cohort 3, 5, 7: RR from pointer 6 → 5 first
        # (highest below 6), then 3, then 7.
        for agent in (3, 5, 7):
            arbiter.request(agent, 2.0)
        served = []
        for _ in range(3):
            winner = arbiter.start_arbitration(3.0).winner
            arbiter.grant(winner, 3.0)
            served.append(winner)
        assert served == [5, 3, 7]

    def test_older_cohort_always_beats_newer(self):
        arbiter = HybridArbiter(8)
        arbiter.request(2, 0.0)
        arbiter.request(8, 1.0)  # newer, higher id
        assert arbiter.start_arbitration(1.5).winner == 2

    def test_costs_two_extra_lines(self):
        assert HybridArbiter(8).extra_lines == 2

    def test_requires_winner_identity(self):
        assert HybridArbiter(8).requires_winner_identity is True

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridArbiter(8, coincidence_window=-1.0)

    def test_empty_arbitration_rejected(self):
        with pytest.raises(ArbitrationError):
            HybridArbiter(8).start_arbitration(0.0)

    def test_reset(self):
        arbiter = HybridArbiter(8)
        arbiter.request(3, 0.0)
        arbiter.start_arbitration(0.0)
        arbiter.reset()
        assert arbiter.last_winner == 0
        assert not arbiter.has_waiting()


class TestAdaptiveMode:
    def test_starts_in_fcfs_mode(self):
        assert AdaptiveArbiter(8).mode == "fcfs"

    def test_spread_arrivals_keep_fcfs_mode(self):
        arbiter = AdaptiveArbiter(8, history=10, rr_threshold=0.5)
        for i, agent in enumerate((1, 2, 3, 4), start=1):
            arbiter.request(agent, float(i))
        assert arbiter.mode == "fcfs"
        assert arbiter.coincidence_fraction == 0.0

    def test_coincident_arrivals_flip_to_rr_mode(self):
        arbiter = AdaptiveArbiter(8, history=10, rr_threshold=0.5)
        for agent in (1, 2, 3, 4):
            arbiter.request(agent, 5.0)  # all simultaneous
        assert arbiter.coincidence_fraction >= 0.5
        assert arbiter.mode == "rr"

    def test_fcfs_mode_serves_in_arrival_order(self):
        arbiter = AdaptiveArbiter(8)
        served = drive_arbiter(arbiter, [(0.0, 6), (1.0, 3), (2.0, 8)])
        assert served == [6, 3, 8]

    def test_rr_mode_rotates_within_simultaneous_burst(self):
        arbiter = AdaptiveArbiter(8, history=4, rr_threshold=0.5)
        for agent in (2, 5, 7):
            arbiter.request(agent, 1.0)
        served = []
        for _ in range(3):
            winner = arbiter.start_arbitration(2.0).winner
            arbiter.grant(winner, 2.0)
            served.append(winner)
        # RR scan: 7 first, then descending below the pointer.
        assert served == [7, 5, 2]

    def test_decision_counters(self):
        arbiter = AdaptiveArbiter(8)
        arbiter.request(1, 0.0)
        arbiter.start_arbitration(0.5)
        assert arbiter.fcfs_decisions + arbiter.rr_decisions == 1

    def test_history_window_forgets_old_pattern(self):
        arbiter = AdaptiveArbiter(8, history=4, rr_threshold=0.5)
        # Burst of coincident arrivals first...
        for agent in (1, 2, 3):
            arbiter.request(agent, 0.0)
        for _ in range(3):
            arbiter.grant(arbiter.start_arbitration(1.0).winner, 1.0)
        assert arbiter.mode == "rr"
        # ...then spread arrivals push the burst out of the window.
        for i, agent in enumerate((4, 5, 6, 7), start=2):
            arbiter.request(agent, float(i))
        assert arbiter.mode == "fcfs"

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(8, rr_threshold=1.5)

    def test_history_validated(self):
        with pytest.raises(ConfigurationError):
            AdaptiveArbiter(8, history=0)

    def test_reset(self):
        arbiter = AdaptiveArbiter(8)
        arbiter.request(1, 0.0)
        arbiter.start_arbitration(0.0)
        arbiter.reset()
        assert arbiter.rr_decisions == 0
        assert arbiter.coincidence_fraction == 0.0

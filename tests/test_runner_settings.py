"""Tests for run_simulation plumbing: settings propagation and options."""

import pytest

from repro.bus.timing import BusTiming
from repro.errors import StatisticsError
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load


SCENARIO = equal_load(6, 2.0)


class TestSettingsPropagation:
    def test_confidence_level_reaches_estimates(self):
        settings = SimulationSettings(
            batches=4, batch_size=300, warmup=100, seed=1, confidence=0.95
        )
        result = run_simulation(SCENARIO, "rr", settings)
        assert result.mean_waiting().confidence == 0.95

    def test_custom_timing_changes_waits(self):
        base = SimulationSettings(batches=4, batch_size=300, warmup=100, seed=1)
        slow = SimulationSettings(
            batches=4,
            batch_size=300,
            warmup=100,
            seed=1,
            timing=BusTiming(transaction_time=2.0, arbitration_time=1.0),
        )
        fast_w = run_simulation(SCENARIO, "rr", base).mean_waiting().mean
        slow_w = run_simulation(SCENARIO, "rr", slow).mean_waiting().mean
        assert slow_w > 1.8 * fast_w

    def test_default_timing_not_aliased_between_settings(self):
        # ``timing`` uses a default_factory: every settings object must
        # own a distinct BusTiming, not share one class-level instance.
        first = SimulationSettings()
        second = SimulationSettings()
        assert first.timing == BusTiming()
        assert first.timing is not second.timing

    def test_batch_plan_respected(self):
        settings = SimulationSettings(batches=7, batch_size=123, warmup=45, seed=1)
        result = run_simulation(SCENARIO, "rr", settings)
        batches = result.collector.completed_batches()
        assert len(batches) == 7
        assert all(batch.count == 123 for batch in batches)

    def test_keep_samples_off_by_default(self):
        settings = SimulationSettings(batches=4, batch_size=200, warmup=50, seed=1)
        result = run_simulation(SCENARIO, "rr", settings)
        with pytest.raises(StatisticsError):
            result.waiting_cdf()

    def test_max_events_guard_propagates(self):
        from repro.errors import SimulationError

        settings = SimulationSettings(
            batches=4, batch_size=300, warmup=100, seed=1, max_events=50
        )
        with pytest.raises(SimulationError):
            run_simulation(SCENARIO, "rr", settings)

    def test_elapsed_and_seed_recorded(self):
        settings = SimulationSettings(batches=4, batch_size=200, warmup=50, seed=777)
        result = run_simulation(SCENARIO, "rr", settings)
        assert result.seed == 777
        assert result.elapsed > 0.0
        assert result.protocol == "rr"


class TestCommonRandomNumbers:
    def test_same_seed_same_arrivals_across_protocols(self):
        # First-issue times are arrival-process facts, independent of the
        # arbiter: compare them via records.
        from repro.bus.model import BusSystem
        from repro.experiments.runner import make_arbiter
        from repro.stats.collector import CompletionCollector

        first_issues = {}
        for protocol in ("rr", "aap1"):
            collector = CompletionCollector(
                batches=2, batch_size=300, warmup=0, keep_records=True
            )
            system = BusSystem(
                SCENARIO, make_arbiter(protocol, 6), collector, seed=3
            )
            system.run()
            per_agent = {}
            for record in collector.records:
                per_agent.setdefault(record.agent_id, record.issue_time)
            first_issues[protocol] = per_agent
        assert first_issues["rr"] == first_issues["aap1"]

    def test_different_seeds_differ(self):
        def mean_w(seed):
            settings = SimulationSettings(
                batches=4, batch_size=300, warmup=100, seed=seed
            )
            return run_simulation(SCENARIO, "rr", settings).mean_waiting().mean

        assert mean_w(1) != mean_w(2)

"""Integration tests: the paper's qualitative claims, end to end.

Each test runs full bus simulations at reduced scale and asserts a
*shape* the paper reports — fairness of RR/FCFS, unfairness of the
baselines, the conservation law, variance ordering, and the worst-case
pathology.  These are the executable versions of the claims DESIGN.md
maps to tables.
"""

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load, open_loop_equal_load, worst_case_rr

from _utils import quick_settings


SETTINGS = SimulationSettings(batches=5, batch_size=1200, warmup=400, seed=2026)


@pytest.fixture(scope="module")
def saturated_runs():
    scenario = equal_load(10, 2.5)
    return {
        name: run_simulation(scenario, name, SETTINGS)
        for name in ("rr", "fcfs", "fcfs-aincr", "aap1", "aap2", "fixed", "hybrid")
    }


class TestFairnessClaims:
    def test_rr_is_perfectly_fair(self, saturated_runs):
        ratio = saturated_runs["rr"].extreme_throughput_ratio()
        assert abs(ratio.mean - 1.0) <= 0.05

    def test_fcfs_strategy1_nearly_fair(self, saturated_runs):
        # §4.2: at most ~6-9% advantage for the highest identity.
        ratio = saturated_runs["fcfs"].extreme_throughput_ratio()
        assert 0.95 <= ratio.mean <= 1.15

    def test_fcfs_aincr_fair(self, saturated_runs):
        ratio = saturated_runs["fcfs-aincr"].extreme_throughput_ratio()
        assert abs(ratio.mean - 1.0) <= 0.05

    def test_hybrid_fair(self, saturated_runs):
        ratio = saturated_runs["hybrid"].extreme_throughput_ratio()
        assert abs(ratio.mean - 1.0) <= 0.05

    def test_aap1_strongly_favours_high_identities(self, saturated_runs):
        # §2.3: up to 100% more bandwidth for the favoured agent.
        ratio = saturated_runs["aap1"].extreme_throughput_ratio()
        assert ratio.mean > 1.3

    def test_aap2_also_unfair_but_batched(self, saturated_runs):
        ratio = saturated_runs["aap2"].extreme_throughput_ratio()
        assert ratio.mean > 1.05

    def test_fixed_priority_starves_low_identity(self, saturated_runs):
        shares = saturated_runs["fixed"].bandwidth_shares()
        assert shares.get(1, 0.0) < 0.02
        # The highest identity runs at its full closed-loop demand while
        # the lowest is starved: at least ~1.5x the fair share vs ~0.
        assert shares[10] > 0.15

    def test_protocols_more_fair_than_baselines(self, saturated_runs):
        # The headline: both new protocols dominate both AAPs on fairness.
        for new in ("rr", "fcfs"):
            for old in ("aap1", "aap2"):
                assert abs(
                    saturated_runs[new].extreme_throughput_ratio().mean - 1.0
                ) < abs(saturated_runs[old].extreme_throughput_ratio().mean - 1.0)


class TestConservationLaw:
    def test_mean_waiting_equal_across_disciplines(self, saturated_runs):
        # Footnote 4 [Klei76]: every work-conserving non-preemptive
        # discipline that ignores service times has the same mean wait.
        means = {
            name: run.mean_waiting().mean
            for name, run in saturated_runs.items()
        }
        reference = means["rr"]
        for name, value in means.items():
            assert value == pytest.approx(reference, rel=0.05), name

    def test_same_total_throughput(self, saturated_runs):
        for name, run in saturated_runs.items():
            assert run.system_throughput().mean == pytest.approx(1.0, abs=0.02), name


class TestVarianceOrdering:
    def test_fcfs_has_minimum_waiting_variance(self, saturated_runs):
        # [ShAh81] via §4.3: FCFS minimises waiting-time variance.
        fcfs_std = saturated_runs["fcfs-aincr"].std_waiting().mean
        for name in ("rr", "aap1", "aap2"):
            assert saturated_runs[name].std_waiting().mean >= fcfs_std * 0.98, name

    def test_rr_variance_grows_with_system_size(self):
        ratios = []
        for num_agents in (10, 30):
            scenario = equal_load(num_agents, 2.5)
            rr = run_simulation(scenario, "rr", SETTINGS)
            fcfs = run_simulation(scenario, "fcfs", SETTINGS)
            ratios.append(rr.std_waiting().mean / fcfs.std_waiting().mean)
        assert ratios[1] > ratios[0] > 1.0


class TestWorstCasePathology:
    def test_rr_collapses_only_at_cv_zero(self):
        from repro.experiments.table_4_5 import slow_to_other_ratio

        deterministic = run_simulation(worst_case_rr(10, cv=0.0), "rr", SETTINGS)
        jittered = run_simulation(worst_case_rr(10, cv=0.25), "rr", SETTINGS)
        assert slow_to_other_ratio(deterministic).mean == pytest.approx(0.5, abs=0.05)
        assert slow_to_other_ratio(jittered).mean > 0.6

    def test_fcfs_immune_to_the_pathology(self):
        from repro.experiments.table_4_5 import slow_to_other_ratio

        scenario = worst_case_rr(10, cv=0.0)
        fcfs = run_simulation(scenario, "fcfs", SETTINGS)
        load_ratio = scenario.agent(1).offered_load() / scenario.agent(2).offered_load()
        assert slow_to_other_ratio(fcfs).mean > load_ratio


class TestOpenLoopExtension:
    def test_multi_outstanding_fcfs_run(self):
        # Moderate load so the r-cap rarely blocks the sources: the
        # open-loop system then carries its full offered rate.
        scenario = open_loop_equal_load(6, 0.6, max_outstanding=3)
        result = run_simulation(
            scenario, "fcfs-aincr", quick_settings(batches=3, batch_size=400, warmup=100)
        )
        assert result.system_throughput().mean == pytest.approx(0.6, abs=0.05)

    def test_open_loop_rejected_by_single_outstanding_arbiters(self):
        from repro.errors import ProtocolError
        from repro.bus.model import BusSystem
        from repro.core.round_robin import DistributedRoundRobin
        from repro.stats.collector import CompletionCollector

        scenario = open_loop_equal_load(4, 0.9, max_outstanding=3)
        system = BusSystem(
            scenario,
            DistributedRoundRobin(4),
            CompletionCollector(batches=2, batch_size=100, warmup=0),
            seed=1,
        )
        with pytest.raises(ProtocolError):
            system.run()

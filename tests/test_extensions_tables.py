"""Tests for the extension tables (E1–E3) and their CLI wiring."""

import pytest

from repro.cli import main
from repro.experiments.extensions import run_table_e1, run_table_e2, run_table_e3
from repro.experiments.scale import SCALES


class TestTableE1:
    def test_covers_every_distributed_protocol(self):
        table = run_table_e1()
        protocols = {row["protocol"] for row in table.data}
        assert {"rr", "rr-impl3", "fcfs", "fcfs-aincr", "aap1", "hybrid"} <= protocols
        assert not any(name.startswith("central") for name in protocols)

    def test_line_costs_match_the_paper(self):
        table = run_table_e1(num_agents=30)
        by_name = {row["protocol"]: row for row in table.data}
        assert by_name["rr"]["extra_lines"] == 1          # RR-priority bit
        assert by_name["rr-impl3"]["extra_lines"] == 0    # the free variant
        assert by_name["fcfs-aincr"]["extra_lines"] == 1  # a-incr line
        # §3.2: FCFS at most doubles the identity width (+ priority bit).
        assert by_name["fcfs"]["identity_width"] <= 2 * 5 + 1

    def test_rr_needs_winner_broadcast(self):
        table = run_table_e1()
        by_name = {row["protocol"]: row for row in table.data}
        assert by_name["rr"]["requires_winner_identity"] is True
        assert by_name["fcfs"]["requires_winner_identity"] is False


class TestTableE2:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table_e2(trials=10, rounds=200, fault_rates=(0.01, 0.1))

    def test_static_always_survives(self, table):
        assert all(row["static_survival"] == 1.0 for row in table.data)

    def test_rotating_degrades_with_fault_rate(self, table):
        rates = [row["rotating_mean_grants"] for row in table.data]
        assert rates[0] > rates[1]

    def test_rotating_clearly_worse(self, table):
        for row in table.data:
            assert row["rotating_survival"] < row["static_survival"]


class TestTableE3:
    @pytest.fixture(scope="class")
    def table(self):
        # Smoke-length runs are shorter than a few program phases, so
        # the phase correlation dominates and fairness/conservation are
        # not yet meaningful; quick scale covers many phases.
        return run_table_e3(scale=SCALES["quick"])

    def test_covers_protocol_set(self, table):
        assert [row["protocol"] for row in table.data] == [
            "rr", "fcfs", "fcfs-aincr", "aap1", "aap2",
        ]

    def test_batching_inflates_high_identity_throughput(self, table):
        # Every protocol sees identical arrivals (common random numbers:
        # each sweep cell gets a fresh copy of the trace scenario), so
        # cross-protocol ratio differences are pure protocol effects.
        # The assured-access batching protocols favour high identities
        # (§2 prior art), lifting t_N/t_1 above the RR level.
        by_name = {row["protocol"]: row for row in table.data}
        assert by_name["aap1"]["ratio"].mean > by_name["rr"]["ratio"].mean
        assert by_name["aap2"]["ratio"].mean > by_name["rr"]["ratio"].mean

    def test_conservation_on_traces(self, table):
        by_name = {row["protocol"]: row for row in table.data}
        assert by_name["rr"]["mean_w"].mean == pytest.approx(
            by_name["fcfs"]["mean_w"].mean, rel=0.08
        )


class TestCLIWiring:
    def test_table_e1_via_cli(self, capsys):
        assert main(["--scale", "smoke", "table", "E1"]) == 0
        out = capsys.readouterr().out
        assert "Table E1" in out and "winner broadcast" in out

    def test_unknown_extension_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "E9"])


class TestTableE4:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.experiments.extensions import run_table_e4

        return run_table_e4(scale=SCALES["quick"])

    def test_paper_rule_shows_the_pointer_reset_pathology(self, table):
        by_name = {row["arbiter"]: row for row in table.data}
        assert by_name["rr (paper rule)"]["normal_spread"] > 3.0

    def test_frozen_pointer_restores_fairness(self, table):
        by_name = {row["arbiter"]: row for row in table.data}
        assert by_name["rr (frozen pointer)"]["normal_spread"] < 1.3

    def test_fcfs_immune(self, table):
        by_name = {row["arbiter"]: row for row in table.data}
        assert by_name["fcfs"]["normal_spread"] < 1.3

    def test_fix_costs_urgent_traffic_nothing(self, table):
        by_name = {row["arbiter"]: row for row in table.data}
        assert by_name["rr (frozen pointer)"]["urgent_w"] == pytest.approx(
            by_name["rr (paper rule)"]["urgent_w"], rel=0.05
        )

    def test_e4_via_cli(self, capsys):
        from repro.cli import main

        assert main(["--scale", "smoke", "table", "E4"]) == 0
        assert "Table E4" in capsys.readouterr().out

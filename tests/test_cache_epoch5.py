"""Regression tests for cache epoch 5: the engine joins the key.

Epoch 5 accompanies the lockstep batch engine: the ``engine`` selector
becomes part of the content-addressed key, and the epoch bump retires
every pre-batch entry without touching its bytes.  These tests pin the
three behaviours the bump must preserve:

- entries written under an older epoch are *ignored* (clean miss, file
  left intact) — never replayed, never quarantined;
- the ``.corrupt`` quarantine path still fires on unreadable bytes;
- the engine field separates keys for otherwise-identical cells, while
  the two engines' payloads stay interchangeable (they are contractually
  bit-identical on the batch domain).
"""

from dataclasses import replace

import pytest

import repro.experiments.cache as cache_module
from repro.experiments.cache import CACHE_EPOCH, ResultCache, cache_key
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load

SETTINGS = SimulationSettings(batches=2, batch_size=50, warmup=5, seed=21)


def _scenario():
    return equal_load(4, 1.5)


def _fingerprint(result):
    return (
        result.elapsed,
        result.utilization,
        result.system_throughput().mean,
        result.mean_waiting().mean,
    )


def test_epoch_is_five():
    assert CACHE_EPOCH == 5


def test_engine_field_participates_in_the_key():
    scenario = _scenario()
    event_key = cache_key(scenario, "rr", SETTINGS)
    batch_key = cache_key(scenario, "rr", replace(SETTINGS, engine="batch"))
    assert event_key != batch_key


def test_old_epoch_entries_are_ignored_not_corrupted(tmp_path, monkeypatch):
    scenario = _scenario()
    result = run_simulation(scenario, "rr", SETTINGS)
    # Store the result under the previous epoch's key...
    monkeypatch.setattr(cache_module, "CACHE_EPOCH", CACHE_EPOCH - 1)
    old_key = cache_key(scenario, "rr", SETTINGS)
    cache = ResultCache(tmp_path)
    cache.put(old_key, result)
    monkeypatch.undo()
    # ...then look the same cell up under the current epoch: a clean
    # miss, with the stale file untouched (not deleted, not quarantined).
    new_key = cache_key(scenario, "rr", SETTINGS)
    assert new_key != old_key
    assert cache.get(new_key) is None
    assert cache.quarantined == 0
    stale = tmp_path / f"{old_key}.pkl"
    assert stale.exists()
    assert not (tmp_path / f"{old_key}.corrupt").exists()
    # The stale entry is still readable under its own key — the bump
    # retired it, nothing mangled it.
    assert _fingerprint(cache.get(old_key)) == _fingerprint(result)


def test_corrupt_quarantine_still_fires_after_the_bump(tmp_path):
    scenario = _scenario()
    cache = ResultCache(tmp_path)
    key = cache_key(scenario, "rr", SETTINGS)
    cache.put(key, run_simulation(scenario, "rr", SETTINGS))
    (tmp_path / f"{key}.pkl").write_bytes(b"epoch-5 garbage")
    with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
        assert cache.get(key) is None
    assert cache.quarantined == 1
    assert (tmp_path / f"{key}.corrupt").read_bytes() == b"epoch-5 garbage"


def test_same_cell_different_engine_different_key_identical_payload(tmp_path):
    scenario = _scenario()
    cache = ResultCache(tmp_path)
    event_settings = SETTINGS
    batch_settings = replace(SETTINGS, engine="batch")
    event_key = cache_key(scenario, "rr", event_settings)
    batch_key = cache_key(scenario, "rr", batch_settings)
    cache.put(event_key, run_simulation(_scenario(), "rr", event_settings))
    cache.put(batch_key, run_simulation(_scenario(), "rr", batch_settings))
    assert len(cache) == 2
    event_cached = cache.get(event_key)
    batch_cached = cache.get(batch_key)
    assert event_cached is not None and batch_cached is not None
    # Distinct keys, but the engines' payloads are bit-identical.
    assert _fingerprint(event_cached) == _fingerprint(batch_cached)
    assert (
        event_cached.collector.agent_totals == batch_cached.collector.agent_totals
    )

"""Soak: a 200-job stream with injected crashes and deadline expiries.

The PR's acceptance scenario, end to end on real process pools:

- 200 jobs stream through one service — a mix of repeat workloads
  (cache hits, cross-client dedup) and fresh cells (lane packs and
  direct runs on the sharded pool);
- at least two worker kills are injected mid-stream (``os._exit`` in
  the worker, indistinguishable from an OOM kill at the
  ``BrokenProcessPool`` boundary) and at least one job carries an
  already-expired deadline;
- afterwards: **every** job reached a terminal state (nothing silently
  dropped), and every completed job's results are byte-identical to a
  direct :class:`~repro.session.session.Session` run of the same
  requests — crashes were replayed, never double-applied with
  divergent output.
"""

import pickle

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.runner import SimulationSettings
from repro.service import ArbitrationService, BackoffPolicy, ServiceConfig
from repro.service.jobs import TERMINAL_STATES
from repro.session.request import RunRequest
from repro.session.session import Session
from repro.workload.scenarios import equal_load

JOBS = 200
FAST = BackoffPolicy(base=0.001, cap=0.01, jitter=0.0)


def _request(seed, protocol="rr", agents=3, load=0.5):
    return RunRequest(
        equal_load(agents, load), protocol, SimulationSettings(
            batches=2, batch_size=25, warmup=5, seed=seed
        )
    )


@pytest.mark.slow
def test_soak_200_jobs_with_crashes_and_deadlines(tmp_path):
    config = ServiceConfig(
        queue_limit=JOBS,  # admission stays open; rejection is tested elsewhere
        shards=2,
        workers=1,
        backoff=FAST,
        poll_interval=0.02,
    )
    service = ArbitrationService(cache=ResultCache(tmp_path / "cache"), config=config)
    jobs = []
    try:
        # Warm phase: a handful of distinct workloads, repeated — the
        # stream the cache and dedup layers are built for.
        for index in range(80):
            protocol = ("rr", "fcfs")[index % 2]
            jobs.append(service.submit([_request(seed=index % 8, protocol=protocol)]))

        # Crash phase: arm two kills, then submit fresh never-seen cells
        # so real pool payloads (not cache hits) absorb the crashes.
        service.pool.arm_kills(2)
        for index in range(80, 140):
            jobs.append(service.submit([_request(seed=1000 + index)]))

        # Deadline phase: a few jobs that must expire, interleaved with
        # healthy ones that must not be disturbed by the expiries.
        for index in range(140, 200):
            if index % 20 == 0:
                jobs.append(service.submit([_request(seed=index)], deadline=0.0))
            else:
                jobs.append(service.submit([_request(seed=index % 16)]))

        assert len(jobs) == JOBS
        for job in jobs:
            assert job.wait(120), f"{job.job_id} never reached a terminal state"
    finally:
        service.close()

    # -- terminal-state guarantee: nothing dropped, nothing ambiguous -------
    states = {}
    for job in jobs:
        assert job.state in TERMINAL_STATES, (job.job_id, job.state)
        states[job.state] = states.get(job.state, 0) + 1
    assert states.get("done", 0) + states.get("timeout", 0) == JOBS
    assert states.get("timeout", 0) >= 1  # the injected expiries fired

    # -- the injected faults actually happened ------------------------------
    counters = service.stats_snapshot()["counters"]
    assert service.pool.crashes >= 2
    assert counters["service.retried"] >= 1  # crashes were replayed, not eaten
    assert counters["service.deadline_exceeded"] == states["timeout"]

    # -- byte-identical to a direct session run -----------------------------
    # One reference run per unique request (the soak repeats workloads);
    # a crash-replayed or cache-served result must match it exactly.
    reference = {}
    session = Session()
    for job in jobs:
        if job.state != "done":
            continue
        for request, result in zip(job.requests, job.results()):
            key = request.cache_key()
            if key not in reference:
                reference[key] = session.run_requests([request])[0].result
            assert pickle.dumps(result) == pickle.dumps(reference[key]), (
                f"{job.job_id} diverged from the direct run"
            )

"""Cache-key invariance across the session refactor (epoch 6 pinned).

The session layer replaced the per-caller engine-selection and cache
code paths; nothing about a cell's *identity* was allowed to move.  Two
regression surfaces pin that down:

- every way of computing a key — the historical
  :func:`~repro.experiments.cache.cache_key` call, a
  :class:`~repro.session.request.RunRequest`'s own :meth:`cache_key`,
  and a request that crossed the JSON wire — produces byte-identical
  epoch-6 digests, engine variants included;
- entries written by the *pre-refactor* paths (direct ``cache_key`` +
  ``run_simulation`` + ``cache.put``) are hits for session-routed
  gathers: a populated cache directory survives the refactor with zero
  re-execution.

The hypothesis suite generalises the first surface into a property:
for any request the wire format can express — every distribution the
workload builders emit, fault plans, watchdog policies, timing and
telemetry blocks — ``from_json(to_json(r))`` reconstructs a request
with an identical canonical document and an identical epoch-6 key.
"""

from dataclasses import replace

from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.bus.timing import BusTiming
from repro.bus.watchdog import WatchdogPolicy
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.faults.plan import BUS_LEVEL_FAULTS, FaultPlan
from repro.observability import TelemetrySettings
from repro.session import RunRequest, Session
from repro.workload.arrivals import MarkovModulatedPoisson
from repro.workload.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Hyperexponential,
)
from repro.workload.scenarios import AgentSpec, ScenarioSpec, equal_load, unequal_load
from repro.workload.traces import TraceDistribution

SETTINGS = SimulationSettings(batches=2, batch_size=50, warmup=5, seed=21)


def _fingerprint(result):
    return (
        result.elapsed,
        result.utilization,
        result.system_throughput().mean,
        result.mean_waiting().mean,
    )


def _fault_settings(seed=21):
    plan = FaultPlan.generate(
        seed=seed,
        rate=0.3,
        horizon=100.0,
        kinds=tuple(sorted(BUS_LEVEL_FAULTS, key=lambda kind: kind.value)),
        num_agents=4,
        line_span=5,
    )
    return replace(SETTINGS, seed=seed, fault_plan=plan, watchdog=WatchdogPolicy())


class TestSessionKeysMatchDirectKeys:
    def test_request_key_equals_direct_cache_key(self):
        scenario = equal_load(4, 2.0)
        assert RunRequest(scenario, "rr", SETTINGS).cache_key() == cache_key(
            scenario, "rr", SETTINGS
        )

    def test_engine_variants_share_one_session_key(self):
        scenario = equal_load(4, 2.0)
        keys = {
            RunRequest(scenario, "rr", replace(SETTINGS, engine=engine)).cache_key()
            for engine in ("event", "batch")
        }
        assert keys == {cache_key(scenario, "rr", SETTINGS)}

    def test_session_engine_override_never_changes_the_key(self):
        # plan-time overrides rewrite settings.engine; epoch 6 demands
        # the key stays put.
        request = RunRequest(equal_load(4, 2.0), "rr", SETTINGS)
        assert request.resolved("event").cache_key() == request.cache_key()

    def test_fault_plan_requests_key_identically(self):
        scenario = equal_load(4, 2.0)
        faulty = _fault_settings()
        assert RunRequest(scenario, "rr", faulty).cache_key() == cache_key(
            scenario, "rr", faulty
        )

    def test_default_settings_key_like_explicit_defaults(self):
        scenario = equal_load(4, 2.0)
        assert RunRequest(scenario, "rr").cache_key() == cache_key(
            scenario, "rr", SimulationSettings()
        )

    def test_wire_round_trip_preserves_the_key(self):
        request = RunRequest(unequal_load(6, 0.2, 3.0), "aap1", SETTINGS)
        assert RunRequest.from_json(request.to_json()).cache_key() == request.cache_key()


class TestPreRefactorEntriesStillHit:
    def test_session_gather_hits_entries_written_the_old_way(self, tmp_path):
        # Populate the cache exactly as pre-refactor code did: direct
        # cache_key + run_simulation + put, no session machinery.
        cells = [
            (equal_load(4, 2.0), "rr", SETTINGS),
            (equal_load(6, 1.5), "fcfs", replace(SETTINGS, seed=9)),
            (equal_load(4, 2.0), "fixed", SETTINGS),
        ]
        cache = ResultCache(tmp_path)
        fresh = []
        for scenario, protocol, settings in cells:
            result = run_simulation(scenario, protocol, settings)
            cache.put(cache_key(scenario, protocol, settings), result)
            fresh.append(result)

        session = Session(jobs=1, cache=ResultCache(tmp_path))
        for scenario, protocol, settings in cells:
            session.submit(scenario, protocol, settings)
        outcomes = session.gather()
        assert session.stats.cache_hits == len(cells)
        assert session.stats.executed == 0
        for outcome, result in zip(outcomes, fresh):
            assert outcome.route == "cache"
            assert _fingerprint(outcome.result) == _fingerprint(result)

    def test_fault_plan_entries_replay_through_the_session(self, tmp_path):
        scenario = equal_load(4, 2.0)
        faulty = _fault_settings()
        cache = ResultCache(tmp_path)
        result = run_simulation(scenario, "rr", faulty)
        cache.put(cache_key(scenario, "rr", faulty), result)

        session = Session(jobs=1, cache=ResultCache(tmp_path))
        (outcome,) = session.run_requests([RunRequest(scenario, "rr", faulty)])
        assert outcome.route == "cache"
        assert session.stats.executed == 0
        assert _fingerprint(outcome.result) == _fingerprint(result)

    def test_session_stored_entries_hit_for_direct_lookups(self, tmp_path):
        # And the converse: a session-stored entry replays for code
        # still doing direct key lookups.
        scenario = equal_load(4, 2.0)
        session = Session(jobs=1, cache=ResultCache(tmp_path))
        (outcome,) = session.run_requests([RunRequest(scenario, "rr", SETTINGS)])
        assert outcome.stored
        direct = ResultCache(tmp_path).get(cache_key(scenario, "rr", SETTINGS))
        assert direct is not None
        assert _fingerprint(direct) == _fingerprint(outcome.result)


# -- wire-format property suite ----------------------------------------------

_means = st.floats(min_value=0.05, max_value=50.0, allow_nan=False, allow_infinity=False)

_distributions = st.one_of(
    _means.map(Deterministic),
    _means.map(Exponential),
    st.builds(Erlang, _means, st.integers(min_value=1, max_value=6)),
    st.builds(
        Hyperexponential,
        _means,
        st.floats(min_value=1.01, max_value=5.0, allow_nan=False),
    ),
    st.builds(
        TraceDistribution,
        st.lists(_means, min_size=1, max_size=8),
        cycle=st.just(True),
    ),
    # The arrival layer's MMPP (on-off corner included): phase is part
    # of the wire format and the spec key, so it must survive the trip.
    st.builds(
        MarkovModulatedPoisson,
        rates=st.one_of(
            st.tuples(_means, _means),
            st.tuples(_means, st.just(0.0)),
        ),
        switch_rates=st.tuples(
            st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
            st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
        ),
        phase=st.sampled_from([0, 1]),
    ),
)

_protocols = st.sampled_from(["rr", "rr-impl3", "fcfs", "aap1", "fixed", "central-rr"])


@st.composite
def _scenarios(draw):
    num_agents = draw(st.integers(min_value=1, max_value=6))
    agents = []
    for agent_id in range(1, num_agents + 1):
        # Open-loop agents may pipeline requests (the §3.2 r > 1
        # extension); a closed-loop agent stalls, so r is pinned to 1.
        open_loop = draw(st.booleans())
        max_outstanding = draw(st.integers(min_value=1, max_value=4)) if open_loop else 1
        agents.append(
            AgentSpec(
                agent_id=agent_id,
                interrequest=draw(_distributions),
                priority_fraction=draw(
                    st.one_of(st.just(0.0), st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
                ),
                open_loop=open_loop,
                max_outstanding=max_outstanding,
            )
        )
    return ScenarioSpec(name=draw(st.sampled_from(["grid", "probe"])), agents=tuple(agents))


_fault_plans = st.builds(
    FaultPlan.generate,
    seed=st.integers(min_value=0, max_value=2**31),
    rate=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    horizon=st.just(50.0),
    kinds=st.just(tuple(sorted(BUS_LEVEL_FAULTS, key=lambda kind: kind.value))),
    num_agents=st.integers(min_value=2, max_value=6),
    line_span=st.just(5),
)

_settings = st.builds(
    SimulationSettings,
    batches=st.integers(min_value=1, max_value=5),
    batch_size=st.integers(min_value=10, max_value=200),
    warmup=st.integers(min_value=0, max_value=50),
    keep_order=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**31),
    timing=st.builds(
        BusTiming,
        transaction_time=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
        arbitration_time=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    ),
    fault_plan=st.one_of(st.none(), _fault_plans),
    watchdog=st.one_of(st.none(), st.just(WatchdogPolicy())),
    telemetry=st.one_of(
        st.none(),
        # At least one knob must be on: an all-off block is rejected.
        st.sampled_from([(True, False), (False, True), (True, True)]).map(
            lambda knobs: TelemetrySettings(events=knobs[0], metrics=knobs[1])
        ),
    ),
    engine=st.sampled_from(["event", "batch"]),
)

_requests = st.builds(
    RunRequest,
    scenario=_scenarios(),
    protocol=_protocols,
    settings=_settings,
    tag=st.one_of(st.none(), st.text(max_size=12)),
)


class TestWireRoundTripProperties:
    @hyp_settings(max_examples=40, deadline=None)
    @given(request=_requests)
    def test_json_round_trip_is_canonical(self, request):
        restored = RunRequest.from_json(request.to_json())
        assert restored.to_dict() == request.to_dict()
        assert restored.to_json() == request.to_json()

    @hyp_settings(max_examples=40, deadline=None)
    @given(request=_requests)
    def test_json_round_trip_preserves_epoch6_key(self, request):
        restored = RunRequest.from_json(request.to_json())
        assert restored.cache_key() == request.cache_key()
        # And the key equals the historical direct computation.
        resolved = request.resolved()
        assert request.cache_key() == cache_key(
            resolved.scenario, resolved.protocol, resolved.settings
        )

    @hyp_settings(max_examples=25, deadline=None)
    @given(request=_requests, engine=st.sampled_from(["event", "batch"]))
    def test_engine_never_enters_the_key(self, request, engine):
        assert request.resolved(engine).cache_key() == request.cache_key()

"""Tests for the first-class protocol registry (repro.protocols.registry)."""

import pytest

from repro.cli import main
from repro.core.base import Arbiter
from repro.errors import ConfigurationError
from repro.experiments import SimulationSettings, run_simulation
from repro.protocols.registry import (
    PROTOCOLS,
    ProtocolSpec,
    get_spec,
    make_arbiter,
    protocol_names,
    register,
    unregister,
)
from repro.workload.scenarios import equal_load, open_loop_equal_load


class TestLookup:
    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown protocol 'lottery'"):
            make_arbiter("lottery", 8)

    def test_unknown_protocol_lists_choices(self):
        with pytest.raises(ConfigurationError, match="choose one of"):
            get_spec("nope")

    def test_typo_gets_a_suggestion(self):
        with pytest.raises(ConfigurationError, match="did you mean 'fcfs'"):
            get_spec("fcsf")

    def test_names_sorted_and_complete(self):
        names = protocol_names()
        assert names == tuple(sorted(names))
        for expected in ("rr", "fcfs", "hybrid", "adaptive", "aap1", "central-rr"):
            assert expected in names


class TestOutstandingValidation:
    def test_r_above_one_rejected_for_rr_at_config_time(self):
        with pytest.raises(ConfigurationError, match="FCFS arbiters extend to r > 1"):
            make_arbiter("rr", 8, max_outstanding=4)

    @pytest.mark.parametrize("protocol", ["rr", "hybrid", "adaptive", "aap1", "ticket-fcfs"])
    def test_r_above_one_rejected_for_every_non_fcfs(self, protocol):
        with pytest.raises(ConfigurationError):
            make_arbiter(protocol, 8, max_outstanding=2)

    @pytest.mark.parametrize("protocol", ["fcfs", "fcfs-aincr"])
    def test_fcfs_accepts_r_above_one(self, protocol):
        arbiter = make_arbiter(protocol, 8, max_outstanding=4)
        assert arbiter.num_agents == 8

    def test_r_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="must be >= 1"):
            make_arbiter("fcfs", 8, max_outstanding=0)

    def test_open_loop_scenario_rejected_before_simulation(self):
        scenario = open_loop_equal_load(6, 0.5, max_outstanding=4)
        settings = SimulationSettings(batches=2, batch_size=50, warmup=10, seed=1)
        with pytest.raises(ConfigurationError, match="r=4"):
            run_simulation(scenario, "rr", settings)


class TestCapabilityRoundTrip:
    @pytest.mark.parametrize("name", protocol_names())
    @pytest.mark.parametrize("num_agents", [4, 8, 30])
    def test_declared_width_and_lines_match_instance(self, name, num_agents):
        spec = get_spec(name)
        arbiter = spec.build(num_agents)
        assert spec.number_width(num_agents) == arbiter.identity_width
        assert spec.extra_lines == arbiter.extra_lines

    @pytest.mark.parametrize("name", ["fcfs", "fcfs-aincr"])
    @pytest.mark.parametrize("r", [2, 4, 8])
    def test_declared_width_tracks_outstanding(self, name, r):
        spec = get_spec(name)
        assert spec.number_width(8, r) == spec.build(8, r).identity_width

    def test_supports_outstanding_matches_instance_flag(self):
        for name in protocol_names():
            spec = get_spec(name)
            assert spec.supports_outstanding == spec.build(6).supports_outstanding


class TestUniformFactoryConvention:
    @pytest.mark.parametrize("name", protocol_names())
    def test_every_factory_takes_num_agents_and_r(self, name):
        arbiter = PROTOCOLS[name](6, 1)
        assert isinstance(arbiter, Arbiter)
        assert arbiter.num_agents == 6


class TestAdHocRegistration:
    def test_single_arg_callable_adapted(self):
        from repro.baselines.central import CentralRoundRobin

        PROTOCOLS["central-rr-adhoc"] = lambda n: CentralRoundRobin(n)
        try:
            arbiter = make_arbiter("central-rr-adhoc", 5)
            assert arbiter.num_agents == 5
            # adapted callables are declared incapable of r > 1
            with pytest.raises(ConfigurationError):
                make_arbiter("central-rr-adhoc", 5, max_outstanding=2)
        finally:
            del PROTOCOLS["central-rr-adhoc"]
        with pytest.raises(ConfigurationError):
            get_spec("central-rr-adhoc")

    def test_duplicate_register_rejected_without_overwrite(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register(get_spec("rr"))

    def test_setitem_spec_name_must_match_key(self):
        spec = get_spec("rr")
        with pytest.raises(ConfigurationError, match="does not match"):
            PROTOCOLS["not-rr"] = spec

    def test_unregister_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            unregister("never-registered")

    def test_run_simulation_sees_adhoc_protocol(self):
        from repro.core.round_robin import DistributedRoundRobin

        PROTOCOLS["rr-adhoc"] = lambda n: DistributedRoundRobin(n)
        try:
            settings = SimulationSettings(batches=2, batch_size=50, warmup=10, seed=3)
            result = run_simulation(equal_load(4, 1.0), "rr-adhoc", settings)
            assert result.protocol == "rr-adhoc"
        finally:
            del PROTOCOLS["rr-adhoc"]


class TestSpecMetadata:
    def test_paper_sections_declared(self):
        assert get_spec("rr").paper_section == "§3.1"
        assert get_spec("fcfs").paper_section == "§3.2"
        assert get_spec("hybrid").paper_section == "§5"

    def test_central_oracles_excluded_from_crn(self):
        assert not get_spec("central-rr").common_random_numbers
        assert not get_spec("central-fcfs").common_random_numbers
        assert get_spec("rr").common_random_numbers

    def test_from_callable_flags_varargs_as_r_capable(self):
        spec = ProtocolSpec.from_callable("v", lambda *args: None)
        assert spec.supports_outstanding


class TestListProtocolsCLI:
    def test_list_protocols_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--list-protocols"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for name in protocol_names():
            assert name in out
        assert "§3.1" in out and "r>1" in out

    def test_protocols_subcommand_matches_listing(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "summary" in out
        assert "distributed FCFS" in out

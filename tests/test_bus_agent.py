"""Unit tests for the bus agent state machine."""

import random

import pytest

from repro.bus.agent import BusAgent
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError, SimulationError
from repro.workload.distributions import Deterministic, Exponential
from repro.workload.scenarios import AgentSpec


class Harness:
    """Wires a BusAgent to a real simulator and records its requests."""

    def __init__(self, spec, seed=1):
        self.simulator = Simulator()
        self.issued = []
        self.agent = BusAgent(
            spec,
            rng=random.Random(seed),
            issue=lambda agent_id, priority: self.issued.append(
                (self.simulator.now, agent_id, priority)
            ),
            schedule=lambda delay, action: self.simulator.schedule(delay, action),
        )


class TestClosedLoop:
    def test_first_request_after_one_think_time(self):
        harness = Harness(AgentSpec(agent_id=1, interrequest=Deterministic(2.0)))
        harness.agent.start()
        harness.simulator.run()
        assert harness.issued == [(2.0, 1, False)]

    def test_stalls_until_completion(self):
        harness = Harness(AgentSpec(agent_id=1, interrequest=Deterministic(2.0)))
        harness.agent.start()
        harness.simulator.run()
        assert len(harness.issued) == 1  # stalled: no second request
        harness.simulator.run(until=5.0)  # bus serves the request at 5.0
        harness.agent.on_completion(5.0)
        harness.simulator.run()
        assert harness.issued[1] == (7.0, 1, False)

    def test_outstanding_tracks_lifecycle(self):
        harness = Harness(AgentSpec(agent_id=1, interrequest=Deterministic(1.0)))
        harness.agent.start()
        harness.simulator.run()
        assert harness.agent.outstanding == 1
        harness.agent.on_completion(2.0)
        assert harness.agent.outstanding == 0

    def test_completion_without_request_raises(self):
        harness = Harness(AgentSpec(agent_id=1, interrequest=Deterministic(1.0)))
        with pytest.raises(SimulationError):
            harness.agent.on_completion(1.0)

    def test_think_time_accumulated(self):
        harness = Harness(AgentSpec(agent_id=1, interrequest=Deterministic(3.0)))
        harness.agent.start()
        harness.simulator.run()
        harness.agent.on_completion(4.0)
        harness.simulator.run()
        assert harness.agent.total_think_time == pytest.approx(6.0)

    def test_closed_loop_with_multi_outstanding_rejected(self):
        with pytest.raises(ConfigurationError):
            AgentSpec(agent_id=1, interrequest=Deterministic(1.0), max_outstanding=2)


class TestOpenLoop:
    def _spec(self, r=3):
        return AgentSpec(
            agent_id=1,
            interrequest=Deterministic(1.0),
            open_loop=True,
            max_outstanding=r,
        )

    def test_keeps_issuing_while_pending(self):
        harness = Harness(self._spec(r=3))
        harness.agent.start()
        harness.simulator.run()
        # No completions at all: issues until the r=3 cap.
        assert [t for t, _, _ in harness.issued] == [1.0, 2.0, 3.0]
        assert harness.agent.outstanding == 3

    def test_blocks_at_capacity_and_resumes(self):
        harness = Harness(self._spec(r=2))
        harness.agent.start()
        harness.simulator.run()
        assert harness.agent.outstanding == 2
        harness.agent.on_completion(10.0)
        harness.simulator.run()
        assert len(harness.issued) == 3  # resumed after the completion
        assert harness.agent.outstanding == 2

    def test_completions_counted(self):
        harness = Harness(self._spec(r=2))
        harness.agent.start()
        harness.simulator.run()
        harness.agent.on_completion(5.0)
        assert harness.agent.completions == 1


class TestPriorityRequests:
    def test_zero_fraction_never_priority(self):
        spec = AgentSpec(agent_id=1, interrequest=Exponential(1.0))
        harness = Harness(spec)
        harness.agent.start()
        for _ in range(20):
            harness.simulator.run()
            harness.agent.on_completion(harness.simulator.now)
        assert all(not priority for _, _, priority in harness.issued)

    def test_full_fraction_always_priority(self):
        spec = AgentSpec(
            agent_id=1, interrequest=Exponential(1.0), priority_fraction=1.0
        )
        harness = Harness(spec)
        harness.agent.start()
        for _ in range(20):
            harness.simulator.run()
            harness.agent.on_completion(harness.simulator.now)
        assert all(priority for _, _, priority in harness.issued)

    def test_intermediate_fraction_mixes(self):
        spec = AgentSpec(
            agent_id=1, interrequest=Exponential(1.0), priority_fraction=0.5
        )
        harness = Harness(spec, seed=3)
        harness.agent.start()
        for _ in range(60):
            harness.simulator.run()
            harness.agent.on_completion(harness.simulator.now)
        flags = [priority for _, _, priority in harness.issued]
        assert any(flags) and not all(flags)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            AgentSpec(
                agent_id=1, interrequest=Deterministic(1.0), priority_fraction=1.5
            )

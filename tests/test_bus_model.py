"""Timing tests for the bus system model (§4.1 rules)."""

import pytest

from repro.baselines.fixed_priority import FixedPriorityArbiter
from repro.bus.model import BusSystem
from repro.bus.timing import BusTiming
from repro.core.round_robin import DistributedRoundRobin
from repro.errors import ConfigurationError, SimulationError
from repro.stats.collector import CompletionCollector
from repro.workload.distributions import Deterministic
from repro.workload.scenarios import AgentSpec, ScenarioSpec


def _scenario(think_times):
    agents = tuple(
        AgentSpec(agent_id=i + 1, interrequest=Deterministic(think))
        for i, think in enumerate(think_times)
    )
    return ScenarioSpec(name="micro", agents=agents)


def _run(think_times, completions=4, timing=BusTiming(), protocol=None):
    scenario = _scenario(think_times)
    arbiter = protocol or DistributedRoundRobin(scenario.num_agents)
    collector = CompletionCollector(
        batches=2, batch_size=max(1, completions // 2), warmup=0, keep_order=True
    )
    records = []
    original = collector.record
    collector.record = lambda rec: (records.append(rec), original(rec))[1]
    system = BusSystem(scenario, arbiter, collector, timing=timing, seed=1)
    system.run()
    return system, records


class TestBusTiming:
    def test_defaults_match_paper(self):
        timing = BusTiming()
        assert timing.transaction_time == 1.0
        assert timing.arbitration_time == 0.5

    def test_invalid_transaction_time(self):
        with pytest.raises(ConfigurationError):
            BusTiming(transaction_time=0.0)

    def test_invalid_arbitration_time(self):
        with pytest.raises(ConfigurationError):
            BusTiming(arbitration_time=-0.5)


class TestSingleAgentTiming:
    def test_idle_bus_request_waits_one_arbitration(self):
        # Lone agent, think 1.0: request at 1.0, arbitration 0.5, grant at
        # 1.5, completion at 2.5 — so W (issue→completion) is 1.5.
        __, records = _run([1.0], completions=4)
        first = records[0]
        assert first.issue_time == pytest.approx(1.0)
        assert first.grant_time == pytest.approx(1.5)
        assert first.completion_time == pytest.approx(2.5)
        assert first.waiting_time == pytest.approx(1.5)
        assert first.queueing_delay == pytest.approx(0.5)

    def test_lone_agent_cycle_length(self):
        # Cycle: think 1.0 + arbitration 0.5 + transaction 1.0 = 2.5.
        __, records = _run([1.0], completions=4)
        completions = [record.completion_time for record in records]
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert all(gap == pytest.approx(2.5) for gap in gaps)


class TestOverlappedArbitration:
    def test_back_to_back_transactions_under_contention(self):
        # Two eager agents (think 0.5): once saturated, transactions run
        # with zero gap because arbitration overlaps service.
        system, records = _run([0.5, 0.5], completions=8)
        completions = [record.completion_time for record in records]
        gaps = [b - a for a, b in zip(completions[2:], completions[3:])]
        assert all(gap == pytest.approx(1.0) for gap in gaps)

    def test_simultaneous_requests_one_arbitration(self):
        # Both agents request at 0.5; the higher identity wins the first
        # arbitration (grant 1.0), the other follows back-to-back.
        __, records = _run([0.5, 0.5], completions=2)
        assert records[0].agent_id == 2
        assert records[0].grant_time == pytest.approx(1.0)
        assert records[1].agent_id == 1
        assert records[1].grant_time == pytest.approx(2.0)

    def test_request_landing_during_tenure_overlaps(self):
        # Agent 1 thinks 10.0, agent 2 thinks 0.4.  Agent 2's requests
        # keep the bus busy; agent 1's request lands mid-tenure and its
        # arbitration must overlap (wait < transaction + arbitration).
        __, records = _run([10.0, 0.4], completions=20)
        agent1 = [r for r in records if r.agent_id == 1]
        assert agent1, "agent 1 never served"
        for record in agent1:
            assert record.queueing_delay <= 1.5 + 1e-9


class TestUtilisationAccounting:
    def test_busy_time_equals_transactions(self):
        system, __ = _run([0.5, 0.5], completions=10)
        assert system.busy_time == pytest.approx(system.transactions * 1.0)

    def test_utilization_at_most_one(self):
        system, __ = _run([0.1, 0.1, 0.1], completions=12)
        assert system.utilization() <= 1.0 + 1e-9

    def test_saturated_bus_fully_utilised_after_rampup(self):
        system, records = _run([0.1, 0.1, 0.1], completions=30)
        # From the 4th completion on, there is always a pending winner.
        late = [r.completion_time for r in records[3:]]
        gaps = [b - a for a, b in zip(late, late[1:])]
        assert all(gap == pytest.approx(1.0) for gap in gaps)


class TestAlternativeTiming:
    def test_slower_arbitration_stretches_idle_grants(self):
        timing = BusTiming(transaction_time=1.0, arbitration_time=2.0)
        __, records = _run([1.0], completions=2, timing=timing)
        assert records[0].grant_time == pytest.approx(3.0)  # 1.0 + 2.0

    def test_zero_arbitration_time(self):
        timing = BusTiming(arbitration_time=0.0)
        __, records = _run([1.0], completions=2, timing=timing)
        assert records[0].grant_time == pytest.approx(1.0)

    def test_rr_impl3_extra_pass_costs_a_round(self):
        # Construct the impl-3 re-arbitration: agent 2 served, then only
        # agent 3 (> 2) waiting: the first pass comes up empty.
        from repro.core.base import Request  # noqa: F401  (documentation)

        arbiter = DistributedRoundRobin(3, implementation=3)
        __, records = _run([0.3, 0.3, 0.3], completions=12, protocol=arbiter)
        assert arbiter.extra_passes >= 1


class TestValidation:
    def test_arbiter_too_small_rejected(self):
        scenario = _scenario([1.0, 1.0, 1.0])
        arbiter = DistributedRoundRobin(2)
        collector = CompletionCollector(batches=2, batch_size=2, warmup=0)
        with pytest.raises(SimulationError):
            BusSystem(scenario, arbiter, collector, seed=1)

    def test_fixed_priority_protocol_also_runs(self):
        system, records = _run(
            [0.5, 0.5], completions=6, protocol=FixedPriorityArbiter(2)
        )
        assert len(records) >= 6

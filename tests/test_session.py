"""Tests for the session layer: planner, executor, facade, fallback.

The session package is the single orchestration path every entry point
shares — :func:`repro.experiments.runner.run_simulation`, the sweep
executor, the experiment grids and the CLI all route through
``plan_runs`` → ``execute_plan``.  These tests pin the decision layer
directly (routes, engine overrides, cache provenance), the degradation
contract (one ``RuntimeWarning`` wording for every batch→event
fallback, tallied in ``fallback_cells``), the :class:`Session` facade
(submission order, within-gather dedup), and the CLI's clean rejection
of invalid engine/scale selectors.
"""

from dataclasses import replace

import pytest

import repro.session.single as single_module
from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepExecutor
from repro.observability import TelemetrySettings
from repro.session import (
    RunRequest,
    Session,
    batch_fallback_message,
    execute_plan,
    normalize_engine,
    plan_runs,
)
from repro.session.outcome import (
    ROUTE_CACHE,
    ROUTE_DEDUP,
    ROUTE_DIRECT,
    ROUTE_LANES,
    SessionStats,
)
from repro.workload.scenarios import equal_load, open_loop_equal_load

SETTINGS = SimulationSettings(batches=2, batch_size=50, warmup=5, seed=3)


def _fingerprint(result):
    return (
        result.elapsed,
        result.utilization,
        result.system_throughput().mean,
        result.mean_waiting().mean,
    )


class TestNormalizeEngine:
    def test_valid_engines_pass_through(self):
        assert normalize_engine("event") == "event"
        assert normalize_engine("batch") == "batch"
        assert normalize_engine(None) is None

    def test_unknown_engine_rejected_with_vocabulary(self):
        with pytest.raises(ConfigurationError, match="choose 'event' or 'batch'"):
            normalize_engine("bogus")

    def test_none_rejected_when_required(self):
        with pytest.raises(ConfigurationError, match="an engine is required"):
            normalize_engine(None, allow_none=False)

    def test_settings_validate_engine_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            SimulationSettings(engine="warp")


class TestPlanRuns:
    def test_batch_capable_cells_route_to_lanes(self):
        plan = plan_runs([RunRequest(equal_load(4, 2.0), "rr", SETTINGS)])
        (run,) = plan.runs
        assert run.route == ROUTE_LANES
        assert run.family is not None
        assert run.index == 0

    def test_event_engine_cells_route_direct(self):
        request = RunRequest(
            equal_load(4, 2.0), "rr", replace(SETTINGS, engine="event")
        )
        plan = plan_runs([request])
        assert plan.runs[0].route == ROUTE_DIRECT

    def test_out_of_domain_cells_route_direct(self):
        # Open-loop scenarios are outside the batch domain: no lane pack.
        request = RunRequest(open_loop_equal_load(4, 0.5), "fcfs", SETTINGS)
        plan = plan_runs([request])
        assert plan.runs[0].route == ROUTE_DIRECT

    def test_jsonl_telemetry_excluded_from_lane_packs(self, tmp_path):
        telemetry = TelemetrySettings(jsonl_path=str(tmp_path / "trace.jsonl"))
        request = RunRequest(
            equal_load(4, 2.0), "rr", replace(SETTINGS, telemetry=telemetry)
        )
        plan = plan_runs([request])
        assert plan.runs[0].route == ROUTE_DIRECT

    def test_engine_override_rewrites_every_request(self):
        plan = plan_runs(
            [RunRequest(equal_load(4, 2.0), "rr", SETTINGS)], engine="event"
        )
        (run,) = plan.runs
        assert run.request.settings.engine == "event"
        assert run.route == ROUTE_DIRECT

    def test_override_is_validated(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            plan_runs([], engine="bogus")

    def test_default_settings_filled_at_plan_time(self):
        plan = plan_runs([RunRequest(equal_load(2, 1.0), "rr")])
        assert plan.runs[0].request.settings is not None

    def test_cache_hits_planned_as_cache_route(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest(equal_load(4, 2.0), "rr", SETTINGS)
        cache.put(request.cache_key(), run_simulation(*request.as_cell()))
        plan = plan_runs([request], cache=cache)
        (run,) = plan.runs
        assert run.route == ROUTE_CACHE
        assert run.key == request.cache_key()
        assert run.cached is not None

    def test_routes_partition_the_batch(self, tmp_path):
        cache = ResultCache(tmp_path)
        cached = RunRequest(equal_load(4, 2.0), "rr", SETTINGS)
        cache.put(cached.cache_key(), run_simulation(*cached.as_cell()))
        requests = [
            cached,
            RunRequest(equal_load(4, 2.0), "fcfs", SETTINGS),
            RunRequest(
                equal_load(4, 2.0), "rr", replace(SETTINGS, seed=9, engine="event")
            ),
        ]
        plan = plan_runs(requests, cache=cache)
        assert [run.route for run in plan.runs] == [
            ROUTE_CACHE,
            ROUTE_LANES,
            ROUTE_DIRECT,
        ]
        assert len(plan.cached_runs) == 1
        assert len(plan.lane_runs) == 1
        assert len(plan.direct_runs) == 1


class TestExecutePlan:
    def test_outcomes_carry_route_and_provenance(self, tmp_path):
        cache = ResultCache(tmp_path)
        requests = [
            RunRequest(equal_load(4, 2.0), "rr", SETTINGS),
            RunRequest(equal_load(4, 2.0), "rr", replace(SETTINGS, engine="event")),
        ]
        stats = SessionStats()
        outcomes = execute_plan(plan_runs(requests, cache=cache), cache=cache, stats=stats)
        assert [outcome.route for outcome in outcomes] == [ROUTE_LANES, ROUTE_DIRECT]
        for outcome in outcomes:
            assert outcome.stored
            assert outcome.cache_key is not None
            assert not outcome.cached
        assert stats.executed == 2
        # Epoch 6: both engines share one key, so the second execution
        # stored over the first's entry rather than adding a new one.
        assert len(cache) == 1

    def test_cached_runs_replay_without_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        request = RunRequest(equal_load(4, 2.0), "rr", SETTINGS)
        fresh = run_simulation(*request.as_cell())
        cache.put(request.cache_key(), fresh)
        stats = SessionStats()
        outcomes = execute_plan(plan_runs([request], cache=cache), cache=cache, stats=stats)
        (outcome,) = outcomes
        assert outcome.route == ROUTE_CACHE
        assert outcome.cached
        assert not outcome.stored
        assert _fingerprint(outcome.result) == _fingerprint(fresh)
        assert stats.cache_hits == 1
        assert stats.executed == 0

    def test_lane_runtime_failure_demotes_to_direct_loudly(self):
        def broken_lanes(cells):
            raise RuntimeError("kernel exploded")

        requests = [
            RunRequest(equal_load(4, 2.0), "rr", SETTINGS),
            RunRequest(equal_load(4, 2.0), "fcfs", SETTINGS),
        ]
        stats = SessionStats()
        with pytest.warns(RuntimeWarning, match="fell back to the event engine"):
            outcomes = execute_plan(
                plan_runs(requests), stats=stats, lane_runner=broken_lanes
            )
        assert [outcome.route for outcome in outcomes] == [ROUTE_DIRECT] * 2
        assert all(outcome.fallback for outcome in outcomes)
        assert stats.fallback_cells == 2
        assert stats.executed == 2
        # The demoted cells still produce the event engine's numbers.
        for request, outcome in zip(requests, outcomes):
            event = run_simulation(
                request.scenario,
                request.protocol,
                replace(request.settings, engine="event"),
            )
            assert _fingerprint(outcome.result) == _fingerprint(event)

    def test_fallback_message_wording_is_shared(self):
        message = batch_fallback_message(3, ValueError("boom"))
        assert message == (
            "3 batch-capable cell(s) fell back to the event engine (ValueError: boom)"
        )


class TestSingleRunFallback:
    def test_runtime_batch_failure_warns_once_and_matches_event(self, monkeypatch):
        def broken_batch(scenario, protocol, settings):
            raise RuntimeError("lane kernel diverged")

        monkeypatch.setattr(single_module, "run_simulation_batch", broken_batch)
        before = single_module.stats.fallback_cells
        scenario = equal_load(4, 2.0)
        with pytest.warns(RuntimeWarning, match="fell back to the event engine"):
            degraded = run_simulation(scenario, "rr", SETTINGS)
        assert single_module.stats.fallback_cells == before + 1
        event = run_simulation(scenario, "rr", replace(SETTINGS, engine="event"))
        assert _fingerprint(degraded) == _fingerprint(event)

    def test_statically_out_of_domain_cells_fall_through_silently(self, recwarn):
        # Open-loop cells were never promised the batch engine: no warning.
        run_simulation(open_loop_equal_load(4, 0.5), "fcfs", SETTINGS)
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]


class TestSessionFacade:
    def test_submit_gather_preserves_submission_order(self):
        session = Session(jobs=1)
        session.submit(equal_load(4, 2.0), "rr", SETTINGS, tag="first")
        session.submit(equal_load(4, 2.0), "fcfs", SETTINGS, tag="second")
        outcomes = session.gather()
        assert [outcome.request.tag for outcome in outcomes] == ["first", "second"]
        assert session.gather() == []  # queue drained

    def test_gather_matches_direct_run_simulation(self):
        session = Session(jobs=1)
        scenario = equal_load(6, 1.5)
        session.submit(scenario, "rr", SETTINGS)
        (outcome,) = session.gather()
        assert _fingerprint(outcome.result) == _fingerprint(
            run_simulation(scenario, "rr", SETTINGS)
        )

    def test_identical_requests_deduplicate_within_a_gather(self):
        session = Session(jobs=1)
        scenario = equal_load(4, 2.0)
        outcomes = session.run_requests(
            [
                RunRequest(scenario, "rr", SETTINGS),
                RunRequest(scenario, "fcfs", SETTINGS),
                RunRequest(scenario, "rr", SETTINGS),
            ]
        )
        assert [outcome.route for outcome in outcomes] == [
            ROUTE_LANES,
            ROUTE_LANES,
            ROUTE_DEDUP,
        ]
        assert session.stats.executed == 2
        assert session.stats.deduplicated == 1
        assert _fingerprint(outcomes[0].result) == _fingerprint(outcomes[2].result)
        assert outcomes[2].cache_key == outcomes[0].cache_key

    def test_dedup_ignores_engine_differences(self):
        # Epoch 6: the engine is not part of a cell's identity, so the
        # same cell declared for both engines runs once per gather.
        session = Session(jobs=1)
        scenario = equal_load(4, 2.0)
        outcomes = session.run_requests(
            [
                RunRequest(scenario, "rr", SETTINGS),
                RunRequest(scenario, "rr", replace(SETTINGS, engine="event")),
            ]
        )
        assert outcomes[1].route == ROUTE_DEDUP
        assert session.stats.deduplicated == 1

    def test_submit_request_queues_wire_requests(self):
        session = Session(jobs=1)
        request = RunRequest.from_json(
            RunRequest(equal_load(4, 2.0), "rr", SETTINGS).to_json()
        )
        session.submit_request(request)
        (outcome,) = session.gather()
        assert outcome.request.protocol == "rr"

    def test_session_engine_override_applies_to_requests(self):
        session = Session(jobs=1, engine="event")
        outcomes = session.run_requests([RunRequest(equal_load(4, 2.0), "rr", SETTINGS)])
        assert outcomes[0].request.settings.engine == "event"
        assert outcomes[0].route == ROUTE_DIRECT

    def test_session_backs_experiment_grids(self):
        # The facade satisfies the executor duck type (run_requests /
        # simulate), so it can replace a SweepExecutor behind a grid.
        from repro.experiments.spec import CellSpec, run_cells

        session = Session(jobs=1)
        cells = [
            CellSpec(key="rr", scenario=equal_load(4, 2.0), protocol="rr", settings=SETTINGS),
            CellSpec(key="fcfs", scenario=equal_load(4, 2.0), protocol="fcfs", settings=SETTINGS),
        ]
        results = run_cells(cells, executor=session)
        direct = SweepExecutor(jobs=1).run([cell.sweep_cell() for cell in cells])
        for mine, theirs in zip(results, direct):
            assert _fingerprint(mine) == _fingerprint(theirs)

    def test_session_reuses_a_supplied_executor(self):
        executor = SweepExecutor(jobs=1)
        session = Session(executor=executor)
        assert session.executor is executor
        assert session.stats is executor.stats


class TestCliValidation:
    def test_invalid_engine_flag_exits_with_usage(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--engine", "warp", "protocols"])
        assert excinfo.value.code == 2

    def test_invalid_repro_scale_exits_cleanly(self, monkeypatch, capsys):
        # Regression: an invalid $REPRO_SCALE used to escape as a raw
        # traceback because the scale was resolved outside the handler.
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        assert main(["protocols"]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "bogus" in err
        # An explicit --scale still wins over the bad environment.
        assert main(["--scale", "smoke", "protocols"]) == 0

    def test_negative_fault_rates_exit_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["faults", "--rates", "-1", "0.5"])
        assert excinfo.value.code == 2
        assert "--rates must be > 0" in capsys.readouterr().err

"""Quality gates on the public API surface."""

import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_core_protocols_exported(self):
        for name in (
            "DistributedRoundRobin",
            "DistributedFCFS",
            "HybridArbiter",
            "AdaptiveArbiter",
        ):
            assert name in repro.__all__

    def test_every_baseline_exported(self):
        for name in (
            "FixedPriorityArbiter",
            "BatchingAssuredAccess",
            "FuturebusAssuredAccess",
            "CentralRoundRobin",
            "CentralFCFS",
        ):
            assert name in repro.__all__

    def test_errors_form_a_hierarchy(self):
        for name in (
            "ConfigurationError",
            "SimulationError",
            "ProtocolError",
            "ArbitrationError",
            "SignalError",
            "StatisticsError",
        ):
            assert issubclass(getattr(repro, name), repro.ReproError)


class TestDocumentation:
    def test_every_public_object_documented(self):
        undocumented = []
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if isinstance(obj, (str, dict, tuple, int, float)):
                continue
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_methods_of_core_classes_documented(self):
        undocumented = []
        for cls in (
            repro.DistributedRoundRobin,
            repro.DistributedFCFS,
            repro.BusSystem,
            repro.RunResult,
            repro.ParallelContention,
        ):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if not callable(member) and not isinstance(member, property):
                    continue
                doc = inspect.getdoc(member)
                if not (doc or "").strip():
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_module_docstrings(self):
        import importlib
        import pkgutil

        missing = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"


class TestQuickstartSnippet:
    def test_readme_quickstart_runs(self):
        # The exact code from README.md's quickstart, at reduced scale.
        from repro import equal_load, run_simulation, SimulationSettings

        scenario = equal_load(num_agents=10, total_load=1.5)
        settings = SimulationSettings(
            batches=3, batch_size=400, warmup=100, seed=1
        )
        rr = run_simulation(scenario, "rr", settings)
        fcfs = run_simulation(scenario, "fcfs", settings)
        assert rr.mean_waiting().mean == pytest.approx(
            fcfs.mean_waiting().mean, rel=0.1
        )
        assert abs(rr.extreme_throughput_ratio().mean - 1.0) < 0.25

"""Smoke tests for the multi-panel run() entry points of each table module."""

import pytest

from repro.experiments import (
    figure_4_1,
    table_4_1,
    table_4_2,
    table_4_3,
    table_4_4,
    table_4_5,
)
from repro.experiments.scale import SCALES

SMOKE = SCALES["smoke"]


class TestRunEntryPoints:
    def test_table_4_1_panels(self):
        panels = table_4_1.run(sizes=(6, 8), loads=(2.0,), scale=SMOKE)
        assert len(panels) == 2
        assert "6 agents" in panels[0].title
        assert "8 agents" in panels[1].title

    def test_table_4_2_panels(self):
        panels = table_4_2.run(sizes=(6,), loads=(1.5, 2.5), scale=SMOKE)
        assert len(panels) == 1
        assert len(panels[0].rows) == 2
        assert panels[0].headers[0] == "Load"

    def test_table_4_3_panels(self):
        panels = table_4_3.run(sizes=(6,), loads=(2.0,), scale=SMOKE)
        row = panels[0].data[0]
        assert row["overlap"] >= 1
        assert 0.0 < row["rr"].productivity.mean <= 1.0

    def test_table_4_4_panels(self):
        panels = table_4_4.run(
            factors=(2.0,), num_agents=8, base_loads=(1.0,), scale=SMOKE
        )
        assert len(panels) == 1
        assert panels[0].data[0]["factor"] == 2.0

    def test_table_4_5_panels(self):
        panels = table_4_5.run(sizes=(8,), cvs=(0.0, 1.0), scale=SMOKE)
        assert len(panels[0].rows) == 2
        assert panels[0].data[0]["cv"] == 0.0

    def test_figure_4_1_custom_point(self):
        figure = figure_4_1.run(num_agents=6, load=2.0, scale=SMOKE, points=15)
        assert len(figure.series["RR"]) == 15
        assert figure.load == 2.0

    def test_tables_render_without_error(self):
        panels = table_4_1.run(sizes=(6,), loads=(2.0,), scale=SMOKE)
        text = panels[0].render()
        assert "Table 4.1" in text and "seed" in text


class TestRunPanelValidationPaths:
    def test_table_4_5_rejects_tiny_systems(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            table_4_5.run_panel(3, cvs=(0.0,), scale=SMOKE)

    def test_table_4_4_infeasible_hot_load(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            # regular load 0.4 x factor 4 = 1.6 > 1 per agent: impossible.
            table_4_4.run_panel(4.0, num_agents=8, base_loads=(3.2,), scale=SMOKE)


class TestFigureCSVExport:
    def test_csv_grid_and_monotonicity(self):
        figure = figure_4_1.run(num_agents=6, load=2.0, scale=SMOKE, points=10)
        csv = figure.series_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "x,fcfs,rr"
        assert len(lines) == 11
        fcfs_values = [float(line.split(",")[1]) for line in lines[1:]]
        assert fcfs_values == sorted(fcfs_values)
        assert fcfs_values[-1] == 1.0

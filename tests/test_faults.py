"""Fault-injection tests: the §3.1 robustness claim, executed.

Static-identity RR heals from a missed winner broadcast within one
observed arbitration; rotating-priority RR corrupts its arbitration
numbers permanently.  FCFS counter glitches stay contained to the
corrupted request.
"""

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.baselines.rotating import RotatingPriorityRR
from repro.errors import ArbitrationError, NoUniqueWinnerError, ProtocolError
from repro.faults import FaultyWinnerRegisterRR, GlitchableFCFS


def _greedy_round(arbiter, agents, now=0.0):
    """One grant with every agent re-requesting immediately."""
    winner = arbiter.start_arbitration(now).winner
    arbiter.grant(winner, now)
    arbiter.request(winner, now)
    return winner


class TestStaticRRSelfHeals:
    def test_healthy_views_stay_synchronised(self):
        arbiter = FaultyWinnerRegisterRR(6)
        for agent in range(1, 7):
            arbiter.request(agent, 0.0)
        for __ in range(6):
            _greedy_round(arbiter, range(1, 7))
        assert arbiter.desynchronised_agents() == frozenset()

    def test_dropped_observation_desynchronises_one_agent(self):
        arbiter = FaultyWinnerRegisterRR(6)
        for agent in range(1, 7):
            arbiter.request(agent, 0.0)
        arbiter.drop_winner_observations(3)
        _greedy_round(arbiter, range(1, 7))
        assert arbiter.desynchronised_agents() == frozenset({3})

    def test_resynchronises_at_next_observed_arbitration(self):
        arbiter = FaultyWinnerRegisterRR(6)
        for agent in range(1, 7):
            arbiter.request(agent, 0.0)
        arbiter.drop_winner_observations(3)
        _greedy_round(arbiter, range(1, 7))
        _greedy_round(arbiter, range(1, 7))  # agent 3 observes this one
        assert arbiter.desynchronised_agents() == frozenset()

    def test_never_raises_and_everyone_still_served(self):
        # Inject a fault every round: the protocol still makes progress
        # and serves every agent (identities stay unique on the lines).
        arbiter = FaultyWinnerRegisterRR(5)
        for agent in range(1, 6):
            arbiter.request(agent, 0.0)
        served = []
        for round_index in range(25):
            arbiter.drop_winner_observations((round_index % 5) + 1)
            served.append(_greedy_round(arbiter, range(1, 6)))
        for agent in range(1, 6):
            assert served.count(agent) >= 3

    def test_service_order_deviation_is_bounded(self):
        # A single fault changes at most where the stale agent slots into
        # the scan; it can be served early or late by one round, never
        # starved.
        arbiter = FaultyWinnerRegisterRR(5)
        for agent in range(1, 6):
            arbiter.request(agent, 0.0)
        arbiter.drop_winner_observations(2)
        served = [_greedy_round(arbiter, range(1, 6)) for __ in range(15)]
        assert served.count(2) in (2, 3, 4)

    def test_fault_api_validation(self):
        arbiter = FaultyWinnerRegisterRR(5)
        with pytest.raises(ProtocolError):
            arbiter.drop_winner_observations(9)
        with pytest.raises(ProtocolError):
            arbiter.drop_winner_observations(1, count=0)

    def test_reset_clears_fault_state(self):
        arbiter = FaultyWinnerRegisterRR(5)
        arbiter.drop_winner_observations(1)
        arbiter.reset()
        assert arbiter.observations_dropped == 0
        assert arbiter.desynchronised_agents() == frozenset()


class TestRotatingRRFailsPermanently:
    def test_same_fault_eventually_collides(self):
        arbiter = RotatingPriorityRR(5)
        for agent in range(1, 6):
            arbiter.request(agent, 0.0)
        arbiter.drop_winner_observations(3)
        with pytest.raises(ArbitrationError):
            for __ in range(25):
                _greedy_round(arbiter, range(1, 6))

    def test_headline_robustness_comparison(self):
        """The paper's claim in one test: identical fault, static RR
        completes a full workload, rotating RR cannot."""

        def run(arbiter):
            for agent in range(1, 6):
                arbiter.request(agent, 0.0)
            arbiter.drop_winner_observations(2)
            for __ in range(25):
                _greedy_round(arbiter, range(1, 6))

        run(FaultyWinnerRegisterRR(5))  # completes
        with pytest.raises(ArbitrationError):
            run(RotatingPriorityRR(5))


class TestHealingBoundProperty:
    """The §3.1 claim as a property over every (size, victim, phase).

    With every agent continuously requesting, a single dropped winner
    broadcast under static identities desynchronises exactly one
    replica's RR bit for exactly one observed arbitration, whatever the
    population size, the victim, or how far the rotation has advanced.
    Under rotating priorities the same single fault always reaches a
    detected no-unique-winner state: the victim's stale origin gives it
    a number that collides with another competitor's.
    """

    @given(
        num_agents=st.integers(min_value=3, max_value=12),
        victim_index=st.integers(min_value=0, max_value=11),
        warm_rounds=st.integers(min_value=0, max_value=20),
    )
    @hyp_settings(max_examples=60, deadline=None)
    def test_static_rr_heals_within_one_observed_arbitration(
        self, num_agents, victim_index, warm_rounds
    ):
        victim = (victim_index % num_agents) + 1
        arbiter = FaultyWinnerRegisterRR(num_agents)
        for agent in range(1, num_agents + 1):
            arbiter.request(agent, 0.0)
        for __ in range(warm_rounds):
            _greedy_round(arbiter, range(1, num_agents + 1))
        arbiter.drop_winner_observations(victim)
        _greedy_round(arbiter, range(1, num_agents + 1))
        assert arbiter.desynchronised_agents() <= frozenset({victim})
        _greedy_round(arbiter, range(1, num_agents + 1))
        assert arbiter.desynchronised_agents() == frozenset()

    @given(
        num_agents=st.integers(min_value=3, max_value=12),
        victim_index=st.integers(min_value=0, max_value=11),
        warm_rounds=st.integers(min_value=0, max_value=20),
    )
    @hyp_settings(max_examples=60, deadline=None)
    def test_rotating_rr_reaches_no_unique_winner(
        self, num_agents, victim_index, warm_rounds
    ):
        victim = (victim_index % num_agents) + 1
        arbiter = RotatingPriorityRR(num_agents)
        for agent in range(1, num_agents + 1):
            arbiter.request(agent, 0.0)
        for __ in range(warm_rounds):
            _greedy_round(arbiter, range(1, num_agents + 1))
        arbiter.drop_winner_observations(victim)
        # With all agents competing, the victim's stale arbitration
        # number always collides with somebody's: detection is certain
        # within a full rotation.
        with pytest.raises(NoUniqueWinnerError):
            for __ in range(2 * num_agents):
                _greedy_round(arbiter, range(1, num_agents + 1))


class TestFCFSCounterGlitch:
    def test_glitch_reorders_transiently(self):
        arbiter = GlitchableFCFS(8)
        arbiter.request(3, 0.0)
        arbiter.start_arbitration(0.5)  # 3 would win alone
        arbiter.grant(3, 0.5)
        arbiter.request(3, 1.0)
        arbiter.request(6, 2.0)
        arbiter.glitch_counter(6, 7)  # 6's counter jumps the queue
        assert arbiter.start_arbitration(2.5).winner == 6

    def test_glitch_heals_at_request_boundary(self):
        arbiter = GlitchableFCFS(8)
        arbiter.request(6, 0.0)
        arbiter.glitch_counter(6, 7)
        arbiter.grant(arbiter.start_arbitration(0.5).winner, 0.5)
        # The corrupted request is gone; a fresh request starts at 0.
        arbiter.request(6, 1.0)
        assert arbiter.pending_requests_counter(6) == 0

    def test_glitch_requires_pending_request(self):
        arbiter = GlitchableFCFS(8)
        with pytest.raises(ProtocolError):
            arbiter.glitch_counter(6, 3)

    def test_glitch_value_wraps_to_modulus(self):
        arbiter = GlitchableFCFS(4)  # counter modulus 8
        arbiter.request(2, 0.0)
        arbiter.glitch_counter(2, 100)
        assert arbiter.pending_requests_counter(2) == 100 % 8

    def test_diagnostics(self):
        arbiter = GlitchableFCFS(8)
        arbiter.request(1, 0.0)
        arbiter.glitch_counter(1, 1)
        assert arbiter.glitches_injected == 1

"""Tests for the inter-request time distributions."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.workload.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    Hyperexponential,
    from_mean_cv,
)


def _sample_stats(dist, n=20000, seed=9):
    rng = random.Random(seed)
    samples = [dist.sample(rng) for _ in range(n)]
    mean = sum(samples) / n
    var = sum((x - mean) ** 2 for x in samples) / n
    return mean, math.sqrt(var)


class TestDeterministic:
    def test_constant_samples(self):
        dist = Deterministic(3.5)
        rng = random.Random(0)
        assert [dist.sample(rng) for _ in range(3)] == [3.5, 3.5, 3.5]

    def test_mean_and_cv(self):
        assert Deterministic(3.5).mean == 3.5
        assert Deterministic(3.5).cv == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            Deterministic(-1.0)

    def test_zero_allowed(self):
        assert Deterministic(0.0).mean == 0.0


class TestExponential:
    def test_declared_moments(self):
        dist = Exponential(4.0)
        assert dist.mean == 4.0
        assert dist.cv == 1.0

    def test_sample_moments_match(self):
        mean, std = _sample_stats(Exponential(4.0))
        assert mean == pytest.approx(4.0, rel=0.05)
        assert std == pytest.approx(4.0, rel=0.05)

    def test_non_positive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            Exponential(0.0)

    def test_samples_non_negative(self):
        dist = Exponential(1.0)
        rng = random.Random(1)
        assert all(dist.sample(rng) >= 0 for _ in range(1000))


class TestErlang:
    def test_declared_cv(self):
        assert Erlang(2.0, 4).cv == pytest.approx(0.5)
        assert Erlang(2.0, 16).cv == pytest.approx(0.25)

    def test_sample_moments_match(self):
        mean, std = _sample_stats(Erlang(6.0, 9))
        assert mean == pytest.approx(6.0, rel=0.05)
        assert std == pytest.approx(2.0, rel=0.08)  # cv = 1/3

    def test_shape_one_is_exponential(self):
        mean, std = _sample_stats(Erlang(3.0, 1))
        assert std == pytest.approx(3.0, rel=0.06)

    def test_invalid_shape(self):
        with pytest.raises(ConfigurationError):
            Erlang(1.0, 0)


class TestHyperexponential:
    def test_declared_moments(self):
        dist = Hyperexponential(5.0, 2.0)
        assert dist.mean == 5.0
        assert dist.cv == 2.0

    def test_sample_moments_match(self):
        mean, std = _sample_stats(Hyperexponential(5.0, 2.0), n=60000)
        assert mean == pytest.approx(5.0, rel=0.06)
        assert std == pytest.approx(10.0, rel=0.1)

    def test_cv_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            Hyperexponential(5.0, 0.8)


class TestFromMeanCV:
    def test_cv_zero_is_deterministic(self):
        assert isinstance(from_mean_cv(2.0, 0.0), Deterministic)

    def test_cv_one_is_exponential(self):
        assert isinstance(from_mean_cv(2.0, 1.0), Exponential)

    def test_intermediate_cv_is_erlang(self):
        dist = from_mean_cv(2.0, 0.5)
        assert isinstance(dist, Erlang)
        assert dist.shape == 4

    @pytest.mark.parametrize("cv,shape", [(0.25, 16), (0.33, 9), (0.5, 4)])
    def test_paper_cv_values_map_to_shapes(self, cv, shape):
        assert from_mean_cv(1.0, cv).shape == shape

    def test_cv_above_one_is_hyperexponential(self):
        assert isinstance(from_mean_cv(2.0, 1.5), Hyperexponential)

    def test_zero_mean_is_deterministic_zero(self):
        dist = from_mean_cv(0.0, 0.5)
        assert isinstance(dist, Deterministic)
        assert dist.mean == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            from_mean_cv(-1.0, 0.5)
        with pytest.raises(ConfigurationError):
            from_mean_cv(1.0, -0.5)

    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_declared_mean_always_requested(self, mean, cv):
        assert from_mean_cv(mean, cv).mean == pytest.approx(mean)

    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=0.05, max_value=1.0),
    )
    def test_achieved_cv_is_nearest_erlang(self, mean, cv):
        dist = from_mean_cv(mean, cv)
        # The realised CV is 1/sqrt(k) for the nearest integer k: within
        # a factor of the rounding granularity of the request.
        assert dist.cv == pytest.approx(cv, rel=0.35)

    @given(st.integers(min_value=0, max_value=2**32), st.floats(0.1, 10.0))
    def test_samples_are_non_negative(self, seed, mean):
        dist = from_mean_cv(mean, 0.5)
        assert dist.sample(random.Random(seed)) >= 0.0

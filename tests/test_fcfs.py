"""Unit tests for the distributed FCFS protocol (§3.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.fcfs import DistributedFCFS, PriorityCounterPolicy
from repro.errors import ArbitrationError, ConfigurationError, ProtocolError

from _utils import drive_arbiter


class TestConstruction:
    def test_strategy_validated(self):
        with pytest.raises(ConfigurationError):
            DistributedFCFS(8, strategy=3)

    def test_counter_bits_match_paper(self):
        # ceil(log2 N) counter bits for r = 1.
        assert DistributedFCFS(10).counter_bits == 4
        assert DistributedFCFS(30).counter_bits == 5

    def test_multi_outstanding_adds_log2_r_bits(self):
        # "only ceil(log2 r) more bits are needed" (§3.2).
        base = DistributedFCFS(10).counter_bits
        assert DistributedFCFS(10, max_outstanding=8).counter_bits == base + 3

    def test_strategy_1_needs_no_extra_line(self):
        assert DistributedFCFS(8, strategy=1).extra_lines == 0

    def test_strategy_2_needs_a_incr_line(self):
        assert DistributedFCFS(8, strategy=2).extra_lines == 1

    def test_dual_lines_policy_needs_two(self):
        arbiter = DistributedFCFS(
            8, strategy=2, priority_policy=PriorityCounterPolicy.DUAL_LINES
        )
        assert arbiter.extra_lines == 2

    def test_match_winner_requires_strategy_1(self):
        with pytest.raises(ConfigurationError):
            DistributedFCFS(
                8, strategy=2, priority_policy=PriorityCounterPolicy.MATCH_WINNER
            )

    def test_dual_lines_requires_strategy_2(self):
        with pytest.raises(ConfigurationError):
            DistributedFCFS(
                8, strategy=1, priority_policy=PriorityCounterPolicy.DUAL_LINES
            )

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigurationError):
            DistributedFCFS(8, strategy=2, coincidence_window=-0.1)

    def test_does_not_need_winner_identity(self):
        assert DistributedFCFS(8).requires_winner_identity is False


class TestStrategy1Semantics:
    def test_same_interval_ties_fall_back_to_static_priority(self):
        arbiter = DistributedFCFS(8, strategy=1)
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.1)  # later arrival, same inter-arbitration gap
        # No arbitration happened between the two arrivals: counters tie,
        # the higher static identity wins — the strategy-1 coarseness.
        assert arbiter.start_arbitration(0.2).winner == 6

    def test_older_request_wins_after_one_lost_arbitration(self):
        arbiter = DistributedFCFS(8, strategy=1)
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.0)
        winner = arbiter.start_arbitration(0.5).winner  # 6 (tie → static)
        arbiter.grant(winner, 0.5)
        arbiter.request(7, 1.0)  # newer, counter 0
        # 3 lost once: counter 1 beats 7's counter 0 despite lower id.
        assert arbiter.start_arbitration(1.0).winner == 3

    def test_loser_counters_increment(self):
        arbiter = DistributedFCFS(8, strategy=1)
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.0)
        arbiter.start_arbitration(0.5)
        assert arbiter.pending_requests_counter(3) == 1
        assert arbiter.pending_requests_counter(6) == 0

    def test_counter_resets_per_request(self):
        arbiter = DistributedFCFS(8, strategy=1)
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.0)
        arbiter.grant(arbiter.start_arbitration(0.5).winner, 0.5)  # 6 served
        arbiter.grant(arbiter.start_arbitration(1.0).winner, 1.0)  # 3 served
        arbiter.request(3, 2.0)
        assert arbiter.pending_requests_counter(3) == 0


class TestStrategy2Semantics:
    def test_exact_fcfs_for_distinct_arrivals(self):
        arbiter = DistributedFCFS(8, strategy=2)
        arrivals = [(0.0, 5), (0.5, 8), (1.2, 2), (1.7, 7)]
        served = drive_arbiter(arbiter, arrivals)
        assert served == [5, 8, 2, 7]

    def test_simultaneous_arrivals_tie_to_static_priority(self):
        arbiter = DistributedFCFS(8, strategy=2)
        arbiter.request(3, 1.0)
        arbiter.request(6, 1.0)
        assert arbiter.start_arbitration(1.0).winner == 6

    def test_coincidence_window_merges_near_arrivals(self):
        arbiter = DistributedFCFS(8, strategy=2, coincidence_window=0.05)
        arbiter.request(3, 1.00)
        arbiter.request(6, 1.04)  # within the window: same tick
        assert arbiter.start_arbitration(1.1).winner == 6

    def test_outside_window_keeps_fcfs_order(self):
        arbiter = DistributedFCFS(8, strategy=2, coincidence_window=0.05)
        arbiter.request(3, 1.00)
        arbiter.request(6, 1.10)  # outside the window: later tick
        assert arbiter.start_arbitration(1.2).winner == 3

    def test_window_anchored_at_pulse_not_last_arrival(self):
        # Three arrivals 0.04 apart with window 0.05: the second shares
        # the first's pulse; the third is 0.08 after the *pulse*, so it
        # raises a new one.
        arbiter = DistributedFCFS(8, strategy=2, coincidence_window=0.05)
        arbiter.request(2, 1.00)
        arbiter.request(4, 1.04)
        arbiter.request(6, 1.08)
        served = []
        for _ in range(3):
            winner = arbiter.start_arbitration(2.0).winner
            arbiter.grant(winner, 2.0)
            served.append(winner)
        assert served == [4, 2, 6]


class TestMultipleOutstanding:
    def test_agent_queues_up_to_r(self):
        arbiter = DistributedFCFS(8, strategy=2, max_outstanding=3)
        for time in (0.0, 1.0, 2.0):
            arbiter.request(4, time)
        assert arbiter.pending_count(4) == 3

    def test_exceeding_r_rejected(self):
        arbiter = DistributedFCFS(8, max_outstanding=2)
        arbiter.request(4, 0.0)
        arbiter.request(4, 1.0)
        with pytest.raises(ProtocolError):
            arbiter.request(4, 2.0)

    def test_grants_serve_fifo_within_agent(self):
        arbiter = DistributedFCFS(8, strategy=2, max_outstanding=2)
        arbiter.request(4, 0.0)
        arbiter.request(4, 1.0)
        first = arbiter.grant(4, 2.0)
        second = arbiter.grant(4, 3.0)
        assert first.issue_time == 0.0
        assert second.issue_time == 1.0

    def test_global_fcfs_across_agents_with_queues(self):
        arbiter = DistributedFCFS(8, strategy=2, max_outstanding=2)
        arbiter.request(4, 0.0)
        arbiter.request(7, 0.5)
        arbiter.request(4, 1.0)
        served = []
        for now in (2.0, 3.0, 4.0):
            winner = arbiter.start_arbitration(now).winner
            arbiter.grant(winner, now)
            served.append(winner)
        assert served == [4, 7, 4]


class TestPriorityIntegration:
    def test_priority_request_preempts_fcfs_order(self):
        arbiter = DistributedFCFS(8, strategy=2)
        arbiter.request(3, 0.0)
        arbiter.request(6, 1.0, priority=True)
        assert arbiter.start_arbitration(1.5).winner == 6

    def test_match_winner_freezes_cross_class_counters(self):
        arbiter = DistributedFCFS(
            8, strategy=1, priority_policy=PriorityCounterPolicy.MATCH_WINNER
        )
        arbiter.request(3, 0.0)               # non-priority
        arbiter.request(6, 0.5, priority=True)
        arbiter.start_arbitration(1.0)         # priority 6 wins
        # 3 lost to a priority winner: with MATCH_WINNER its counter is
        # untouched.
        assert arbiter.pending_requests_counter(3) == 0

    def test_overflow_policy_counts_cross_class_losses(self):
        arbiter = DistributedFCFS(
            8, strategy=1, priority_policy=PriorityCounterPolicy.OVERFLOW
        )
        arbiter.request(3, 0.0)
        arbiter.request(6, 0.5, priority=True)
        arbiter.start_arbitration(1.0)
        assert arbiter.pending_requests_counter(3) == 1

    def test_counter_overflow_wraps_and_is_counted(self):
        arbiter = DistributedFCFS(
            2, strategy=1, priority_policy=PriorityCounterPolicy.OVERFLOW
        )
        # modulus = 2**counter_bits = 4 for N=2.
        arbiter.request(1, 0.0)
        for i in range(5):
            arbiter.request(2, float(i), priority=True)
            winner = arbiter.start_arbitration(float(i) + 0.5).winner
            assert winner == 2
            arbiter.grant(2, float(i) + 0.5)
        assert arbiter.counter_wraps >= 1

    def test_dual_lines_separate_tick_streams(self):
        arbiter = DistributedFCFS(
            8, strategy=2, priority_policy=PriorityCounterPolicy.DUAL_LINES
        )
        arbiter.request(3, 0.0)                # non-priority tick stream
        arbiter.request(6, 1.0, priority=True)  # priority stream
        arbiter.request(2, 2.0)                # non-priority again
        # Priority request wins outright.
        winner = arbiter.start_arbitration(2.5).winner
        arbiter.grant(winner, 2.5)
        assert winner == 6
        # Among non-priority, FCFS order survived the priority traffic.
        assert arbiter.start_arbitration(3.0).winner == 3


class TestErrors:
    def test_arbitration_without_requests(self):
        with pytest.raises(ArbitrationError):
            DistributedFCFS(4).start_arbitration(0.0)

    def test_grant_without_request(self):
        with pytest.raises(ProtocolError):
            DistributedFCFS(4).grant(2, 0.0)

    def test_reset(self):
        arbiter = DistributedFCFS(4, strategy=2)
        arbiter.request(2, 0.0)
        arbiter.reset()
        assert not arbiter.has_waiting()
        assert arbiter.pending_count(2) == 0


class TestNoWrapInvariant:
    @given(st.data())
    def test_counter_never_wraps_without_priority_traffic(self, data):
        # §3.2's sizing argument: with one outstanding request per agent a
        # request sees at most N-1 counting events while it waits, so the
        # modulo-N counter never wraps.  Exercise with random closed-loop
        # traffic.
        n = data.draw(st.integers(min_value=2, max_value=8))
        arbiter = DistributedFCFS(n, strategy=1)
        waiting = set()
        now = 0.0
        for _ in range(60):
            can_request = sorted(set(range(1, n + 1)) - waiting)
            if waiting and (not can_request or data.draw(st.booleans())):
                winner = arbiter.start_arbitration(now).winner
                arbiter.grant(winner, now)
                waiting.discard(winner)
            else:
                agent = data.draw(st.sampled_from(can_request))
                arbiter.request(agent, now)
                waiting.add(agent)
            now += 1.0
        assert arbiter.counter_wraps == 0

"""Focused tests for the table/plot formatting layer."""

import pytest

from repro.experiments.formatting import ExperimentTable, ascii_plot, fmt_estimate
from repro.stats.batch_means import BatchMeansEstimate


class TestFmtEstimate:
    def test_default_two_digits(self):
        estimate = BatchMeansEstimate(
            mean=1.23456, halfwidth=0.0456, std_between=0.1, batches=10
        )
        assert fmt_estimate(estimate) == "1.23 ± 0.05"

    def test_custom_digits(self):
        estimate = BatchMeansEstimate(
            mean=1.23456, halfwidth=0.0456, std_between=0.1, batches=10
        )
        assert fmt_estimate(estimate, digits=3) == "1.235 ± 0.046"


class TestExperimentTable:
    def _table(self):
        table = ExperimentTable(
            title="T", headers=["a", "long-header"], notes="a note"
        )
        table.add_row(["1", "2"], {"a": 1})
        table.add_row(["333", "4"], {"a": 333})
        return table

    def test_render_right_aligns_cells(self):
        lines = self._table().render().splitlines()
        assert lines[0] == "T"
        # Cells are right-justified within column widths.
        assert lines[3].startswith("  1")
        assert lines[4].startswith("333")

    def test_render_includes_notes(self):
        assert "a note" in self._table().render()

    def test_str_is_render(self):
        table = self._table()
        assert str(table) == table.render()

    def test_cells_coerced_to_strings(self):
        table = ExperimentTable(title="T", headers=["x"])
        table.add_row([42], {"x": 42})
        assert table.rows == [["42"]]

    def test_data_rows_are_copies(self):
        record = {"x": 1}
        table = ExperimentTable(title="T", headers=["x"])
        table.add_row(["1"], record)
        record["x"] = 2
        assert table.data[0]["x"] == 1

    def test_wide_cell_stretches_column(self):
        table = ExperimentTable(title="T", headers=["x"])
        table.add_row(["a-very-wide-cell"], {})
        header_line = table.render().splitlines()[1]
        assert len(header_line) >= len("a-very-wide-cell")


class TestAsciiPlot:
    def test_single_series(self):
        plot = ascii_plot({"only": [(0.0, 0.0), (1.0, 1.0)]})
        assert "only" in plot
        assert "*" in plot

    def test_two_series_distinct_markers(self):
        plot = ascii_plot(
            {"a": [(0.0, 0.0), (1.0, 1.0)], "b": [(0.0, 1.0), (1.0, 0.0)]}
        )
        assert "*" in plot and "o" in plot

    def test_axis_labels_present(self):
        plot = ascii_plot(
            {"s": [(0.0, 0.0), (10.0, 1.0)]}, x_label="W", y_label="F"
        )
        assert "F vs W" in plot

    def test_degenerate_flat_series(self):
        # Zero y-span must not divide by zero.
        plot = ascii_plot({"flat": [(0.0, 0.5), (1.0, 0.5)]})
        assert "flat" in plot

    def test_degenerate_single_point(self):
        plot = ascii_plot({"dot": [(2.0, 0.3)]})
        assert "dot" in plot

    def test_requested_dimensions(self):
        plot = ascii_plot(
            {"s": [(0.0, 0.0), (1.0, 1.0)]}, width=30, height=8
        )
        grid_lines = [line for line in plot.splitlines() if "|" in line]
        assert len(grid_lines) == 8

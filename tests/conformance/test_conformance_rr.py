"""Conformance: the three RR implementations are one scheduler (§3.1).

The paper's central §3.1 claim is that implementations 1, 2 and 3 of the
distributed RR protocol all realise *identical* round-robin scheduling,
implementation 3 merely paying an occasional extra settling round.  The
telemetry layer lets the suite assert that at the event level: the
clean-grant winner sequences must match element for element across ≥5
seeds, while only implementation 3 is allowed to report multi-round
passes — and it must actually report some, or the "extra round" cost
the paper concedes would be untested.

Scenarios are deeply saturated (offered load 3.0) deliberately: under
sustained saturation implementation 3's extra pass is absorbed by the
overlapped bus tenure, which is exactly the regime where the paper
claims sequence identity.  Near the saturation boundary the queue
occasionally empties and the pass's timing skew can legitimately
reorder near-simultaneous arrivals — that boundary is covered by
``tests/test_protocol_equivalence.py``.
"""

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.observability.events import TelemetrySettings
from repro.workload.scenarios import equal_load, worst_case_rr

SEEDS = [2, 11, 23, 47, 101]


def clean_events(scenario, protocol, seed, completions=400):
    """One run's non-anomalous arbitration events, in emission order."""
    settings = SimulationSettings(
        batches=2,
        batch_size=completions // 2,
        warmup=0,
        seed=seed,
        telemetry=TelemetrySettings(events=True),
    )
    result = run_simulation(scenario, protocol, settings)
    assert result.events is not None
    return [event for event in result.events if event.anomaly is None]


@pytest.mark.parametrize("seed", SEEDS)
class TestRRImplementationEquivalence:
    def test_winner_sequences_identical(self, seed):
        scenario = equal_load(8, 3.0)
        base = [event.winner for event in clean_events(scenario, "rr", seed)]
        for variant in ("rr-impl2", "rr-impl3"):
            winners = [event.winner for event in clean_events(scenario, variant, seed)]
            assert winners == base, f"{variant} diverged from rr at seed {seed}"

    def test_impl_3_pays_only_extra_rounds(self, seed):
        # The *only* allowed divergence: implementation 3 may spend more
        # than one settling round per grant.  Implementations 1 and 2
        # must never report one.
        scenario = equal_load(8, 3.0)
        for exact in ("rr", "rr-impl2"):
            assert all(event.rounds == 1 for event in clean_events(scenario, exact, seed))
        rounds = [event.rounds for event in clean_events(scenario, "rr-impl3", seed)]
        assert all(count >= 1 for count in rounds)

    def test_matches_central_round_robin(self, seed):
        # §1: "identical to the central round-robin arbiter".
        scenario = worst_case_rr(8, cv=0.5)
        base = [event.winner for event in clean_events(scenario, "rr", seed)]
        oracle = [event.winner for event in clean_events(scenario, "central-rr", seed)]
        assert base == oracle


def test_impl_3_actually_takes_extra_rounds_sometimes():
    # Without this witness the "rounds" assertions above would pass
    # vacuously on an engine that never exercises the second pass.
    scenario = equal_load(8, 3.0)
    events = clean_events(scenario, "rr-impl3", seed=7, completions=600)
    assert any(event.rounds > 1 for event in events)
    assert all(
        event.settle_time == pytest.approx(event.rounds * (events[0].settle_time / events[0].rounds))
        for event in events
    )

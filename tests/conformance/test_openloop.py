"""Conformance: the §3 protocols under open-loop arrival processes.

The closed-loop conformance suites pin the paper's scheduling claims
under think-time populations; this suite re-states them under the
arrival layer's open-loop workloads — free-running Poisson clocks and
on-off bursty (MMPP) sources — where the arrival epochs are independent
of service.  The claims have to be phrased carefully:

- RR implementations 1 and 2 have identical arbitration timing, so
  their winner sequences match *everywhere*, as does the central
  round-robin oracle (§1's identity claim).
- Implementation 3's occasional extra settling round shifts arbitration
  instants against the free-running arrival clock, so below saturation
  it may legitimately reorder near-simultaneous arrivals (the same
  caveat ``test_protocol_equivalence.py`` documents for low closed-loop
  load, and open-loop stability *requires* load < 1).  What survives at
  any load is the round-robin discipline itself: no agent is granted
  twice while a continuously-pending competitor goes unserved — checked
  here for all three implementations straight from the event stream.
- FCFS strategy 2 is exact FCFS: with multiple outstanding requests per
  agent (the §3.2 r > 1 extension, only reachable through open-loop
  sources) its grant stream has no issue-time inversions at all, and at
  r = 1 it matches the central FCFS oracle grant for grant.
- Determinism: an open-loop cell is a pure function of (scenario,
  protocol, settings) — serial sweep, 4-worker parallel sweep, and
  session-gathered runs all emit bit-identical telemetry.
"""

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.observability.events import TelemetrySettings
from repro.session import Session
from repro.workload.arrivals import bursty_equal_load
from repro.workload.scenarios import open_loop_equal_load

from _utils import completion_records, grant_sequence

SEEDS = [2, 11, 23, 47, 101]

#: The two open-loop arrival families under test: a free-running
#: Poisson clock and on-off bursty MMPP sources at the same long-run
#: load.  Fresh scenario per call — MMPP distributions carry phase
#: state, so sharing one spec across runs would couple them.
ARRIVALS = {
    "poisson": lambda: open_loop_equal_load(8, 0.9, max_outstanding=1),
    "bursty": lambda: bursty_equal_load(8, 0.9),
}


def clean_events(scenario, protocol, seed, completions=400):
    """One run's non-anomalous arbitration events, in emission order."""
    settings = SimulationSettings(
        batches=2,
        batch_size=completions // 2,
        warmup=0,
        seed=seed,
        telemetry=TelemetrySettings(events=True),
    )
    result = run_simulation(scenario, protocol, settings)
    assert result.events is not None
    return [event for event in result.events if event.anomaly is None]


def round_robin_violations(events):
    """Grants that skipped a continuously-pending competitor.

    Between two consecutive wins by agent *i*, every agent that was a
    competitor in every arbitration of the span must have won at least
    once — the defining round-robin property, independent of arrival
    timing.
    """
    violations = 0
    last_win = {}
    for index, event in enumerate(events):
        winner = event.winner
        if winner in last_win:
            start = last_win[winner]
            continuously = set(events[start + 1].competitors)
            for between in range(start + 1, index + 1):
                continuously &= set(events[between].competitors)
            continuously.discard(winner)
            served = {events[between].winner for between in range(start + 1, index)}
            if continuously - served:
                violations += 1
        last_win[winner] = index
    return violations


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("arrival", sorted(ARRIVALS))
class TestRRUnderOpenLoopArrivals:
    def test_impl_1_and_2_winner_sequences_identical(self, arrival, seed):
        build = ARRIVALS[arrival]
        base = [event.winner for event in clean_events(build(), "rr", seed)]
        mirror = [event.winner for event in clean_events(build(), "rr-impl2", seed)]
        assert mirror == base, f"rr-impl2 diverged from rr at seed {seed}"

    def test_matches_central_round_robin_oracle(self, arrival, seed):
        build = ARRIVALS[arrival]
        base = [event.winner for event in clean_events(build(), "rr", seed)]
        oracle = [event.winner for event in clean_events(build(), "central-rr", seed)]
        assert base == oracle

    def test_all_implementations_keep_the_rr_discipline(self, arrival, seed):
        build = ARRIVALS[arrival]
        for protocol in ("rr", "rr-impl2", "rr-impl3"):
            events = clean_events(build(), protocol, seed)
            assert round_robin_violations(events) == 0, (
                f"{protocol} skipped a continuously-pending agent "
                f"under {arrival} arrivals at seed {seed}"
            )

    def test_impl_3_pays_only_extra_rounds(self, arrival, seed):
        build = ARRIVALS[arrival]
        for exact in ("rr", "rr-impl2"):
            assert all(
                event.rounds == 1 for event in clean_events(build(), exact, seed)
            )
        rounds = [event.rounds for event in clean_events(build(), "rr-impl3", seed)]
        assert all(count >= 1 for count in rounds)


@pytest.mark.parametrize("seed", SEEDS)
class TestFCFSStrategy2ExactArrivalOrder:
    def test_no_issue_time_inversions_with_outstanding_requests(self, seed):
        # r = 3 outstanding per agent: the §3.2 extension regime.  Exact
        # FCFS means the completion stream is sorted by issue time even
        # when agents pipeline several requests.
        scenario = open_loop_equal_load(10, 0.9, max_outstanding=3)
        records = completion_records(scenario, "fcfs-aincr", completions=400, seed=seed)
        issue_times = [record.issue_time for record in records]
        assert issue_times == sorted(issue_times)

    def test_matches_central_fcfs_oracle_at_r_1(self, seed):
        # The central oracle only models one outstanding request per
        # agent, so the grant-for-grant comparison lives at r = 1.
        scenario = open_loop_equal_load(10, 0.9, max_outstanding=1)
        assert grant_sequence(scenario, "fcfs-aincr", 400, seed) == grant_sequence(
            scenario, "central-fcfs", 400, seed
        )


def test_bursty_pipelining_actually_reaches_the_outstanding_cap():
    # Witness for the r > 1 assertions above: under on-off bursts an
    # agent really does stack requests to the declared cap, so the
    # no-inversion test is not passing vacuously at depth one.
    scenario = bursty_equal_load(6, 0.8, max_outstanding=4)
    records = completion_records(scenario, "fcfs-aincr", completions=400, seed=7)
    outstanding = {}
    deepest = 0
    marks = [(record.issue_time, 1, record.agent_id) for record in records]
    marks += [(record.completion_time, -1, record.agent_id) for record in records]
    for _, delta, agent_id in sorted(marks):
        outstanding[agent_id] = outstanding.get(agent_id, 0) + delta
        deepest = max(deepest, outstanding[agent_id])
    assert deepest == 4
    issue_times = [record.issue_time for record in records]
    assert issue_times == sorted(issue_times)


class TestOpenLoopDeterminism:
    SETTINGS = SimulationSettings(
        batches=2,
        batch_size=100,
        warmup=0,
        seed=77,
        telemetry=TelemetrySettings(events=True, metrics=True),
    )

    def cells(self):
        return [
            SweepCell(build(), protocol, self.SETTINGS)
            for _, build in sorted(ARRIVALS.items())
            for protocol in ("rr", "fcfs", "fcfs-aincr")
        ]

    def test_same_seed_twice_identical_telemetry(self):
        for arrival, build in sorted(ARRIVALS.items()):
            first = run_simulation(build(), "rr", self.SETTINGS)
            second = run_simulation(build(), "rr", self.SETTINGS)
            assert first.events == second.events, f"{arrival} events diverged"
            assert first.metrics == second.metrics, f"{arrival} metrics diverged"

    def test_serial_parallel_and_session_runs_identical(self):
        cells = self.cells()
        serial = SweepExecutor(jobs=1).run(cells)
        parallel = SweepExecutor(jobs=4).run(cells)
        session = Session(jobs=1)
        for cell in self.cells():
            session.submit(cell.scenario, cell.protocol, cell.settings)
        gathered = [outcome.result for outcome in session.gather()]
        assert len(gathered) == len(cells)
        for cell, left, right, third in zip(cells, serial, parallel, gathered):
            label = f"{cell.scenario.name}/{cell.protocol}"
            assert left.events == right.events, f"{label} parallel events diverged"
            assert left.metrics == right.metrics, f"{label} parallel metrics diverged"
            assert left.events == third.events, f"{label} session events diverged"
            assert left.metrics == third.metrics, f"{label} session metrics diverged"
        assert SweepExecutor.merged_metrics(serial) == SweepExecutor.merged_metrics(
            parallel
        )

"""Cross-engine differential conformance: batch vs event-driven engine.

The lockstep batch engine (:mod:`repro.engine.batch`) promises *bit
identity* with the event-driven engine on its supported domain: same
winner sequences, same :class:`ArbitrationEvent` streams byte for byte,
same collector statistics, same floating-point timestamps.  Two engines
that must agree are a far stronger oracle than one engine that must
agree with itself — a bug in either's ordering rule, RNG consumption or
accounting shows up here as a concrete first divergence.

The suite checks the contract four ways:

- a fixed grid of every batch-capable protocol across several seeds,
  comparing every observable of the two runs exactly;
- the fault domain: seeded bus-level fault plans with watchdog
  recovery — including permanent failure (the watchdog giving up) and
  agent dropout — compared observable for observable;
- hypothesis-generated cells (agent count, per-agent load, CV — CV=0
  makes simultaneous requests the norm, stressing the tie-break rule —
  protocol, seed), both as single runs and as heterogeneous
  ``run_lanes`` packs mixing agent counts, protocols and fault plans
  in one super-batch;
- the integration seams: ``run_simulation``'s transparent dispatch and
  fallback, the sweep executor's lane packing and fallback counter,
  and the numpy fast-path toggle.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.bus.watchdog import WatchdogPolicy
from repro.engine.batch import (
    HAVE_NUMPY,
    batch_capable,
    run_lanes,
    run_replications,
)
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.faults.plan import BUS_LEVEL_FAULTS, FaultKind, FaultPlan
from repro.observability.events import TelemetrySettings
from repro.protocols.registry import get_spec, protocol_names
from repro.workload.scenarios import equal_load

#: Every protocol whose registry spec declares a batch kernel.
BATCH_PROTOCOLS = tuple(
    name for name in protocol_names() if get_spec(name).supports_batch
)

SEEDS = (11, 29, 47, 83, 131)

SETTINGS = SimulationSettings(
    batches=2,
    batch_size=80,
    warmup=10,
    keep_order=True,
    keep_records=True,
    telemetry=TelemetrySettings(events=True, metrics=True),
)


def _assert_identical(event_result, batch_result):
    """Every observable of the two runs must match exactly."""
    ev, bt = event_result, batch_result
    assert ev.collector.completion_order == bt.collector.completion_order
    assert [r for r in ev.collector.records] == [r for r in bt.collector.records]
    assert ev.events is not None and bt.events is not None
    assert [e.to_json() for e in ev.events] == [e.to_json() for e in bt.events]
    assert ev.elapsed == bt.elapsed
    assert ev.utilization == bt.utilization
    assert ev.collector.agent_totals == bt.collector.agent_totals
    for a, b in zip(ev.collector.batch_stats, bt.collector.batch_stats):
        assert a.count == b.count
        assert a.start_time == b.start_time
        assert a.end_time == b.end_time
        assert a.sum_waiting == b.sum_waiting
        assert a.sum_waiting_sq == b.sum_waiting_sq
        assert a.sum_queueing == b.sum_queueing
        assert a.agent_counts == b.agent_counts
    assert ev.metrics == bt.metrics


def _both_engines(scenario_factory, protocol, settings):
    event_result = run_simulation(
        scenario_factory(), protocol, replace(settings, engine="event")
    )
    batch_result = run_simulation(
        scenario_factory(), protocol, replace(settings, engine="batch")
    )
    return event_result, batch_result


def _bus_fault_plan(protocol, agents, rate, seed, horizon=100.0, **overrides):
    """A seeded bus-level plan matched to the protocol's line width."""
    spec = get_spec(protocol)
    return FaultPlan.generate(
        seed=seed,
        rate=rate,
        horizon=horizon,
        kinds=overrides.pop(
            "kinds", tuple(sorted(BUS_LEVEL_FAULTS, key=lambda kind: kind.value))
        ),
        num_agents=agents,
        line_span=spec.number_width(agents) if spec.number_width else 4,
        **overrides,
    )


def test_batch_capable_protocol_set_is_the_expected_six():
    assert sorted(BATCH_PROTOCOLS) == [
        "fcfs", "fcfs-aincr", "fixed", "rr", "rr-impl2", "rr-impl3",
    ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", BATCH_PROTOCOLS)
def test_engines_identical_on_fixed_grid(protocol, seed):
    settings = replace(SETTINGS, seed=seed)
    ev, bt = _both_engines(lambda: equal_load(4, 2.0), protocol, settings)
    _assert_identical(ev, bt)


@pytest.mark.parametrize("protocol", BATCH_PROTOCOLS)
def test_engines_identical_under_deterministic_arrivals(protocol):
    # CV=0: every agent requests on a rigid clock, so simultaneous
    # requests (and therefore insertion-order tie-breaks) dominate.
    settings = replace(SETTINGS, seed=5)
    ev, bt = _both_engines(lambda: equal_load(6, 3.0, cv=0.0), protocol, settings)
    _assert_identical(ev, bt)


# -- fault domain -------------------------------------------------------------


@pytest.mark.parametrize("seed", (11, 47, 131))
@pytest.mark.parametrize("protocol", BATCH_PROTOCOLS)
def test_engines_identical_under_fault_injection(protocol, seed):
    # Bus-level glitches, stuck lines and dropouts with watchdog
    # recovery: every kernel's fault path, observable for observable.
    plan = _bus_fault_plan(protocol, 4, rate=0.3, seed=seed)
    settings = replace(
        SETTINGS, seed=seed, fault_plan=plan, watchdog=WatchdogPolicy()
    )
    capable, reason = batch_capable(equal_load(4, 2.0), protocol, settings)
    assert capable, reason
    ev, bt = _both_engines(lambda: equal_load(4, 2.0), protocol, settings)
    _assert_identical(ev, bt)
    assert ev.failed == bt.failed


def test_engines_identical_under_agent_dropout():
    # Dropout/rejoin point faults: the agent's pending requests stay
    # asserted, think-timer wakeups while inactive are swallowed, and
    # the rejoin draws a fresh think time — on both engines alike.
    plan = _bus_fault_plan(
        "rr", 4, rate=0.2, seed=13,
        kinds=(FaultKind.AGENT_DROPOUT,), mean_duration=5.0,
    )
    assert len(plan)
    settings = replace(SETTINGS, seed=13, fault_plan=plan, watchdog=WatchdogPolicy())
    ev, bt = _both_engines(lambda: equal_load(4, 2.0), "rr", settings)
    _assert_identical(ev, bt)


def test_engines_identical_when_watchdog_gives_up():
    # A stuck line long enough to exhaust the watchdog: both engines
    # must declare permanent failure at the same attempt with the same
    # truncated event stream.
    plan = _bus_fault_plan(
        "rr", 4, rate=2.0, seed=7, horizon=60.0,
        kinds=(FaultKind.STUCK_LINE,), mean_duration=30.0,
    )
    settings = replace(
        SETTINGS, seed=7, fault_plan=plan,
        watchdog=WatchdogPolicy(max_attempts=3),
    )
    ev, bt = _both_engines(lambda: equal_load(4, 2.0), "rr", settings)
    assert ev.failed and bt.failed
    _assert_identical(ev, bt)


@hyp_settings(max_examples=40, deadline=None)
@given(
    agents=st.integers(min_value=2, max_value=8),
    per_agent_load=st.sampled_from([0.1, 0.35, 0.6, 0.9, 1.0]),
    cv=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
    protocol=st.sampled_from(BATCH_PROTOCOLS),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_engines_identical_on_generated_cells(agents, per_agent_load, cv, protocol, seed):
    settings = SimulationSettings(
        batches=2,
        batch_size=40,
        warmup=5,
        seed=seed,
        keep_order=True,
        telemetry=TelemetrySettings(events=True),
    )
    make = lambda: equal_load(agents, per_agent_load * agents, cv=cv)  # noqa: E731
    ev, bt = _both_engines(make, protocol, settings)
    assert ev.collector.completion_order == bt.collector.completion_order
    assert [e.to_json() for e in ev.events] == [e.to_json() for e in bt.events]
    assert ev.elapsed == bt.elapsed
    assert ev.utilization == bt.utilization


def test_run_replications_matches_independent_runs():
    scenario = equal_load(5, 2.5)
    settings = replace(SETTINGS, seed=0)
    seeds = list(SEEDS)
    grouped = run_replications(scenario, "rr", settings, seeds)
    for seed, batch_result in zip(seeds, grouped):
        event_result = run_simulation(
            equal_load(5, 2.5), "rr", replace(settings, seed=seed, engine="event")
        )
        assert batch_result.seed == seed
        _assert_identical(event_result, batch_result)


# -- heterogeneous lane packs -------------------------------------------------

#: A deliberately ragged grid: n=2 beside n=32, every kernel family,
#: fault plans on alternating lanes.
_HETERO_GRID = (
    (2, 1.0, "rr"),
    (32, 8.0, "fcfs"),
    (4, 2.0, "rr-impl3"),
    (6, 3.0, "fixed"),
    (3, 1.5, "fcfs-aincr"),
    (5, 2.5, "rr-impl2"),
)


def _hetero_settings(index, agents, protocol):
    settings = replace(SETTINGS, seed=100 + index)
    if index % 2 == 0:
        settings = replace(
            settings,
            fault_plan=_bus_fault_plan(protocol, agents, rate=0.2, seed=100 + index),
            watchdog=WatchdogPolicy(),
        )
    return settings


def test_heterogeneous_lane_pack_matches_event_engine():
    cells = [
        (equal_load(agents, load), protocol, _hetero_settings(i, agents, protocol))
        for i, (agents, load, protocol) in enumerate(_HETERO_GRID)
    ]
    results = run_lanes(cells)
    assert len(results) == len(cells)
    for (i, (agents, load, protocol)), result in zip(enumerate(_HETERO_GRID), results):
        reference = run_simulation(
            equal_load(agents, load),
            protocol,
            replace(_hetero_settings(i, agents, protocol), engine="event"),
        )
        _assert_identical(reference, result)
        assert reference.failed == result.failed


def test_lane_packing_order_cannot_influence_results():
    # The same cells in reversed order produce the same per-cell
    # results: lanes share nothing, so packing is not part of identity.
    def build():
        return [
            (equal_load(agents, load), protocol, _hetero_settings(i, agents, protocol))
            for i, (agents, load, protocol) in enumerate(_HETERO_GRID)
        ]

    forward = run_lanes(build())
    backward = run_lanes(list(reversed(build())))
    for a, b in zip(forward, reversed(backward)):
        _assert_identical(a, b)


@hyp_settings(max_examples=15, deadline=None)
@given(
    lanes=st.lists(
        st.tuples(
            st.integers(min_value=2, max_value=10),
            st.sampled_from([0.3, 0.6, 1.0]),
            st.sampled_from(BATCH_PROTOCOLS),
            st.integers(min_value=0, max_value=2**16),
            st.booleans(),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_lane_packs_identical_on_generated_cells(lanes):
    specs = []
    for agents, per_agent_load, protocol, seed, faulty in lanes:
        settings = SimulationSettings(
            batches=2,
            batch_size=30,
            warmup=5,
            seed=seed,
            keep_order=True,
            telemetry=TelemetrySettings(events=True),
        )
        if faulty:
            settings = replace(
                settings,
                fault_plan=_bus_fault_plan(protocol, agents, rate=0.15, seed=seed),
                watchdog=WatchdogPolicy(),
            )
        specs.append((agents, per_agent_load * agents, protocol, settings))
    results = run_lanes(
        [(equal_load(a, load), p, s) for a, load, p, s in specs]
    )
    for (agents, load, protocol, settings), result in zip(specs, results):
        reference = run_simulation(
            equal_load(agents, load), protocol, replace(settings, engine="event")
        )
        assert reference.collector.completion_order == result.collector.completion_order
        assert [e.to_json() for e in reference.events] == [
            e.to_json() for e in result.events
        ]
        assert reference.elapsed == result.elapsed
        assert reference.failed == result.failed


def test_run_lanes_rejects_shared_jsonl_path(tmp_path):
    from repro.errors import ConfigurationError

    path = str(tmp_path / "trace.jsonl")
    settings = replace(
        SETTINGS, telemetry=TelemetrySettings(events=True, jsonl_path=path)
    )
    cells = [(equal_load(4, 2.0), "rr", settings)] * 2
    with pytest.raises(ConfigurationError):
        run_lanes(cells)


def test_unsupported_cells_fall_back_to_event_engine():
    # A protocol without a batch kernel: engine="batch" must degrade to
    # the event engine and produce its exact results.
    settings = SimulationSettings(batches=2, batch_size=50, warmup=5, seed=3,
                                  keep_order=True)
    capable, reason = batch_capable(equal_load(4, 2.0), "aap1", settings)
    assert not capable and "kernel" in reason
    ev = run_simulation(equal_load(4, 2.0), "aap1", replace(settings, engine="event"))
    bt = run_simulation(equal_load(4, 2.0), "aap1", replace(settings, engine="batch"))
    assert ev.collector.completion_order == bt.collector.completion_order
    assert ev.elapsed == bt.elapsed


def test_sweep_executor_groups_batch_cells():
    cells = [
        SweepCell(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=seed, engine="batch"))
        for seed in SEEDS
    ]
    executor = SweepExecutor(jobs=1)
    grouped = executor.run(cells)
    assert executor.stats.batch_groups == 1
    assert executor.stats.batch_replications == len(SEEDS)
    assert executor.stats.executed == len(SEEDS)
    assert executor.stats.fallback_cells == 0
    for seed, result in zip(SEEDS, grouped):
        reference = run_simulation(
            equal_load(4, 2.0), "rr", replace(SETTINGS, seed=seed, engine="event")
        )
        _assert_identical(reference, result)


def test_executor_engine_override_reaches_declared_event_cells():
    # The CLI's --engine batch lands on SweepExecutor(engine=...): cells
    # explicitly declaring the event engine are rewritten and grouped,
    # and still produce the event engine's exact results.
    cells = [
        SweepCell(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=seed, engine="event"))
        for seed in SEEDS
    ]
    executor = SweepExecutor(jobs=1, engine="batch")
    grouped = executor.run(cells)
    assert executor.stats.batch_groups == 1
    assert executor.stats.batch_replications == len(SEEDS)
    for seed, result in zip(SEEDS, grouped):
        reference = run_simulation(
            equal_load(4, 2.0), "rr", replace(SETTINGS, seed=seed, engine="event")
        )
        _assert_identical(reference, result)


def test_sweep_executor_packs_fault_cells_into_lanes():
    # Fault-plan cells are in-domain now: they ride the lane-packed
    # super-batch, hit no fallback, and match the event engine exactly.
    cells = []
    for seed in (1, 2):
        plan = _bus_fault_plan("rr", 4, rate=0.3, seed=seed)
        cells.append(
            SweepCell(
                equal_load(4, 2.0),
                "rr",
                replace(SETTINGS, seed=seed, fault_plan=plan, watchdog=WatchdogPolicy()),
            )
        )
    executor = SweepExecutor(jobs=1)
    results = executor.run(cells)
    assert executor.stats.batch_groups == 1
    assert executor.stats.batch_replications == 2
    assert executor.stats.fallback_cells == 0
    for cell, result in zip(cells, results):
        reference = run_simulation(
            cell.scenario, cell.protocol, replace(cell.settings, engine="event")
        )
        _assert_identical(reference, result)


def test_sweep_executor_warns_and_counts_runtime_fallback(monkeypatch):
    # If the lane engine dies at runtime the sweep must not silently
    # absorb it: a RuntimeWarning fires, fallback_cells tallies the
    # demoted cells, and the event engine still produces exact results.
    import repro.experiments.sweep as sweep_module

    def boom(cells):
        raise RuntimeError("lane engine exploded")

    monkeypatch.setattr(sweep_module, "run_lanes", boom)
    seeds = (1, 2, 3)
    cells = [
        SweepCell(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=s))
        for s in seeds
    ]
    executor = SweepExecutor(jobs=1)
    with pytest.warns(RuntimeWarning, match="fell back to the event engine"):
        results = executor.run(cells)
    assert executor.stats.fallback_cells == len(seeds)
    assert executor.stats.batch_groups == 0
    assert executor.stats.executed == len(seeds)
    for s, result in zip(seeds, results):
        reference = run_simulation(
            equal_load(4, 2.0), "rr", replace(SETTINGS, seed=s, engine="event")
        )
        _assert_identical(reference, result)


def test_executor_rejects_unknown_engine():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        SweepExecutor(engine="warp")


def test_sweep_executor_leaves_declared_event_cells_alone():
    # An explicit engine="event" declaration is respected: the cell
    # never enters a lane pack (and is not a "fallback" — it was never
    # batch-eligible to begin with).
    cells = [
        SweepCell(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=s, engine="event"))
        for s in (1, 2)
    ]
    executor = SweepExecutor(jobs=1)
    executor.run(cells)
    assert executor.stats.batch_groups == 0
    assert executor.stats.executed == 2
    assert executor.stats.fallback_cells == 0


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_numpy_fast_path_identical_on_wide_bus(monkeypatch):
    settings = SimulationSettings(batches=2, batch_size=100, warmup=10, seed=9,
                                  keep_order=True)
    reference = run_simulation(
        equal_load(40, 8.0), "rr", replace(settings, engine="event")
    )
    monkeypatch.setenv("REPRO_BATCH_NUMPY", "1")
    forced_on = run_simulation(
        equal_load(40, 8.0), "rr", replace(settings, engine="batch")
    )
    monkeypatch.setenv("REPRO_BATCH_NUMPY", "0")
    forced_off = run_simulation(
        equal_load(40, 8.0), "rr", replace(settings, engine="batch")
    )
    assert reference.collector.completion_order == forced_on.collector.completion_order
    assert reference.collector.completion_order == forced_off.collector.completion_order
    assert reference.elapsed == forced_on.elapsed == forced_off.elapsed
    assert reference.utilization == forced_on.utilization == forced_off.utilization


def test_batch_goldens_equal_their_event_twins():
    # The golden grid pins both engines on the same cells; the batch
    # file must be byte-identical to the event file where both exist.
    from repro.observability.golden import golden_trace_lines

    for name in (
        "rr", "rr-impl3", "fcfs", "fcfs-aincr", "fixed", "rr-faults", "mmpp-closed",
    ):
        assert golden_trace_lines(name) == golden_trace_lines(f"batch-{name}")


# -- arrival-layer cells ------------------------------------------------------


def _mmpp_closed(num_agents=4, load=2.0):
    """Closed-loop agents with MMPP think times: stateful but in-domain."""
    from repro.workload.arrivals import MarkovModulatedPoisson
    from repro.workload.scenarios import (
        AgentSpec,
        ScenarioSpec,
        mean_interrequest_for_load,
    )

    mean = mean_interrequest_for_load(load / num_agents)
    return ScenarioSpec(
        name=f"mmpp-diff-n{num_agents}",
        agents=tuple(
            AgentSpec(
                agent_id=i,
                interrequest=MarkovModulatedPoisson(
                    (1.6 / mean, 0.4 / mean), (0.05, 0.05)
                ),
            )
            for i in range(1, num_agents + 1)
        ),
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", ("rr", "fcfs-aincr"))
def test_engines_identical_on_closed_loop_mmpp(protocol, seed):
    # Stateful think-time distributions stay inside the lane domain:
    # the kernels deep-copy scenarios per replication, so the modulating
    # phase evolves identically on both engines.
    settings = replace(SETTINGS, seed=seed)
    capable, reason = batch_capable(_mmpp_closed(), protocol, settings)
    assert capable, reason
    ev, bt = _both_engines(_mmpp_closed, protocol, settings)
    _assert_identical(ev, bt)


def test_open_loop_cells_are_statically_out_of_domain(recwarn):
    # Open-loop agents were never promised the batch engine: the domain
    # check names the agent, engine="batch" silently routes to the event
    # engine, and no RuntimeWarning fires (nothing was demoted).
    from repro.workload.scenarios import open_loop_equal_load

    settings = replace(SETTINGS, seed=3)
    scenario = open_loop_equal_load(4, 0.8, max_outstanding=1)
    capable, reason = batch_capable(scenario, "fcfs", settings)
    assert not capable and "open-loop" in reason
    ev, bt = _both_engines(
        lambda: open_loop_equal_load(4, 0.8, max_outstanding=1), "fcfs", settings
    )
    _assert_identical(ev, bt)
    assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]


def test_priority_class_cells_are_statically_out_of_domain(recwarn):
    from repro.workload.arrivals import two_class_priority_load

    settings = replace(SETTINGS, seed=3)
    scenario = two_class_priority_load(4, 2.0, urgent_fraction=0.25)
    capable, reason = batch_capable(scenario, "rr", settings)
    assert not capable and "priority" in reason
    ev, bt = _both_engines(
        lambda: two_class_priority_load(4, 2.0, urgent_fraction=0.25), "rr", settings
    )
    _assert_identical(ev, bt)
    assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]


def test_mixed_sweep_counts_only_in_domain_cells_as_fallback(monkeypatch):
    # A grid mixing open-loop (statically out-of-domain) and closed-loop
    # MMPP (in-domain) cells, with the lane engine dying at runtime: the
    # warning fires, fallback_cells counts ONLY the demoted in-domain
    # cells, and every cell still matches the event engine exactly.
    import repro.experiments.sweep as sweep_module
    from repro.workload.scenarios import open_loop_equal_load

    def boom(cells):
        raise RuntimeError("lane engine exploded")

    monkeypatch.setattr(sweep_module, "run_lanes", boom)
    in_domain = [
        SweepCell(_mmpp_closed(), "rr", replace(SETTINGS, seed=s)) for s in (1, 2)
    ]
    out_of_domain = [
        SweepCell(
            open_loop_equal_load(4, 0.8, max_outstanding=1),
            "fcfs",
            replace(SETTINGS, seed=s),
        )
        for s in (1, 2, 3)
    ]
    executor = SweepExecutor(jobs=1)
    with pytest.warns(RuntimeWarning, match="fell back to the event engine"):
        results = executor.run(in_domain + out_of_domain)
    assert executor.stats.fallback_cells == len(in_domain)
    assert executor.stats.executed == len(in_domain) + len(out_of_domain)
    for cell, result in zip(in_domain + out_of_domain, results):
        reference = run_simulation(
            cell.scenario, cell.protocol, replace(cell.settings, engine="event")
        )
        _assert_identical(reference, result)


@pytest.mark.parametrize("protocol", BATCH_PROTOCOLS)
def test_spec_flag_agrees_with_kernel_table(protocol):
    from repro.engine.batch import _KERNELS

    assert protocol in _KERNELS
    assert set(_KERNELS) == set(BATCH_PROTOCOLS)

"""Cross-engine differential conformance: batch vs event-driven engine.

The lockstep batch engine (:mod:`repro.engine.batch`) promises *bit
identity* with the event-driven engine on its supported domain: same
winner sequences, same :class:`ArbitrationEvent` streams byte for byte,
same collector statistics, same floating-point timestamps.  Two engines
that must agree are a far stronger oracle than one engine that must
agree with itself — a bug in either's ordering rule, RNG consumption or
accounting shows up here as a concrete first divergence.

The suite checks the contract three ways:

- a fixed grid of every batch-capable protocol across several seeds,
  comparing every observable of the two runs exactly;
- hypothesis-generated cells (agent count, per-agent load, CV — CV=0
  makes simultaneous requests the norm, stressing the tie-break rule —
  protocol, seed) with the same exact comparison;
- the integration seams: ``run_simulation``'s transparent dispatch and
  fallback, the sweep executor's lockstep grouping, and the numpy
  fast-path toggle.
"""

import os
from dataclasses import replace

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.engine.batch import HAVE_NUMPY, batch_capable, run_replications
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.observability.events import TelemetrySettings
from repro.protocols.registry import get_spec, protocol_names
from repro.workload.scenarios import equal_load

#: Every protocol whose registry spec declares a batch kernel.
BATCH_PROTOCOLS = tuple(
    name for name in protocol_names() if get_spec(name).supports_batch
)

SEEDS = (11, 29, 47, 83, 131)

SETTINGS = SimulationSettings(
    batches=2,
    batch_size=80,
    warmup=10,
    keep_order=True,
    keep_records=True,
    telemetry=TelemetrySettings(events=True, metrics=True),
)


def _assert_identical(event_result, batch_result):
    """Every observable of the two runs must match exactly."""
    ev, bt = event_result, batch_result
    assert ev.collector.completion_order == bt.collector.completion_order
    assert [r for r in ev.collector.records] == [r for r in bt.collector.records]
    assert ev.events is not None and bt.events is not None
    assert [e.to_json() for e in ev.events] == [e.to_json() for e in bt.events]
    assert ev.elapsed == bt.elapsed
    assert ev.utilization == bt.utilization
    assert ev.collector.agent_totals == bt.collector.agent_totals
    for a, b in zip(ev.collector.batch_stats, bt.collector.batch_stats):
        assert a.count == b.count
        assert a.start_time == b.start_time
        assert a.end_time == b.end_time
        assert a.sum_waiting == b.sum_waiting
        assert a.sum_waiting_sq == b.sum_waiting_sq
        assert a.sum_queueing == b.sum_queueing
        assert a.agent_counts == b.agent_counts
    assert ev.metrics == bt.metrics


def _both_engines(scenario_factory, protocol, settings):
    event_result = run_simulation(scenario_factory(), protocol, settings)
    batch_result = run_simulation(
        scenario_factory(), protocol, replace(settings, engine="batch")
    )
    return event_result, batch_result


def test_batch_capable_protocol_set_is_the_expected_six():
    assert sorted(BATCH_PROTOCOLS) == [
        "fcfs", "fcfs-aincr", "fixed", "rr", "rr-impl2", "rr-impl3",
    ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("protocol", BATCH_PROTOCOLS)
def test_engines_identical_on_fixed_grid(protocol, seed):
    settings = replace(SETTINGS, seed=seed)
    ev, bt = _both_engines(lambda: equal_load(4, 2.0), protocol, settings)
    _assert_identical(ev, bt)


@pytest.mark.parametrize("protocol", BATCH_PROTOCOLS)
def test_engines_identical_under_deterministic_arrivals(protocol):
    # CV=0: every agent requests on a rigid clock, so simultaneous
    # requests (and therefore insertion-order tie-breaks) dominate.
    settings = replace(SETTINGS, seed=5)
    ev, bt = _both_engines(lambda: equal_load(6, 3.0, cv=0.0), protocol, settings)
    _assert_identical(ev, bt)


@hyp_settings(max_examples=40, deadline=None)
@given(
    agents=st.integers(min_value=2, max_value=8),
    per_agent_load=st.sampled_from([0.1, 0.35, 0.6, 0.9, 1.0]),
    cv=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
    protocol=st.sampled_from(BATCH_PROTOCOLS),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_engines_identical_on_generated_cells(agents, per_agent_load, cv, protocol, seed):
    settings = SimulationSettings(
        batches=2,
        batch_size=40,
        warmup=5,
        seed=seed,
        keep_order=True,
        telemetry=TelemetrySettings(events=True),
    )
    make = lambda: equal_load(agents, per_agent_load * agents, cv=cv)  # noqa: E731
    ev, bt = _both_engines(make, protocol, settings)
    assert ev.collector.completion_order == bt.collector.completion_order
    assert [e.to_json() for e in ev.events] == [e.to_json() for e in bt.events]
    assert ev.elapsed == bt.elapsed
    assert ev.utilization == bt.utilization


def test_run_replications_matches_independent_runs():
    scenario = equal_load(5, 2.5)
    settings = replace(SETTINGS, seed=0)
    seeds = list(SEEDS)
    grouped = run_replications(scenario, "rr", settings, seeds)
    for seed, batch_result in zip(seeds, grouped):
        event_result = run_simulation(
            equal_load(5, 2.5), "rr", replace(settings, seed=seed)
        )
        assert batch_result.seed == seed
        _assert_identical(event_result, batch_result)


def test_unsupported_cells_fall_back_to_event_engine():
    # A protocol without a batch kernel: engine="batch" must degrade to
    # the event engine and produce its exact results.
    settings = SimulationSettings(batches=2, batch_size=50, warmup=5, seed=3,
                                  keep_order=True)
    capable, reason = batch_capable(equal_load(4, 2.0), "aap1", settings)
    assert not capable and "kernel" in reason
    ev = run_simulation(equal_load(4, 2.0), "aap1", settings)
    bt = run_simulation(equal_load(4, 2.0), "aap1", replace(settings, engine="batch"))
    assert ev.collector.completion_order == bt.collector.completion_order
    assert ev.elapsed == bt.elapsed


def test_sweep_executor_groups_batch_cells():
    cells = [
        SweepCell(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=seed, engine="batch"))
        for seed in SEEDS
    ]
    executor = SweepExecutor(jobs=1)
    grouped = executor.run(cells)
    assert executor.stats.batch_groups == 1
    assert executor.stats.batch_replications == len(SEEDS)
    assert executor.stats.executed == len(SEEDS)
    for seed, result in zip(SEEDS, grouped):
        reference = run_simulation(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=seed))
        _assert_identical(reference, result)


def test_executor_engine_override_reaches_declared_event_cells():
    # The CLI's --engine batch lands on SweepExecutor(engine=...): cells
    # declaring the default event engine are rewritten and grouped, and
    # still produce the event engine's exact results.
    cells = [
        SweepCell(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=seed))
        for seed in SEEDS
    ]
    executor = SweepExecutor(jobs=1, engine="batch")
    grouped = executor.run(cells)
    assert executor.stats.batch_groups == 1
    assert executor.stats.batch_replications == len(SEEDS)
    for seed, result in zip(SEEDS, grouped):
        reference = run_simulation(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=seed))
        _assert_identical(reference, result)


def test_executor_rejects_unknown_engine():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        SweepExecutor(engine="warp")


def test_sweep_executor_leaves_event_cells_alone():
    cells = [SweepCell(equal_load(4, 2.0), "rr", replace(SETTINGS, seed=s)) for s in (1, 2)]
    executor = SweepExecutor(jobs=1)
    executor.run(cells)
    assert executor.stats.batch_groups == 0
    assert executor.stats.executed == 2


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_numpy_fast_path_identical_on_wide_bus(monkeypatch):
    settings = SimulationSettings(batches=2, batch_size=100, warmup=10, seed=9,
                                  keep_order=True)
    reference = run_simulation(equal_load(40, 8.0), "rr", settings)
    monkeypatch.setenv("REPRO_BATCH_NUMPY", "1")
    forced_on = run_simulation(
        equal_load(40, 8.0), "rr", replace(settings, engine="batch")
    )
    monkeypatch.setenv("REPRO_BATCH_NUMPY", "0")
    forced_off = run_simulation(
        equal_load(40, 8.0), "rr", replace(settings, engine="batch")
    )
    assert reference.collector.completion_order == forced_on.collector.completion_order
    assert reference.collector.completion_order == forced_off.collector.completion_order
    assert reference.elapsed == forced_on.elapsed == forced_off.elapsed
    assert reference.utilization == forced_on.utilization == forced_off.utilization


def test_batch_goldens_equal_their_event_twins():
    # The golden grid pins both engines on the same cells; the batch
    # file must be byte-identical to the event file where both exist.
    from repro.observability.golden import golden_trace_lines

    for name in ("rr", "rr-impl3", "fcfs", "fcfs-aincr", "fixed"):
        assert golden_trace_lines(name) == golden_trace_lines(f"batch-{name}")


@pytest.mark.parametrize("protocol", BATCH_PROTOCOLS)
def test_spec_flag_agrees_with_kernel_table(protocol):
    from repro.engine.batch import _KERNELS

    assert protocol in _KERNELS
    assert set(_KERNELS) == set(BATCH_PROTOCOLS)

"""Conformance: fixed priority starves; RR and FCFS do not (§1, Table 4.1).

The paper's motivation for distributed RR/FCFS is that a fixed-priority
arbiter starves low-priority agents outright under sustained load, which
Table 4.1 quantifies as an unbounded t_N/t_1 throughput ratio.  This
suite pins the starvation *witness* on ≥5 seeds: under a saturated
symmetric workload the fixed arbiter hands the lowest static identity a
vanishing bandwidth share while the highest identity dominates — and the
same workload under RR or exact FCFS splits bandwidth evenly, so the
contrast is attributable to the discipline alone (common random numbers:
identical arrival processes).
"""

import pytest

from repro.experiments.runner import run_simulation
from repro.workload.scenarios import equal_load

from _utils import quick_settings

SEEDS = [5, 13, 31, 61, 89]

NUM_AGENTS = 8
LOAD = 3.0  # well past saturation: every arbitration is contested
FAIR_SHARE = 1.0 / NUM_AGENTS


def bandwidth_shares(protocol, seed):
    scenario = equal_load(NUM_AGENTS, LOAD)
    result = run_simulation(scenario, protocol, quick_settings(seed=seed))
    return result.bandwidth_shares()


@pytest.mark.parametrize("seed", SEEDS)
class TestFixedPriorityStarvation:
    def test_lowest_identity_is_starved(self, seed):
        shares = bandwidth_shares("fixed", seed)
        lowest = min(shares)
        highest = max(shares)
        # The witness: the bottom agent gets a sliver (< a tenth of its
        # fair share) while the top agent hoards several fair shares.
        assert shares[lowest] < FAIR_SHARE / 10
        assert shares[highest] > 1.5 * FAIR_SHARE

    def test_round_robin_serves_everyone(self, seed):
        shares = bandwidth_shares("rr", seed)
        assert min(shares.values()) > 0.8 * FAIR_SHARE
        assert max(shares.values()) < 1.2 * FAIR_SHARE

    def test_fcfs_serves_everyone(self, seed):
        shares = bandwidth_shares("fcfs-aincr", seed)
        assert min(shares.values()) > 0.8 * FAIR_SHARE
        assert max(shares.values()) < 1.2 * FAIR_SHARE

    def test_contrast_is_the_discipline_not_the_workload(self, seed):
        # Same seed, same arrivals: the spread under fixed priority must
        # dwarf the spread under RR by an order of magnitude.
        fixed = bandwidth_shares("fixed", seed)
        rr = bandwidth_shares("rr", seed)
        fixed_spread = max(fixed.values()) - min(fixed.values())
        rr_spread = max(rr.values()) - min(rr.values())
        assert fixed_spread > 10 * rr_spread

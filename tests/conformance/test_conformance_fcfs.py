"""Conformance: FCFS strategy 2 refines strategy 1's ties (§3.2).

§3.2 presents two counter strategies for the distributed FCFS protocol.
Strategy 1 counts *lost arbitrations*, so requests arriving between the
same two successive arbitrations share a count — a tie the hardware
breaks arbitrarily.  Strategy 2 timestamps by arrival order, so it is
exact FCFS.  The conformance claim is therefore a refinement: every
ordering strategy 2 produces is one of the orderings strategy 1 could
have produced, i.e. wherever the two disagree about a pair of grants,
that pair must have been a *strategy-1 tie* (issue times within one
inter-arbitration window).

Three angles, ≥5 seeds each:

- strategy 2 matches the central FCFS oracle grant for grant (exact
  FCFS, no ties left to break);
- strategy 2's grant stream has no issue-time inversions at all, while
  strategy 1's inversions are bounded by the arbitration window — the
  sharpest statement of "ties only";
- on full closed-loop runs, every pair the two strategies order
  differently arrived within one window of each other, so each
  divergence is a tie, never a genuine FCFS violation.
"""

import pytest

from repro.workload.scenarios import equal_load, unequal_load

from _utils import completion_records, grant_sequence

SEEDS = [3, 17, 29, 53, 97]

#: One inter-arbitration window under load: a bus tenure (1.0) plus the
#: arbitration settle time — requests closer together than this can
#: share a strategy-1 counter value.
TIE_WINDOW = 1.5


@pytest.mark.parametrize("seed", SEEDS)
class TestStrategy2IsExactFCFS:
    def test_matches_central_fcfs_oracle(self, seed):
        scenario = equal_load(10, 2.0)
        assert grant_sequence(scenario, "fcfs-aincr", seed=seed) == grant_sequence(
            scenario, "central-fcfs", seed=seed
        )

    def test_matches_oracle_on_asymmetric_load(self, seed):
        scenario = unequal_load(8, 0.2, 2.5)
        assert grant_sequence(scenario, "fcfs-aincr", seed=seed) == grant_sequence(
            scenario, "central-fcfs", seed=seed
        )

    def test_no_issue_time_inversions(self, seed):
        records = completion_records(
            equal_load(10, 2.0), "fcfs-aincr", completions=600, seed=seed
        )
        issue_times = [record.issue_time for record in records]
        assert issue_times == sorted(issue_times)


@pytest.mark.parametrize("seed", SEEDS)
class TestStrategy1TiesAreWindowBounded:
    def test_inversions_bounded_by_arbitration_window(self, seed):
        # Strategy 1 may serve a later request first only when both fell
        # inside the same inter-arbitration window (a shared counter
        # value); larger inversions would be genuine FCFS violations.
        records = completion_records(
            equal_load(10, 2.0), "fcfs", completions=600, seed=seed
        )
        for earlier, later in zip(records, records[1:]):
            assert later.issue_time >= earlier.issue_time - TIE_WINDOW

    def test_divergences_from_strategy_2_are_ties(self, seed):
        # Wherever the two strategies order a pair of grants differently,
        # the pair's issue times must be within one window — i.e. the
        # difference is strategy 1 breaking a tie, not dropping FCFS.
        scenario = equal_load(10, 2.0)
        s1 = completion_records(scenario, "fcfs", completions=400, seed=seed)
        s2 = completion_records(scenario, "fcfs-aincr", completions=400, seed=seed)
        issue_by_key = {}
        for rank, record in enumerate(s2):
            issue_by_key[(record.agent_id, record.issue_time)] = rank
        for earlier, later in zip(s1, s1[1:]):
            rank_a = issue_by_key.get((earlier.agent_id, earlier.issue_time))
            rank_b = issue_by_key.get((later.agent_id, later.issue_time))
            if rank_a is None or rank_b is None:
                # Closed-loop feedback lets the tails of the two runs
                # diverge; only pairs present in both streams are
                # comparable.
                continue
            if rank_a > rank_b:  # strategy 2 ordered this pair the other way
                assert abs(earlier.issue_time - later.issue_time) <= TIE_WINDOW, (
                    f"strategy 1 inverted a non-tie at seed {seed}: "
                    f"{earlier.agent_id}@{earlier.issue_time} before "
                    f"{later.agent_id}@{later.issue_time}"
                )

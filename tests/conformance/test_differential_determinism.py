"""Differential determinism: every protocol's event stream is replayable.

The whole observability layer leans on the engine's common-random-
numbers discipline: a run's arbitration-event stream is a pure function
of (scenario, protocol, settings).  This suite checks that claim
differentially, for *every* registered protocol —

- the same cell run twice produces identical ``ArbitrationEvent``
  streams, element for element;
- a serial sweep and a 4-worker parallel sweep over the same grid
  produce identical streams and identical merged metrics, so worker
  placement and completion order are unobservable.

A protocol whose arbiter consulted any ambient state (wall clock,
global RNG, dict iteration order across processes) would fail here
before it could corrupt a golden trace or a conformance result.
"""

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.observability.events import TelemetrySettings
from repro.protocols.registry import protocol_names
from repro.workload.scenarios import equal_load

SETTINGS = SimulationSettings(
    batches=2,
    batch_size=100,
    warmup=0,
    seed=77,
    telemetry=TelemetrySettings(events=True, metrics=True),
)


def run_cell(protocol):
    return run_simulation(equal_load(6, 2.0), protocol, SETTINGS)


@pytest.mark.parametrize("protocol", protocol_names())
def test_same_seed_twice_identical_event_stream(protocol):
    first = run_cell(protocol)
    second = run_cell(protocol)
    assert first.events == second.events
    assert first.metrics == second.metrics


def test_serial_and_parallel_sweeps_emit_identical_streams():
    # One grid over several protocols, run through a serial executor and
    # a 4-worker pool: telemetry must be bit-identical in cell order.
    cells = [
        SweepCell(equal_load(6, 2.0), protocol, SETTINGS)
        for protocol in ("rr", "rr-impl3", "fcfs", "fcfs-aincr", "fixed", "aap1")
    ]
    serial = SweepExecutor(jobs=1).run(cells)
    parallel = SweepExecutor(jobs=4).run(cells)
    for cell, left, right in zip(cells, serial, parallel):
        assert left.events == right.events, f"{cell.protocol} events diverged"
        assert left.metrics == right.metrics, f"{cell.protocol} metrics diverged"
    assert SweepExecutor.merged_metrics(serial) == SweepExecutor.merged_metrics(parallel)

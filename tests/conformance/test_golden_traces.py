"""Golden-trace regression suite: pinned event streams, byte for byte.

Each file under ``tests/golden/`` is the canonical JSONL encoding of one
short run's full arbitration-event stream (scenarios declared in
:mod:`repro.observability.golden`).  The comparison is *exact* — field
order, float ``repr``, separators — so any engine change that moves an
arbitration, alters settle accounting or touches the schema fails here
with a unified diff of precisely the drifted lines.

On an intentional change, regenerate with ``make golden`` (=
``scripts/regen_golden.py``) and commit the new files alongside the
change that caused them.
"""

import difflib
import json
from pathlib import Path

import pytest

from repro.observability.events import event_from_dict
from repro.observability.golden import golden_names, golden_trace_lines

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def stored_lines(name):
    path = GOLDEN_DIR / f"{name}.jsonl"
    assert path.exists(), (
        f"missing golden trace {path}; generate it with scripts/regen_golden.py"
    )
    return path.read_text(encoding="utf-8").splitlines()


@pytest.mark.parametrize("name", golden_names())
def test_trace_matches_golden_byte_for_byte(name):
    stored = stored_lines(name)
    fresh = golden_trace_lines(name)
    if fresh != stored:
        diff = "\n".join(
            difflib.unified_diff(
                stored,
                fresh,
                fromfile=f"tests/golden/{name}.jsonl (stored)",
                tofile=f"{name} (this run)",
                lineterm="",
            )
        )
        pytest.fail(
            f"golden trace {name!r} drifted; if intentional, regenerate with "
            f"'make golden' and commit the diff:\n{diff}"
        )


@pytest.mark.parametrize("name", golden_names())
def test_golden_lines_round_trip_through_schema(name):
    # The stored artefacts stay loadable: every line parses, round-trips
    # through event_from_dict, and re-encodes to the identical bytes.
    for line in stored_lines(name):
        event = event_from_dict(json.loads(line))
        assert event.to_json() == line


def test_every_golden_file_has_a_scenario():
    # No orphaned artefacts: each .jsonl under tests/golden/ must map to
    # a declared scenario, or regeneration would silently skip it.
    on_disk = {path.stem for path in GOLDEN_DIR.glob("*.jsonl")}
    assert on_disk == set(golden_names())

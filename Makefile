# Convenience targets for the repro library.

PYTHON ?= python
SCALE ?= quick

.PHONY: install test lint bench bench-all tables faults trace golden conformance experiments apidocs examples serve soak clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Correctness-only ruff gate (rule selection lives in pyproject.toml).
lint:
	$(PYTHON) -m ruff check src tests scripts benchmarks examples

# Engine micro-benchmarks -> BENCH_engine.json (median timings), plus the
# sweep-executor wall-clock demos (parallel speedup, warm-cache replay).
bench:
	$(PYTHON) scripts/run_benchmarks.py
	REPRO_SCALE=$(SCALE) PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_sweep_parallel.py -q -s

# The full benchmark suite (ablations and table regenerations included).
bench-all:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

tables:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m repro all

# Robustness grid (fault rate x protocol, watchdog recovery) at smoke
# scale: fast enough for CI, still exercises the §3.1 failure contrast.
faults:
	REPRO_SCALE=smoke PYTHONPATH=src $(PYTHON) -m repro faults

# One run's arbitration-event trace as JSON lines on stdout (see
# docs/observability.md for the schema).
trace:
	REPRO_SCALE=smoke PYTHONPATH=src $(PYTHON) -m repro trace

# Regenerate the golden traces under tests/golden/ after an intentional
# engine change (the diff shows exactly which lines drifted).
golden:
	PYTHONPATH=src $(PYTHON) scripts/regen_golden.py

# Paper-level equivalence/conformance suite plus golden-trace pinning.
conformance:
	PYTHONPATH=src $(PYTHON) -m pytest tests/conformance -q

experiments:
	REPRO_SCALE=paper $(PYTHON) scripts/generate_experiments.py
	$(PYTHON) scripts/append_extension_tables.py

apidocs:
	$(PYTHON) scripts/generate_api_docs.py

# Serve the arbitration service on a local AF_UNIX socket (override the
# path with REPRO_SERVICE_SOCKET or `-- --socket PATH`); submit work
# with `repro submit` or ServiceClient, stop with the shutdown op.
serve:
	PYTHONPATH=src $(PYTHON) -m repro serve

# The service acceptance soak: a 200-job stream with injected worker
# kills and deadline expiries — every job must reach a terminal state
# and every completed job must match a direct session run exactly.
soak:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_service_soak.py -q -s -m slow

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script; done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

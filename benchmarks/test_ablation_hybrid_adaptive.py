"""Ablation: the §5 future-work protocols on the regimes that motivate them.

The hybrid (FCFS across arrival ticks, RR within a tick cohort) and the
adaptive arbiter exist for workloads with coincident arrivals — exactly
the deterministic CV = 0 regime of Table 4.5 where plain RR phase-locks
and plain FCFS falls back to static priority.  This bench runs all four
protocols on both the pathological and a benign workload.
"""

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.experiments.table_4_5 import slow_to_other_ratio
from repro.workload.scenarios import equal_load, worst_case_rr


PROTOCOLS = ("rr", "fcfs", "hybrid", "adaptive")


def test_deterministic_worst_case(benchmark, scale):
    scenario = worst_case_rr(10, cv=0.0)
    settings = SimulationSettings(
        batches=scale.batches, batch_size=scale.batch_size, warmup=scale.warmup, seed=41
    )
    ratios = {
        name: slow_to_other_ratio(run_simulation(scenario, name, settings)).mean
        for name in PROTOCOLS
    }
    benchmark.pedantic(
        lambda: run_simulation(scenario, "hybrid", settings), rounds=1, iterations=1
    )
    load_ratio = scenario.agent(1).offered_load() / scenario.agent(2).offered_load()
    print()
    print(f"slow/other throughput ratio, CV = 0 worst case (load ratio {load_ratio:.2f}):")
    for name, ratio in ratios.items():
        print(f"  {name:10s} {ratio:.3f}")
    # RR collapses; the FCFS-ordered protocols do not.
    assert ratios["rr"] == pytest.approx(0.5, abs=0.06)
    for name in ("fcfs", "hybrid", "adaptive"):
        assert ratios[name] > ratios["rr"] + 0.1, name


def test_benign_workload_parity(benchmark, scale):
    """On the paper's standard workload all four protocols are near-fair
    and share the conservation-law mean wait."""
    scenario = equal_load(10, 2.0)
    settings = SimulationSettings(
        batches=scale.batches, batch_size=scale.batch_size, warmup=scale.warmup, seed=43
    )
    results = {name: run_simulation(scenario, name, settings) for name in PROTOCOLS}
    benchmark.pedantic(
        lambda: run_simulation(scenario, "adaptive", settings), rounds=1, iterations=1
    )
    print()
    print("equal-load parity check (10 agents @ 2.0):")
    reference = results["rr"].mean_waiting().mean
    for name, result in results.items():
        print(
            f"  {name:10s} W {result.mean_waiting().mean:6.3f}  "
            f"fairness {result.extreme_throughput_ratio().mean:.3f}"
        )
        assert result.mean_waiting().mean == pytest.approx(reference, rel=0.05)
        assert abs(result.extreme_throughput_ratio().mean - 1.0) < 0.12

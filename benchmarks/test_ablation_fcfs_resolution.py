"""Ablation: FCFS counter resolution and multiple outstanding requests.

§3.2 trades counting-hardware simplicity against FCFS fidelity.  This
bench sweeps that trade-off: strategy 1 (coarse) vs strategy 2 with
increasing coincidence windows (the a-incr propagation time), measuring
realised fairness; and the r > 1 extension, verifying FCFS order holds
across queued requests.
"""

import pytest

from repro.bus.model import BusSystem
from repro.core.fcfs import DistributedFCFS
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.stats.collector import CompletionCollector
from repro.stats.summary import RunResult
from repro.workload.scenarios import equal_load, open_loop_equal_load


def _run_fcfs(scenario, settings, **fcfs_kwargs):
    arbiter = DistributedFCFS(scenario.num_agents, **fcfs_kwargs)
    collector = CompletionCollector(
        batches=settings.batches,
        batch_size=settings.batch_size,
        warmup=settings.warmup,
    )
    system = BusSystem(scenario, arbiter, collector, seed=settings.seed)
    system.run()
    return RunResult(
        scenario, arbiter.name, collector, system.utilization(),
        system.simulator.now, settings.seed,
    )


def test_fcfs_fidelity_vs_counter_resolution(benchmark, scale):
    scenario = equal_load(10, 2.0)
    settings = SimulationSettings(
        batches=scale.batches, batch_size=scale.batch_size, warmup=scale.warmup, seed=55
    )
    variants = {
        "strategy 1 (lost arbitrations)": dict(strategy=1),
        "strategy 2, window 0.00": dict(strategy=2, coincidence_window=0.0),
        "strategy 2, window 0.05": dict(strategy=2, coincidence_window=0.05),
        "strategy 2, window 0.50": dict(strategy=2, coincidence_window=0.5),
    }
    ratios = {}
    for name, kwargs in variants.items():
        result = _run_fcfs(scenario, settings, **kwargs)
        ratios[name] = result.extreme_throughput_ratio().mean

    benchmark.pedantic(
        lambda: run_simulation(scenario, "fcfs-aincr", settings), rounds=1, iterations=1
    )

    print()
    print("FCFS unfairness (t_N/t_1) vs counter resolution, 10 agents @ load 2.0:")
    for name, ratio in ratios.items():
        print(f"  {name:32s} {ratio:.3f}")
    # The exact a-incr implementation is fairer than the coarse counter.
    assert abs(ratios["strategy 2, window 0.00"] - 1.0) <= abs(
        ratios["strategy 1 (lost arbitrations)"] - 1.0
    ) + 0.02
    # A grotesquely slow a-incr line degrades back toward strategy 1.
    assert abs(ratios["strategy 2, window 0.50"] - 1.0) >= abs(
        ratios["strategy 2, window 0.00"] - 1.0
    ) - 0.02


@pytest.mark.parametrize("r", [1, 2, 4, 8])
def test_multiple_outstanding_requests(benchmark, scale, r):
    """§3.2's r > 1 extension: still FCFS, bounded counters, stable."""
    scenario = open_loop_equal_load(8, 0.7, max_outstanding=r)
    settings = SimulationSettings(
        batches=max(3, scale.batches // 2),
        batch_size=scale.batch_size,
        warmup=scale.warmup,
        seed=99,
    )
    result = benchmark.pedantic(
        lambda: run_simulation(scenario, "fcfs-aincr", settings),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        f"r={r}: throughput {result.system_throughput().mean:.3f}, "
        f"mean W {result.mean_waiting().mean:.3f}, "
        f"fairness {result.extreme_throughput_ratio().mean:.3f}"
    )
    if r >= 2:
        # Enough request slots that the sources rarely block: the system
        # carries its full offered rate.
        assert result.system_throughput().mean == pytest.approx(0.7, abs=0.06)
    else:
        # r = 1 blocks the source during each wait, shedding some load.
        assert 0.5 <= result.system_throughput().mean <= 0.72
    assert abs(result.extreme_throughput_ratio().mean - 1.0) < 0.15

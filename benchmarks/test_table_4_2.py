"""Benchmark: regenerate Table 4.2 (waiting-time standard deviation).

Paper shape: RR and FCFS share the mean waiting time W (conservation
law), while σ_W for RR exceeds σ_W for FCFS under load, by a factor that
grows with system size (up to ~1.6x at 10 agents, ~2.9x at 30, ~4.5x at
64 in the paper's runs).
"""

import pytest

from repro.experiments import table_4_2

from conftest import render


@pytest.mark.parametrize("num_agents", [10, 30, 64])
def test_table_4_2_panel(benchmark, scale, num_agents):
    panel = benchmark.pedantic(
        lambda: table_4_2.run_panel(num_agents, scale=scale),
        rounds=1,
        iterations=1,
    )
    render(panel)
    saturated = [row for row in panel.data if 1.5 <= row["load"] <= 5.0]
    # Variance ordering at and beyond saturation.
    assert all(row["std_rr"].mean > row["std_fcfs"].mean for row in saturated)
    # Conservation law: equal mean waits.
    for row in panel.data:
        assert row["mean_w_rr"].mean == pytest.approx(
            row["mean_w_fcfs"].mean, rel=0.06
        )
    # The ratio grows with load up to saturation.
    peak = max(row["std_ratio"] for row in saturated)
    assert peak > 1.3

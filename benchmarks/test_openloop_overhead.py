"""Open-loop arrival-layer cost gate: bursty sources must stay cheap.

The arrival layer moved workload generation from closed-loop think
timers (one exponential draw per completion) to free-running arrival
clocks — per-draw MMPP phase walks, outstanding-request accounting, and
the priority-class coin flip.  All of that runs once per request on the
event engine's hot path, so the honest measure is *per-completion cost*:
an open-loop sweep at the same completion budget may cost at most 1.5x
the closed-loop sweep it grew out of.

Both passes run the event engine — open-loop cells are outside the lane
domain by construction, and comparing against lane-packed closed cells
would measure the batch engine, not the arrival layer.  Two
pytest-benchmark entries record the pair *adjacent in this file* (same
machine state, drift-free ratio); ``scripts/run_benchmarks.py``
condenses them into an ``openloop_overhead`` fraction that
``scripts/check_bench.py`` gates, and ``test_openloop_overhead_gate``
enforces the same bar in-test with the interleaved min-of-k discipline
the other gates use.
"""

import time
from dataclasses import replace

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.arrivals import bursty_equal_load
from repro.workload.scenarios import equal_load

#: The gate: per-completion, the open-loop bursty sweep may cost at
#: most this fraction over the closed-loop sweep (<= 1.5x).
OVERHEAD_GATE = 0.5

PROTOCOLS = ("rr", "fcfs", "fcfs-aincr")
SEEDS = (1, 2)

#: Identical completion budget on both sides: per-completion cost is
#: then just the pass ratio.
SETTINGS = SimulationSettings(batches=2, batch_size=250, warmup=50, engine="event")


def closed_cells():
    scenario = equal_load(8, 4.0)
    return [
        (scenario, protocol, replace(SETTINGS, seed=seed))
        for protocol in PROTOCOLS
        for seed in SEEDS
    ]


def open_cells():
    # Fresh scenarios per call: the MMPP sources carry phase state.
    return [
        (
            bursty_equal_load(8, 0.9, urgent_fraction=0.2),
            protocol,
            replace(SETTINGS, seed=seed),
        )
        for protocol in PROTOCOLS
        for seed in SEEDS
    ]


def _pass(cells):
    start = time.perf_counter()
    results = [
        run_simulation(scenario, protocol, settings)
        for scenario, protocol, settings in cells
    ]
    return time.perf_counter() - start, results


def test_both_sweeps_complete_the_same_budget():
    """Equal recorded completions per cell — the ratio is per-completion."""
    _, closed = _pass(closed_cells())
    _, opened = _pass(open_cells())
    budgets = {r.collector.total_recorded for r in closed + opened}
    assert budgets == {SETTINGS.batches * SETTINGS.batch_size + SETTINGS.warmup}


def test_openloop_overhead_gate():
    """Open-loop sweep within 1.5x of the closed-loop sweep, min-of-k.

    Interleaved rounds, minimum of each series: the same discipline as
    the session and service gates, so runner noise is stripped before
    the ratio is taken.
    """
    _pass(open_cells())  # warm allocator / code caches
    open_times, closed_times = [], []
    for _ in range(5):
        closed_time, _ = _pass(closed_cells())
        open_time, _ = _pass(open_cells())
        closed_times.append(closed_time)
        open_times.append(open_time)
    overhead = min(open_times) / min(closed_times) - 1.0
    print(
        f"\nopen-loop per-completion overhead: {overhead:+.2%} "
        f"(gate < {OVERHEAD_GATE:.0%})"
    )
    assert overhead < OVERHEAD_GATE


def test_sweep_pass_closed_loop_paired(benchmark):
    """Recorded median of the closed-loop event sweep, as pair baseline.

    Runs immediately before ``test_sweep_pass_open_loop`` so the two
    medians share machine state; their ratio is the recorded
    ``openloop_overhead``.
    """
    results = benchmark.pedantic(lambda: _pass(closed_cells())[1], rounds=5, iterations=1)
    assert len(results) == len(PROTOCOLS) * len(SEEDS)


def test_sweep_pass_open_loop(benchmark):
    """Recorded median of the open-loop bursty two-class event sweep.

    Paired with ``test_sweep_pass_closed_loop_paired`` this yields the
    ``openloop_overhead`` fraction ``scripts/check_bench.py`` gates.
    """
    results = benchmark.pedantic(lambda: _pass(open_cells())[1], rounds=5, iterations=1)
    assert len(results) == len(PROTOCOLS) * len(SEEDS)

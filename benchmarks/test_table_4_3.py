"""Benchmark: regenerate Table 4.3 (execution overlapped with bus waits).

Paper shape: with the overlap value set just past the CDF crossing,
FCFS's concentrated waiting distribution leaves less residual stall time
than RR's long tail, so FCFS productivity is (slightly) higher — the
paper's contrived best case for FCFS.
"""

import pytest

from repro.experiments import table_4_3

from conftest import render


@pytest.mark.parametrize("num_agents", [10, 30, 64])
def test_table_4_3_panel(benchmark, scale, num_agents):
    panel = benchmark.pedantic(
        lambda: table_4_3.run_panel(num_agents, scale=scale),
        rounds=1,
        iterations=1,
    )
    render(panel)
    saturated = [row for row in panel.data if 1.5 <= row["load"] <= 5.0]
    # FCFS leaves less residual (unoverlapped) waiting than RR in the
    # large majority of saturated rows (allow one noise inversion at
    # reduced scale)...
    fewer_residual = sum(
        row["fcfs"].residual_waiting.mean
        <= row["rr"].residual_waiting.mean + 0.05 * row["rr"].total_waiting.mean
        for row in saturated
    )
    assert fewer_residual >= len(saturated) - 1
    # ...and its productivity is at least RR's wherever the loads bite.
    better = sum(
        row["fcfs"].productivity.mean >= row["rr"].productivity.mean - 0.01
        for row in saturated
    )
    assert better >= len(saturated) - 1

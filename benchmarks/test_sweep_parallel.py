"""Wall-clock demonstrations of the sweep executor's two speed levers.

Not pytest-benchmark calibrated runs: each is a single end-to-end Table
4.1 regeneration, timed (the parallel case) or instrumented (the cache
case).  Both assert that the fast path produces *identical* tables, not
merely similar ones.

Run via ``make bench`` or directly::

    PYTHONPATH=src python -m pytest benchmarks/test_sweep_parallel.py -s
"""

import os
import time

import pytest

from repro.experiments import table_4_1
from repro.experiments.cache import ResultCache
from repro.experiments.scale import SCALES
from repro.experiments.sweep import SweepExecutor

SCALE = SCALES["quick"]


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="the 4-worker speedup target needs at least 4 cores",
)
def test_table_4_1_four_workers_beat_serial():
    """Full Table 4.1 with 4 workers: >= 2.5x faster, identical output."""
    serial_started = time.perf_counter()
    serial = table_4_1.run(scale=SCALE, executor=SweepExecutor(jobs=1))
    serial_elapsed = time.perf_counter() - serial_started

    parallel_executor = SweepExecutor(jobs=4)
    parallel_started = time.perf_counter()
    parallel = table_4_1.run(scale=SCALE, executor=parallel_executor)
    parallel_elapsed = time.perf_counter() - parallel_started

    assert parallel_executor.stats.parallel_batches > 0
    assert [panel.render() for panel in parallel] == [
        panel.render() for panel in serial
    ]
    speedup = serial_elapsed / parallel_elapsed
    print(
        f"\ntable 4.1: serial {serial_elapsed:.1f}s, "
        f"4 workers {parallel_elapsed:.1f}s ({speedup:.2f}x)"
    )
    assert speedup >= 2.5


def test_table_4_1_warm_cache_executes_zero_simulations(tmp_path):
    """A warm-cache rerun replays every cell; no simulation executes."""
    cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
    cold_panel = table_4_1.run_panel(10, scale=SCALE, executor=cold)
    assert cold.stats.executed > 0
    assert cold.stats.cache_hits == 0

    warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
    warm_panel = table_4_1.run_panel(10, scale=SCALE, executor=warm)
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == cold.stats.executed
    assert warm_panel.render() == cold_panel.render()

"""Ablation: synchronous vs self-timed arbitration control (§2.1).

The paper evaluates a self-timed bus; real standards of the era were
split (NuBus and Multibus II synchronous, Futurebus asynchronous).
This bench sweeps the control-clock period and measures the cost of
synchronisation: extra waiting at light load (idle dispatches wait for
an edge), nothing at saturation (tenure boundaries are edges already).
"""

from dataclasses import replace

import pytest

from repro.bus.timing import BusTiming
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load


PERIODS = (0.0, 0.125, 0.25, 0.5, 1.0)


@pytest.mark.parametrize("load", [0.5, 2.5])
def test_clock_period_sweep(benchmark, scale, load):
    scenario = equal_load(10, load)
    base = SimulationSettings(
        batches=scale.batches, batch_size=scale.batch_size, warmup=scale.warmup, seed=71
    )
    waits = {}
    for period in PERIODS:
        settings = replace(base, timing=BusTiming(clock_period=period))
        waits[period] = run_simulation(scenario, "rr", settings).mean_waiting().mean

    benchmark.pedantic(
        lambda: run_simulation(
            scenario, "rr", replace(base, timing=BusTiming(clock_period=0.25))
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(f"mean W vs control-clock period (10 agents @ load {load}):")
    for period, wait in waits.items():
        label = "self-timed" if period == 0.0 else f"T = {period:g}"
        print(f"  {label:12s} W = {wait:.3f}  (+{wait - waits[0.0]:.3f})")
    # Synchronisation never helps; its cost shrinks as the bus saturates
    # and grows with the clock period at light load.
    for period in PERIODS[1:]:
        assert waits[period] >= waits[0.0] - 0.02
    if load < 1.0:
        assert waits[1.0] > waits[0.125]
        # Two alignments per idle dispatch (arbitration start + grant
        # edge): ~half a period each, so ~one period at T = 1.
        assert waits[1.0] - waits[0.0] < 1.2
    else:
        assert waits[1.0] - waits[0.0] < 0.25
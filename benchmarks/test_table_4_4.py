"""Benchmark: regenerate Table 4.4 (unequal request rates).

Paper shape: at low load both protocols allocate bandwidth in proportion
to demand (throughput ratio ≈ rate factor); as the bus saturates both
ratios sink toward 1, with FCFS staying closer to the demand ratio than
RR, which evens service out regardless of demand.
"""

import pytest

from repro.experiments import table_4_4

from conftest import render


@pytest.mark.parametrize("factor", [2.0, 4.0])
def test_table_4_4_panel(benchmark, scale, factor):
    panel = benchmark.pedantic(
        lambda: table_4_4.run_panel(factor, scale=scale),
        rounds=1,
        iterations=1,
    )
    render(panel)
    rows = panel.data
    low = rows[0]
    # Proportional sharing while bandwidth is plentiful.
    assert low["ratio_rr"].mean == pytest.approx(factor, rel=0.2)
    assert low["ratio_fcfs"].mean == pytest.approx(factor, rel=0.2)
    # Saturation evens things out...
    heavy = rows[-1]
    assert heavy["ratio_rr"].mean < factor / 1.5
    # ...and FCFS tracks demand at least as closely as RR at high load.
    mids = [row for row in rows if row["total_load"] >= 2.0]
    closer = sum(row["ratio_fcfs"].mean >= row["ratio_rr"].mean - 0.02 for row in mids)
    assert closer >= len(mids) - 1

"""Benchmark: regenerate Figure 4.1 (waiting-time CDFs, RR vs FCFS).

Paper shape: at 30 agents and load 1.5 the two CDFs share a mean, but
the FCFS curve rises sharply near it while the RR curve starts earlier
and finishes later (heavier tail on both sides).
"""

from repro.experiments import figure_4_1

from conftest import render


def test_figure_4_1(benchmark, scale):
    figure = benchmark.pedantic(
        lambda: figure_4_1.run(scale=scale),
        rounds=1,
        iterations=1,
    )
    print()
    print(figure.render())
    # Shared mean (conservation law).
    assert abs(figure.rr_cdf.mean - figure.fcfs_cdf.mean) < 0.07 * figure.rr_cdf.mean
    # RR spreads wider than FCFS.
    assert figure.rr_cdf.std > figure.fcfs_cdf.std
    # FCFS rises more sharply around the mean: more mass within ±1 of it.
    mean = figure.fcfs_cdf.mean
    fcfs_central = figure.fcfs_cdf.evaluate(mean + 1) - figure.fcfs_cdf.evaluate(mean - 1)
    rr_central = figure.rr_cdf.evaluate(mean + 1) - figure.rr_cdf.evaluate(mean - 1)
    assert fcfs_central > rr_central
    # RR's early risers: below the mean the RR CDF is ahead.
    assert figure.rr_cdf.evaluate(mean - 2) >= figure.fcfs_cdf.evaluate(mean - 2)

"""Ablation: robustness of static vs rotating arbitration numbers (§3.1).

The paper claims its static-identity RR protocol "is more robust ...
than previous distributed RR protocols that are based on rotating agent
priorities".  This bench injects winner-broadcast faults at increasing
rates into both designs and measures how far each run gets: the static
design completes every workload and merely wobbles its service order;
the rotating design dies (duplicate arbitration numbers on the lines)
with probability approaching 1 as the fault rate grows.
"""

import random

import pytest

from repro.baselines.rotating import RotatingPriorityRR
from repro.errors import ArbitrationError
from repro.faults import FaultyWinnerRegisterRR


ROUNDS = 400
TRIALS = 20


def _run_with_faults(arbiter, fault_rate, seed, rounds=ROUNDS):
    """Greedy saturated workload with random broadcast drops.

    Returns the number of grants completed (== rounds if it survived).
    """
    rng = random.Random(seed)
    n = arbiter.num_agents
    for agent in range(1, n + 1):
        arbiter.request(agent, 0.0)
    completed = 0
    for __ in range(rounds):
        if rng.random() < fault_rate:
            arbiter.drop_winner_observations(rng.randint(1, n))
        try:
            winner = arbiter.start_arbitration(0.0).winner
        except ArbitrationError:
            break
        arbiter.grant(winner, 0.0)
        arbiter.request(winner, 0.0)
        completed += 1
    return completed


@pytest.mark.parametrize("fault_rate", [0.01, 0.05, 0.2])
def test_static_survives_rotating_dies(benchmark, fault_rate):
    static_completed = []
    rotating_completed = []
    for seed in range(TRIALS):
        static_completed.append(
            _run_with_faults(FaultyWinnerRegisterRR(8), fault_rate, seed)
        )
        rotating_completed.append(
            _run_with_faults(RotatingPriorityRR(8), fault_rate, seed)
        )

    benchmark.pedantic(
        lambda: _run_with_faults(FaultyWinnerRegisterRR(8), fault_rate, 0),
        rounds=1,
        iterations=1,
    )

    static_survival = sum(c == ROUNDS for c in static_completed) / TRIALS
    rotating_survival = sum(c == ROUNDS for c in rotating_completed) / TRIALS
    mean_rotating = sum(rotating_completed) / TRIALS
    print()
    print(
        f"fault rate {fault_rate:.2f}: static survival {static_survival:.0%}, "
        f"rotating survival {rotating_survival:.0%} "
        f"(mean grants before failure {mean_rotating:.0f}/{ROUNDS})"
    )
    # The paper's robustness claim, quantified.
    assert static_survival == 1.0
    assert rotating_survival < static_survival
    if fault_rate >= 0.05:
        assert rotating_survival <= 0.2

"""Methodology validation: do the batch-means CIs actually cover?

The paper reports 90% confidence intervals from 10 batches; the whole
evaluation rests on those intervals being honest.  This bench runs many
independent replications of one operating point, takes the grand mean
across all of them as the ground truth, and counts how often each
replication's 90% interval covers it.  Coverage should land near 90%
(batch-means intervals are slightly optimistic when batches correlate;
far below ~75% would mean the batch size is too small to decorrelate).
"""

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load


REPLICATIONS = 24


def test_batch_means_ci_coverage(benchmark, scale):
    scenario = equal_load(10, 1.5)
    estimates = []
    for seed in range(REPLICATIONS):
        settings = SimulationSettings(
            batches=scale.batches,
            batch_size=scale.batch_size,
            warmup=scale.warmup,
            seed=1000 + seed,
        )
        estimates.append(run_simulation(scenario, "fcfs", settings).mean_waiting())

    benchmark.pedantic(
        lambda: run_simulation(
            scenario,
            "fcfs",
            SimulationSettings(
                batches=scale.batches,
                batch_size=scale.batch_size,
                warmup=scale.warmup,
                seed=1,
            ),
        ),
        rounds=1,
        iterations=1,
    )

    truth = sum(estimate.mean for estimate in estimates) / len(estimates)
    covered = sum(estimate.covers(truth) for estimate in estimates)
    coverage = covered / len(estimates)
    relative_spread = max(
        abs(estimate.mean - truth) / truth for estimate in estimates
    )
    print()
    print(
        f"90% CI coverage over {REPLICATIONS} replications: {coverage:.0%} "
        f"({covered}/{REPLICATIONS}); worst replication off truth by "
        f"{relative_spread:.1%}"
    )
    # Honest-but-not-exact: batch means at moderate batch sizes.
    assert coverage >= 0.70
    # And the paper's "generally within 5% of the reported measures".
    assert relative_spread < 0.05
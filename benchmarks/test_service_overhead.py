"""Service-layer overhead gate: the cached-hit path must stay cheap.

The arbitration service fronts the same planner/cache machinery a
:class:`~repro.session.session.Session` uses directly, adding a job
object, an admission queue, a dispatcher-thread handoff and telemetry
events per *gather*.  None of that may grow a per-cell cost: a client
replaying a warmed grid through the service should pay the same
48 cache reads a direct session pays, plus a fixed sub-millisecond
handoff.  This bench drives the warmed peak-contention grid twice —
a direct cacheful session gather, and the same requests submitted
through a running :class:`~repro.service.service.ArbitrationService`
(serial back end; the pool is idle on a pure-hit pass) — and gates the
service's overhead with the interleaved min-of-k discipline the other
gates use.

The gate is deliberately wider than the session gate's 2%: the base
pass is ~5ms of cache reads, so the fixed handoff (two thread wakeups,
a queue append, a handful of telemetry events) is a visible fraction
of it.  What the gate must catch is the overhead *scaling with cells*
— an accidental serialization, re-hash or per-cell event on the hit
path shows up as hundreds of percent, far above the bar.

Two pytest-benchmark entries record the pair in ``BENCH_engine.json``,
adjacent in this file so the medians share machine state;
``scripts/run_benchmarks.py`` condenses them into a
``service_overhead`` ratio that ``scripts/check_bench.py`` gates.
"""

import pickle
import time

import pytest
from test_grid_batch import grid_cells

from repro.experiments.cache import ResultCache
from repro.service import ArbitrationService, ServiceConfig
from repro.session import RunRequest, Session

#: The gate: serving the warmed grid through the service may cost at
#: most this fraction over the direct session gather, min-of-k.
OVERHEAD_GATE = 0.50


def _requests(cells):
    return [RunRequest(scenario, protocol, settings) for scenario, protocol, settings in cells]


@pytest.fixture(scope="module")
def warmed(tmp_path_factory):
    """A cache directory holding every grid cell, plus the requests."""
    directory = tmp_path_factory.mktemp("service-bench-cache")
    requests = _requests(grid_cells())
    Session(cache=ResultCache(directory), jobs=1).run_requests(requests)
    return directory, requests


@pytest.fixture(scope="module")
def service(warmed):
    """One running service over the warmed cache, shared by the module."""
    directory, __ = warmed
    instance = ArbitrationService(
        cache=ResultCache(directory),
        config=ServiceConfig(serial=True, poll_interval=0.02),
    )
    instance.start()
    yield instance
    instance.close()


def _direct_pass(session, requests):
    start = time.perf_counter()
    outcomes = session.run_requests(requests)
    return time.perf_counter() - start, outcomes


def _service_pass(instance, requests):
    start = time.perf_counter()
    outcomes = instance.run_requests(requests)
    return time.perf_counter() - start, outcomes


def test_service_serves_the_grid_from_cache(warmed, service):
    """Every cell must route to the cache — the bench times the hit
    path, not an accidental re-execution."""
    __, requests = warmed
    outcomes = service.run_requests(requests)
    assert [outcome.route for outcome in outcomes] == ["cache"] * len(requests)


def test_service_results_match_direct_session(warmed, service):
    directory, requests = warmed
    direct = Session(cache=ResultCache(directory), jobs=1).run_requests(requests)
    routed = service.run_requests(requests)
    for ours, theirs in zip(routed, direct):
        assert pickle.dumps(ours.result) == pickle.dumps(theirs.result)


def test_service_overhead_gate(warmed, service):
    """Service-routed cached pass within 50% of the direct gather.

    Interleaved rounds with a min-of-k comparison: the minimum of each
    series strips scheduler noise, so the ratio isolates the job-layer
    handoff.  A per-cell cost on the hit path would blow far past the
    bar; the fixed handoff sits well under it.
    """
    directory, requests = warmed
    session = Session(cache=ResultCache(directory), jobs=1)
    _service_pass(service, requests)  # warm allocator / dispatcher path
    service_times, direct_times = [], []
    for __ in range(5):
        direct_time, __outcomes = _direct_pass(session, requests)
        service_time, __outcomes = _service_pass(service, requests)
        direct_times.append(direct_time)
        service_times.append(service_time)
    overhead = min(service_times) / min(direct_times) - 1.0
    print(f"\nservice overhead on the cached grid: {overhead:+.2%} (gate < {OVERHEAD_GATE:.0%})")
    assert overhead < OVERHEAD_GATE


def test_grid_pass_cached_session(benchmark, warmed):
    """Recorded median of the direct cached gather, as the pair baseline.

    Runs immediately before ``test_grid_pass_cached_service`` so the
    two medians share machine state; their ratio is the recorded
    ``service_overhead``.
    """
    directory, requests = warmed
    session = Session(cache=ResultCache(directory), jobs=1)
    outcomes = benchmark.pedantic(
        lambda: session.run_requests(requests), rounds=5, iterations=1
    )
    assert [outcome.route for outcome in outcomes] == ["cache"] * len(requests)


def test_grid_pass_cached_service(benchmark, warmed, service):
    """Recorded median of the service-routed cached gather.

    Paired with ``test_grid_pass_cached_session`` this yields the
    ``service_overhead`` ratio ``scripts/check_bench.py`` gates.
    """
    __, requests = warmed
    outcomes = benchmark.pedantic(
        lambda: service.run_requests(requests), rounds=5, iterations=1
    )
    assert [outcome.route for outcome in outcomes] == ["cache"] * len(requests)

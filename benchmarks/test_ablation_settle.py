"""Ablation: arbitration-line variants (DESIGN.md §7).

Quantifies the §2.1/§3 line-cost trade-offs the paper discusses in
prose: settle rounds of the full wired-OR process vs Johnson's
binary-patterned lines, and the identity-width cost of the FCFS
protocol's composite numbers (its "main difference ... due to the larger
identities").
"""

import random

from repro.core.base import identity_bits
from repro.core.fcfs import DistributedFCFS
from repro.core.round_robin import DistributedRoundRobin
from repro.signals.binary_patterned import BinaryPatternedArbitration
from repro.signals.contention import ParallelContention


def _contenders(width, count, seed):
    rng = random.Random(seed)
    return rng.sample(range(1, 2**width), count)


def test_settle_rounds_grow_with_width(benchmark):
    """Mean settle rounds per contention, swept over identity width."""
    results = {}
    for width in (4, 6, 8, 10, 13):
        contention = ParallelContention(width)
        total = 0
        trials = 200
        for seed in range(trials):
            identities = _contenders(width, min(12, 2**width - 1), seed)
            total += contention.resolve(identities).rounds
        results[width] = total / trials

    def run_widest():
        contention = ParallelContention(13)
        identities = _contenders(13, 12, 0)
        return contention.resolve(identities).rounds

    benchmark(run_widest)
    print()
    print("mean settle rounds by identity width (12 competitors):")
    for width, rounds in results.items():
        print(f"  width {width:2d}: {rounds:5.2f} rounds")
    # Rounds stay within the k-bound and grow with the width.
    assert all(rounds <= width + 1 for width, rounds in results.items())
    assert results[13] > results[4]


def test_async_settle_vs_taub_bound(benchmark):
    """Placement-aware settle times against Taub's k/2 worst case.

    Sweeps random physical placements of identities along the bus and
    reports the distribution of line-activity times, in end-to-end
    propagation units, next to the k/2 bound.
    """
    import random as random_module

    from repro.signals.async_settle import AsyncContention

    rng = random_module.Random(9)
    width = 7
    contention = AsyncContention(width)
    samples = []
    for __ in range(150):
        identities = rng.sample(range(1, 2**width), 10)
        placements = [(rng.random(), identity) for identity in identities]
        samples.append(contention.resolve(placements).last_change_time)

    benchmark(
        lambda: contention.resolve(
            [(rng.random(), identity) for identity in rng.sample(range(1, 128), 10)]
        )
    )
    samples.sort()
    mean = sum(samples) / len(samples)
    print()
    print(
        f"async settle, width {width}, 10 competitors, random placement: "
        f"mean {mean:.3f}, p95 {samples[int(0.95 * len(samples))]:.3f}, "
        f"max {samples[-1]:.3f} end-to-end delays (Taub bound k/2 = {width / 2})"
    )
    assert samples[-1] <= width / 2 + 0.5
    assert mean < width / 2


def test_binary_patterned_settles_in_one_round(benchmark):
    identities = _contenders(7, 20, 3)
    arbiter = BinaryPatternedArbitration(7)
    outcome = benchmark(lambda: arbiter.resolve(identities))
    assert outcome.rounds == 1


def test_max_finder_cost_in_full_simulation(benchmark):
    """DirectMaxFinder vs the full wired-OR settle, end to end.

    Runs the same bus simulation with the fast `max()` resolution and
    with every arbitration resolved through the settle process,
    checking behavioural identity and reporting the slowdown — the cost
    of honesty, and why `DirectMaxFinder` is the default.
    """
    import time as time_module

    from repro.bus.model import BusSystem
    from repro.core.base import WiredOrMaxFinder
    from repro.stats.collector import CompletionCollector
    from repro.workload.scenarios import equal_load

    scenario = equal_load(10, 2.0)

    def run(max_finder=None):
        arbiter = DistributedRoundRobin(10, max_finder=max_finder)
        collector = CompletionCollector(
            batches=2, batch_size=1000, warmup=0, keep_order=True
        )
        BusSystem(scenario, arbiter, collector, seed=44).run()
        return collector.completion_order

    started = time_module.perf_counter()
    fast_order = run()
    fast_elapsed = time_module.perf_counter() - started

    width = DistributedRoundRobin(10).identity_width
    started = time_module.perf_counter()
    slow_order = run(WiredOrMaxFinder(width=width))
    slow_elapsed = time_module.perf_counter() - started

    benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"2000-grant simulation: direct max {fast_elapsed * 1e3:.0f} ms, "
        f"wired-OR settle {slow_elapsed * 1e3:.0f} ms "
        f"({slow_elapsed / fast_elapsed:.1f}x)"
    )
    assert fast_order == slow_order  # behaviourally identical


def test_identity_width_cost_by_protocol(benchmark):
    """The line-count table of §3: what each protocol puts on the bus."""
    benchmark.pedantic(
        lambda: DistributedFCFS(30, strategy=2).identity_width, rounds=1, iterations=1
    )
    print()
    print("identity width and extra lines by protocol (N = 30, k = 5):")
    rows = [
        ("fixed priority", identity_bits(30), 0),
        ("rr impl 1", DistributedRoundRobin(30, implementation=1).identity_width,
         DistributedRoundRobin(30, implementation=1).extra_lines),
        ("rr impl 3", DistributedRoundRobin(30, implementation=3).identity_width,
         DistributedRoundRobin(30, implementation=3).extra_lines),
        ("fcfs strategy 1", DistributedFCFS(30, strategy=1).identity_width,
         DistributedFCFS(30, strategy=1).extra_lines),
        ("fcfs strategy 2", DistributedFCFS(30, strategy=2).identity_width,
         DistributedFCFS(30, strategy=2).extra_lines),
        ("fcfs r=8", DistributedFCFS(30, max_outstanding=8).identity_width,
         DistributedFCFS(30, max_outstanding=8).extra_lines),
    ]
    for name, width, extra in rows:
        print(f"  {name:18s} identity {width:2d} bits, {extra} extra control lines")
    # §3.2: FCFS at most doubles the identity size (plus the priority bit).
    k = identity_bits(30)
    assert DistributedFCFS(30).identity_width <= 2 * k + 1
    # §3.2: r = 8 adds exactly ceil(log2 8) = 3 bits.
    assert (
        DistributedFCFS(30, max_outstanding=8).identity_width
        == DistributedFCFS(30).identity_width + 3
    )

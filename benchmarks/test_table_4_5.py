"""Benchmark: regenerate Table 4.5 (worst-case bus allocation for RR).

Paper shape: at CV = 0 the slow agent phase-locks into "just missing"
its round-robin turn and its throughput ratio collapses to ~0.50; any
inter-request variability (CV ≥ 0.25) restores the ratio to roughly the
offered-load ratio.  FCFS (our added reference column) never collapses.
"""

import pytest

from repro.experiments import table_4_5

from conftest import render


@pytest.mark.parametrize("num_agents", [10, 30, 64])
def test_table_4_5_panel(benchmark, scale, num_agents):
    panel = benchmark.pedantic(
        lambda: table_4_5.run_panel(num_agents, scale=scale),
        rounds=1,
        iterations=1,
    )
    render(panel)
    by_cv = {row["cv"]: row for row in panel.data}
    # The CV = 0 collapse to one service per two rounds.
    assert by_cv[0.0]["ratio_rr"].mean == pytest.approx(0.5, abs=0.06)
    # FCFS does not suffer the pathology at CV = 0.
    assert by_cv[0.0]["ratio_fcfs"].mean > by_cv[0.0]["ratio_rr"].mean + 0.1
    # A little variability restores near-load-proportional service.
    for cv in (0.25, 0.33, 0.5, 1.0):
        assert by_cv[cv]["ratio_rr"].mean > 0.6

"""Ablation: sensitivity to inter-request time variability.

§4.3 observes that "the waiting time standard deviations decrease, and
become closer in value, as the CV of the interrequest times is
reduced."  This bench sweeps CV through the paper's range and beyond it
(CV > 1 via the hyperexponential extension) and tracks the σ_RR/σ_FCFS
ratio, verifying the paper's observation and extending the curve into
burstier-than-Poisson territory.
"""

import pytest

from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load


CVS = (0.25, 0.5, 1.0, 2.0)


def test_variance_gap_grows_with_cv(benchmark, scale):
    settings = SimulationSettings(
        batches=scale.batches, batch_size=scale.batch_size, warmup=scale.warmup, seed=61
    )
    ratios = {}
    stds = {}
    for cv in CVS:
        scenario = equal_load(10, 1.5, cv=cv)
        rr = run_simulation(scenario, "rr", settings)
        fcfs = run_simulation(scenario, "fcfs", settings)
        stds[cv] = (rr.std_waiting().mean, fcfs.std_waiting().mean)
        ratios[cv] = stds[cv][0] / stds[cv][1]

    benchmark.pedantic(
        lambda: run_simulation(equal_load(10, 1.5, cv=2.0), "rr", settings),
        rounds=1,
        iterations=1,
    )
    print()
    print("waiting-time std dev vs inter-request CV (10 agents @ load 1.5):")
    print(f"{'CV':>6s} {'σ RR':>8s} {'σ FCFS':>8s} {'ratio':>7s}")
    for cv in CVS:
        print(f"{cv:6.2f} {stds[cv][0]:8.3f} {stds[cv][1]:8.3f} {ratios[cv]:7.3f}")
    # §4.3's observation: the σ values shrink as CV drops (the paper's
    # "waiting time standard deviations decrease ... as the CV of the
    # interrequest times is reduced").  Note the *ratio* σ_RR/σ_FCFS
    # does not shrink at this load — FCFS regularises faster than RR as
    # arrivals become deterministic — which is worth knowing when
    # reading the paper's remark: it is about the absolute waits that
    # feed the overlap experiment, not the ratio.
    for protocol_index in (0, 1):
        assert stds[0.25][protocol_index] < stds[1.0][protocol_index]
        assert stds[0.5][protocol_index] < stds[1.0][protocol_index]
    # Extension: burstier-than-Poisson arrivals widen both σ values.
    assert stds[2.0][0] > stds[1.0][0]
    assert stds[2.0][1] > stds[1.0][1]
    # RR never beats FCFS on variance, at any CV.
    assert all(ratio >= 0.97 for ratio in ratios.values())

"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures and
*prints* it, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction harness.  Fidelity follows ``REPRO_SCALE`` (quick by
default; set ``REPRO_SCALE=paper`` for the full §4.1 run lengths).

Table-regeneration benchmarks run ``benchmark.pedantic(..., rounds=1)``:
the interesting number is the one-shot wall-clock of a full experiment,
not a statistical micro-timing.  The engine micro-benchmarks use the
normal calibrated mode.
"""

import pytest

from repro.experiments.scale import current_scale


@pytest.fixture(scope="session")
def scale():
    """The active run-length scale for all benchmarks."""
    return current_scale()


def render(tables):
    """Print one table or a tuple of tables to the benchmark log."""
    if not isinstance(tables, (tuple, list)):
        tables = (tables,)
    print()
    for table in tables:
        print(table.render() if hasattr(table, "render") else table)
        print()

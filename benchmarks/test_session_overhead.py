"""Session-layer overhead gate: orchestration must be nearly free.

The session refactor routed every entry point through
``plan_runs`` → ``execute_plan`` (request resolution, cache-key
hashing when a cache is configured, route classification, outcome
assembly).  That machinery runs once per cell, so its cost is most
visible where cells are cheapest relative to their count: the same
peak-contention grid the lane-engine speedup gate times.  This bench
drives that grid twice — straight into :func:`repro.engine.batch.
run_lanes` (the raw engine, no orchestration) and through a cacheless
:class:`repro.session.session.Session` gather (plan, lane-pack,
outcomes) — and gates the session's overhead at < 2% with the same
interleaved min-of-k discipline as the speedup gates.

Two pytest-benchmark entries record the pair in ``BENCH_engine.json``:
a raw lane-engine pass and the session-routed pass, *adjacent in this
file* so they run back-to-back and the recorded medians see the same
machine state (the grid entries in ``test_grid_batch.py`` are minutes
away in a full bench run — a ratio across that gap measures thermal
drift, not orchestration).  ``scripts/run_benchmarks.py`` condenses
the pair into a ``session_overhead`` ratio that
``scripts/check_bench.py`` gates alongside the grid speedup.
"""

import time

from test_grid_batch import grid_cells

from repro.engine.batch import run_lanes
from repro.session import RunRequest, Session

#: The gate: session orchestration may cost at most this fraction of
#: the raw engine pass, measured min-of-k on the interleaved grid.
OVERHEAD_GATE = 0.02


def _requests(cells):
    return [RunRequest(scenario, protocol, settings) for scenario, protocol, settings in cells]


def _session_pass(cells):
    session = Session(jobs=1)
    requests = _requests(cells)
    start = time.perf_counter()
    outcomes = session.run_requests(requests)
    return time.perf_counter() - start, [outcome.result for outcome in outcomes]


def _engine_pass(cells):
    start = time.perf_counter()
    results = run_lanes(cells)
    return time.perf_counter() - start, results


def test_session_routes_the_grid_through_lanes():
    """The whole grid must plan onto the lane route — the bench times
    orchestration, not an accidental per-cell fallback."""
    cells = grid_cells()
    session = Session(jobs=1)
    outcomes = session.run_requests(_requests(cells))
    assert [outcome.route for outcome in outcomes] == ["lanes"] * len(cells)
    assert session.stats.batch_replications == len(cells)


def test_session_grid_results_match_raw_engine():
    cells = grid_cells()
    _, routed = _session_pass(cells)
    _, raw = _engine_pass(cells)
    for ours, theirs in zip(routed, raw):
        assert ours.collector.agent_totals == theirs.collector.agent_totals


def test_session_overhead_gate():
    """Session-routed grid pass within 2% of the raw engine pass.

    Interleaved rounds with a min-of-k comparison, the discipline the
    speedup gates use: the minimum of each series estimates the true
    cost with shared-runner noise stripped, so the ratio isolates the
    orchestration layer itself.
    """
    cells = grid_cells()
    _session_pass(cells)  # warm allocator / code caches
    session_times, engine_times = [], []
    for _ in range(5):
        engine_time, _ = _engine_pass(cells)
        session_time, _ = _session_pass(cells)
        engine_times.append(engine_time)
        session_times.append(session_time)
    overhead = min(session_times) / min(engine_times) - 1.0
    print(f"\nsession overhead on the grid: {overhead:+.2%} (gate < {OVERHEAD_GATE:.0%})")
    assert overhead < OVERHEAD_GATE


def test_grid_pass_lanes_paired(benchmark):
    """Recorded median of a raw lane-engine pass, as the pair baseline.

    Runs immediately before ``test_grid_pass_session_routed`` so the
    two medians share machine state; their ratio is the recorded
    ``session_overhead``.
    """
    cells = grid_cells()
    results = benchmark.pedantic(
        lambda: _engine_pass(cells)[1], rounds=5, iterations=1
    )
    assert len(results) == len(cells)
    assert all(r.collector.total_recorded == 1050 for r in results)


def test_grid_pass_session_routed(benchmark):
    """Recorded median of the session-routed grid pass.

    Paired with ``test_grid_pass_lanes_paired`` this yields the
    ``session_overhead`` ratio ``scripts/check_bench.py`` gates.
    """
    cells = grid_cells()
    results = benchmark.pedantic(
        lambda: _session_pass(cells)[1], rounds=5, iterations=1
    )
    assert len(results) == len(cells)
    assert all(r.collector.total_recorded == 1050 for r in results)

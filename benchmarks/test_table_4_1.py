"""Benchmark: regenerate Table 4.1 (bandwidth allocation, equal rates).

Paper shape being reproduced: the RR ratio is statistically 1.0 at every
load; the FCFS (strategy 1) ratio peaks around 1.06–1.09 near bus
saturation and decays again at extreme load; the assured-access baseline
(30-agent panel) climbs toward 2.0.
"""

import pytest

from repro.experiments import table_4_1

from conftest import render


@pytest.mark.parametrize("num_agents", [10, 30, 64])
def test_table_4_1_panel(benchmark, scale, num_agents):
    panel = benchmark.pedantic(
        lambda: table_4_1.run_panel(
            num_agents, scale=scale, include_aap=(num_agents == 30)
        ),
        rounds=1,
        iterations=1,
    )
    render(panel)
    for row in panel.data:
        # RR is perfectly fair at every load.  At low load the per-batch
        # agent counts are small, so judge against the CI width too.
        rr = row["ratio_rr"]
        assert abs(rr.mean - 1.0) < max(0.12, 2.5 * rr.halfwidth)
        # FCFS strategy 1 is nearly fair (≤ ~15% even at reduced scale).
        fcfs = row["ratio_fcfs"]
        assert abs(fcfs.mean - 1.0) < max(0.2, 2.5 * fcfs.halfwidth)
    if num_agents == 30:
        heavy = [row for row in panel.data if row["load"] >= 5.0]
        assert all(row["ratio_aap1"].mean > 1.5 for row in heavy)

"""Micro-benchmarks of the simulation substrate itself.

Calibrated pytest-benchmark timings (unlike the one-shot table
regenerations): event-calendar throughput, the wired-OR settle process,
and a full small bus simulation.  Useful for catching performance
regressions in the engine.
"""

import random
import time

from repro.engine.simulator import Simulator
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.observability.events import TelemetrySettings
from repro.signals.contention import ParallelContention
from repro.workload.scenarios import equal_load


def test_event_calendar_throughput(benchmark):
    """Schedule-and-fire cost of 10k chained events."""

    def run_events():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_executed

    events = benchmark(run_events)
    assert events == 10_000


def test_wired_or_settle(benchmark):
    """Full settle process over 32 competitors on 7 lines."""
    rng = random.Random(5)
    identities = rng.sample(range(1, 128), 32)
    contention = ParallelContention(7)

    result = benchmark(lambda: contention.resolve(identities))
    assert result.winner_identity == max(identities)


def test_small_bus_simulation(benchmark):
    """2000-completion RR simulation, 10 agents at saturation.

    Pinned to the event engine: this entry tracks the event calendar's
    end-to-end cost (the batch engine's grid cost has its own entries
    in ``test_grid_batch.py``), and the pin keeps the baseline
    comparable across the default-engine flip.
    """
    scenario = equal_load(10, 2.0)
    settings = SimulationSettings(
        batches=2, batch_size=1000, warmup=0, seed=8, engine="event"
    )

    result = benchmark.pedantic(
        lambda: run_simulation(scenario, "rr", settings), rounds=3, iterations=1
    )
    assert result.system_throughput().mean > 0.9


def test_bus_simulation_with_event_telemetry(benchmark):
    """Same run with the full event stream + metrics retained.

    Not an acceptance gate — this pins the *enabled* cost so the
    emission path never silently becomes the bottleneck.
    """
    scenario = equal_load(10, 2.0)
    settings = SimulationSettings(
        batches=2,
        batch_size=1000,
        warmup=0,
        seed=8,
        engine="event",
        telemetry=TelemetrySettings(events=True, metrics=True),
    )

    result = benchmark.pedantic(
        lambda: run_simulation(scenario, "rr", settings), rounds=3, iterations=1
    )
    assert result.events
    assert result.metrics is not None


def test_batch_replication_r32(benchmark):
    """32 lockstep replications of the small-bus cell on the batch engine.

    The replication-throughput counterpart of
    :func:`test_small_bus_simulation`: same cell, 32 seeds, one lockstep
    pass.  Its median belongs in ``BENCH_engine.json`` so the bench
    guard catches a regression in the batch engine's hot loop, not just
    the event calendar's.
    """
    from repro.engine.batch import run_replications

    scenario = equal_load(10, 2.0)
    settings = SimulationSettings(batches=2, batch_size=1000, warmup=0)
    seeds = list(range(1, 33))

    results = benchmark.pedantic(
        lambda: run_replications(scenario, "rr", settings, seeds),
        rounds=3,
        iterations=1,
    )
    assert len(results) == 32
    assert results[0].system_throughput().mean > 0.9


def test_batch_engine_speedup_gate_at_r32():
    """The batch engine's acceptance bar: ≥ 3× at 32 replications.

    The lockstep engine's reason to exist is replication throughput, so
    the gate measures exactly that: 32 seeds of the small-bus cell, one
    ``run_replications`` pass against 32 independent event-engine runs.
    Interleaved rounds with a min-of-k comparison (the same discipline
    as the telemetry-overhead gate above) keep shared-runner drift from
    flaking it; the engine measures ≈ 9-10× locally, so the 3× bar has
    real headroom.  (The grid-wide ≥ 10× bar lives in
    ``test_grid_batch.py``, where interleaving and min-of-k give it the
    same protection.)  The ratio is printed (run with ``-s``) for the
    docs' performance table.
    """
    from repro.engine.batch import run_replications

    scenario = equal_load(10, 2.0)
    settings = SimulationSettings(batches=2, batch_size=1000, warmup=0)
    seeds = list(range(1, 33))

    def event_pass():
        from dataclasses import replace

        start = time.perf_counter()
        for seed in seeds:
            # The pin matters: run_simulation now defaults to the batch
            # engine in-domain, and the gate must time the event engine.
            run_simulation(scenario, "rr", replace(settings, seed=seed, engine="event"))
        return time.perf_counter() - start

    def batch_pass():
        start = time.perf_counter()
        run_replications(scenario, "rr", settings, seeds)
        return time.perf_counter() - start

    batch_pass()  # warm allocator / code caches
    event_times, batch_times = [], []
    for _ in range(3):
        event_times.append(event_pass())
        batch_times.append(batch_pass())
    speedup = min(event_times) / min(batch_times)
    print(f"\nbatch-engine speedup at R=32: {speedup:.2f}x (gate >= 3.0)")
    assert speedup >= 3.0


def test_disabled_telemetry_overhead_is_negligible():
    """The observability acceptance bar: sinks off must cost ≈ nothing.

    With ``telemetry=None`` the bus pays one truthiness check of an
    empty tuple per arbitration.  That check cannot be isolated from
    the engine it lives in, so this measures the stricter quantity
    that bounds it from above: a run with a live :class:`NullSink`
    (full event construction + emission) against the disabled run.
    The disabled-path overhead is strictly below whatever this ratio
    shows.  The target for the *disabled* path is ≤ 3%; the enabled
    bound typically measures ≈ 1.12–1.23 and the assertion allows 1.5
    so CI jitter on shared runners cannot flake the suite while still
    catching a pathological emission path.  The measured ratio is
    printed (run with ``-s``) for the docs' overhead table.
    """
    from repro.bus.model import BusSystem
    from repro.observability.sinks import NullSink
    from repro.protocols.registry import make_arbiter
    from repro.stats.collector import CompletionCollector

    scenario = equal_load(10, 2.0)

    def one_run(sink):
        collector = CompletionCollector(batches=2, batch_size=1000, warmup=0)
        system = BusSystem(
            scenario,
            make_arbiter("rr", scenario.num_agents),
            collector,
            seed=8,
            sink=sink,
        )
        start = time.perf_counter()
        system.run()
        return time.perf_counter() - start

    one_run(None)  # warm allocator / code caches
    disabled, enabled = [], []
    # Interleave the two configurations so machine drift hits both;
    # compare minima — the least-interfered-with sample of each — so a
    # background load spike on a shared runner cannot flake the gate.
    for _ in range(7):
        disabled.append(one_run(None))
        enabled.append(one_run(NullSink()))
    ratio = min(enabled) / min(disabled)
    print(f"\nnull-sink-enabled / disabled ratio: {ratio:.4f} "
          "(disabled-path target <= 1.03, bounded above by this)")
    assert ratio <= 1.5


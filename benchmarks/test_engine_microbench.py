"""Micro-benchmarks of the simulation substrate itself.

Calibrated pytest-benchmark timings (unlike the one-shot table
regenerations): event-calendar throughput, the wired-OR settle process,
and a full small bus simulation.  Useful for catching performance
regressions in the engine.
"""

import random

from repro.engine.simulator import Simulator
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.signals.contention import ParallelContention
from repro.workload.scenarios import equal_load


def test_event_calendar_throughput(benchmark):
    """Schedule-and-fire cost of 10k chained events."""

    def run_events():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return sim.events_executed

    events = benchmark(run_events)
    assert events == 10_000


def test_wired_or_settle(benchmark):
    """Full settle process over 32 competitors on 7 lines."""
    rng = random.Random(5)
    identities = rng.sample(range(1, 128), 32)
    contention = ParallelContention(7)

    result = benchmark(lambda: contention.resolve(identities))
    assert result.winner_identity == max(identities)


def test_small_bus_simulation(benchmark):
    """2000-completion RR simulation, 10 agents at saturation."""
    scenario = equal_load(10, 2.0)
    settings = SimulationSettings(batches=2, batch_size=1000, warmup=0, seed=8)

    result = benchmark.pedantic(
        lambda: run_simulation(scenario, "rr", settings), rounds=3, iterations=1
    )
    assert result.system_throughput().mean > 0.9

"""Ablation: trace-driven workloads (the [EgGi87] angle).

The paper's fairness results were corroborated by a trace simulation
study; real program traces are bursty and phase-correlated in ways the
renewal (mean/CV) workloads are not.  This bench drives the arbiter
comparison with synthetic program traces (see
:mod:`repro.workload.traces`) and checks the paper's conclusions
survive: RR and FCFS stay fair, the assured-access baseline stays
unfair, and the conservation law still holds.
"""

import pytest

from repro.bus.model import BusSystem
from repro.experiments.runner import make_arbiter
from repro.stats.collector import CompletionCollector
from repro.stats.summary import RunResult
from repro.workload.scenarios import AgentSpec, ScenarioSpec
from repro.workload.traces import TraceDistribution, synthesize_program_trace


def _trace_scenario(num_agents=12, seed=7):
    trace = synthesize_program_trace(
        4000, seed=seed, compute_mean=16.0, communicate_mean=1.0
    )
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=TraceDistribution(trace, offset=i * 311),
        )
        for i in range(1, num_agents + 1)
    )
    return ScenarioSpec(
        name=f"program-trace-n{num_agents}",
        agents=agents,
        notes="synthetic compute/communicate phase trace, one offset per agent",
    )


def _run(protocol, scale, seed=97):
    scenario = _trace_scenario()
    collector = CompletionCollector(
        batches=scale.batches, batch_size=scale.batch_size, warmup=scale.warmup
    )
    system = BusSystem(
        scenario, make_arbiter(protocol, scenario.num_agents), collector, seed=seed
    )
    system.run()
    return RunResult(
        scenario, protocol, collector, system.utilization(), system.simulator.now, seed
    )


def test_fairness_survives_bursty_traces(benchmark, scale):
    results = {
        name: _run(name, scale) for name in ("rr", "fcfs", "aap1")
    }
    benchmark.pedantic(lambda: _run("rr", scale), rounds=1, iterations=1)
    print()
    print("trace-driven workload (12 agents, phase-correlated arrivals):")
    for name, result in results.items():
        ratio = result.extreme_throughput_ratio()
        print(
            f"  {name:6s} fairness t_12/t_1 {ratio.mean:.3f} ± {ratio.halfwidth:.3f}, "
            f"mean W {result.mean_waiting().mean:.2f}"
        )
    # The paper's conclusions under realistic traffic:
    rr_ratio = results["rr"].extreme_throughput_ratio()
    fcfs_ratio = results["fcfs"].extreme_throughput_ratio()
    aap_ratio = results["aap1"].extreme_throughput_ratio()
    assert abs(rr_ratio.mean - 1.0) < max(0.1, 3 * rr_ratio.halfwidth)
    assert abs(fcfs_ratio.mean - 1.0) < max(0.15, 3 * fcfs_ratio.halfwidth)
    assert abs(aap_ratio.mean - 1.0) > abs(rr_ratio.mean - 1.0)
    # Conservation law is distribution-free: it must hold here too.
    assert results["rr"].mean_waiting().mean == pytest.approx(
        results["fcfs"].mean_waiting().mean, rel=0.06
    )

"""Full-grid end-to-end benchmark of the heterogeneous lane engine.

One ``run_lanes`` pass over a whole experiment grid — every protocol
family, eight seeds each — against the same grid run cell-by-cell on the
event engine.  This is the workload the lane engine exists for (the
sweep executor packs exactly this kind of grid), so its speedup gate is
the end-to-end acceptance bar, complementing the single-cell
replication gate in ``test_engine_microbench.py``.

The grid sits at the paper's peak-contention corner (§4.1): four agents
at per-agent offered load 1.0, CV = 1, matching the golden traces' bus
width.  Saturation maximises arbitrations per unit of simulated time,
which is the honest place to measure an arbitration engine.

Two pytest-benchmark entries record the grid's batch and event medians
in ``BENCH_engine.json`` so ``scripts/check_bench.py`` can gate the
recorded speedup and catch drift in either engine.
"""

import time
from dataclasses import replace

from repro.engine.batch import run_lanes
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.workload.scenarios import equal_load

#: One lane family per kernel implementation, both FCFS counter
#: strategies included — the gate must pay every kernel's dispatch cost.
PROTOCOLS = ("rr", "rr-impl2", "rr-impl3", "fcfs", "fcfs-aincr", "fixed")
SEEDS = tuple(range(8))


def grid_cells():
    """The 6-protocol x 8-seed peak-contention grid (48 cells)."""
    scenario = equal_load(4, 4.0)  # per-agent load 1.0: saturation
    settings = SimulationSettings(batches=2, batch_size=500, warmup=50)
    return [
        (scenario, protocol, replace(settings, seed=seed))
        for protocol in PROTOCOLS
        for seed in SEEDS
    ]


def _event_pass(cells):
    start = time.perf_counter()
    results = [
        run_simulation(scenario, protocol, replace(settings, engine="event"))
        for scenario, protocol, settings in cells
    ]
    return time.perf_counter() - start, results


def _batch_pass(cells):
    start = time.perf_counter()
    results = run_lanes(cells)
    return time.perf_counter() - start, results


def test_grid_lanes_bit_identical_to_event_engine():
    """Every cell of the grid agrees across engines, agent by agent.

    The conformance suite proves bit-identity on the full differential
    matrix (fault plans included); this repeats the check on the exact
    grid the speedup gate times, so the gate can never quietly measure
    two engines computing different things.
    """
    cells = grid_cells()
    _, batch_results = _batch_pass(cells)
    _, event_results = _event_pass(cells)
    assert len(batch_results) == len(event_results) == len(cells)
    for (_, protocol, settings), ours, theirs in zip(
        cells, batch_results, event_results
    ):
        assert ours.collector.agent_totals == theirs.collector.agent_totals, (
            f"{protocol} seed={settings.seed}: lane engine diverged"
        )
        assert ours.collector.total_recorded == theirs.collector.total_recorded


def test_grid_batch_speedup_gate():
    """The grid-wide acceptance bar: >= 10x end-to-end over the grid.

    Interleaved rounds with a min-of-k comparison (the same discipline
    as the R=32 replication gate) keep shared-runner drift from flaking
    it.  The lane engine measures ~10.2-10.9x on this grid locally;
    the printed ratio (run with ``-s``) feeds the docs' performance
    table.
    """
    cells = grid_cells()
    _batch_pass(cells)  # warm allocator / code caches
    batch_times, event_times = [], []
    for _ in range(4):
        event_time, _ = _event_pass(cells)
        batch_time, _ = _batch_pass(cells)
        event_times.append(event_time)
        batch_times.append(batch_time)
    speedup = min(event_times) / min(batch_times)
    print(f"\ngrid-wide batch speedup: {speedup:.2f}x (gate >= 10.0)")
    assert speedup >= 10.0


def test_grid_pass_batch_lanes(benchmark):
    """Recorded median of one lane-engine pass over the full grid."""
    cells = grid_cells()
    results = benchmark.pedantic(lambda: run_lanes(cells), rounds=5, iterations=1)
    assert len(results) == len(cells)
    assert all(r.collector.total_recorded == 1050 for r in results)


def test_grid_pass_event_engine(benchmark):
    """Recorded median of the same grid on the event engine.

    The recorded pair (this entry and ``test_grid_pass_batch_lanes``)
    is what ``scripts/check_bench.py`` uses to gate the >= 10x grid
    speedup at the committed baseline.
    """
    cells = grid_cells()
    results = benchmark.pedantic(
        lambda: _event_pass(cells)[1], rounds=3, iterations=1
    )
    assert len(results) == len(cells)
    assert all(r.collector.total_recorded == 1050 for r in results)

"""Ablation: the three RR implementations (DESIGN.md §7).

The paper: implementations 1 and 2 differ only in line usage;
implementation 3 saves the extra bus line at the cost of an occasional
immediate re-arbitration ("somewhat less efficient").  This bench
measures that cost: extra passes per grant and the waiting-time penalty
at low load, where the extra pass is not hidden by the overlapped
tenure.
"""

import pytest

from repro.experiments.runner import SimulationSettings, make_arbiter, run_simulation
from repro.stats.collector import CompletionCollector
from repro.bus.model import BusSystem
from repro.workload.scenarios import equal_load

from conftest import render


def _run_with_arbiter(scenario, arbiter, settings):
    collector = CompletionCollector(
        batches=settings.batches,
        batch_size=settings.batch_size,
        warmup=settings.warmup,
    )
    system = BusSystem(scenario, arbiter, collector, seed=settings.seed)
    system.run()
    from repro.stats.summary import RunResult

    return RunResult(
        scenario, arbiter.name, collector, system.utilization(),
        system.simulator.now, settings.seed,
    )


@pytest.mark.parametrize("load", [0.5, 2.5])
def test_rr_implementation_overhead(benchmark, scale, load):
    scenario = equal_load(10, load)
    settings = SimulationSettings(
        batches=scale.batches, batch_size=scale.batch_size, warmup=scale.warmup, seed=77
    )
    results = {}
    arbiters = {}
    for impl in (1, 2, 3):
        arbiter = make_arbiter("rr" if impl == 1 else f"rr-impl{impl}", 10)
        arbiters[impl] = arbiter
        results[impl] = _run_with_arbiter(scenario, arbiter, settings)

    benchmark.pedantic(
        lambda: run_simulation(scenario, "rr-impl3", settings), rounds=1, iterations=1
    )

    print()
    print(f"RR implementation overhead at load {load}:")
    for impl, result in results.items():
        extra = getattr(arbiters[impl], "extra_passes", 0)
        grants = arbiters[impl].arbitrations
        print(
            f"  impl {impl}: mean W {result.mean_waiting().mean:6.3f}, "
            f"extra passes {extra}/{grants} arbitrations, "
            f"extra lines {arbiters[impl].extra_lines}"
        )
    # Impl 1 and 2 have identical timing.
    assert results[1].mean_waiting().mean == pytest.approx(
        results[2].mean_waiting().mean, rel=1e-6
    )
    # Impl 3 pays for its saved line with re-arbitration passes.
    assert arbiters[3].extra_passes > 0
    assert results[3].mean_waiting().mean >= results[1].mean_waiting().mean - 1e-6

"""Ablation: priority-traffic integration (§2.4, §3.1, §3.2).

Mixes urgent requests into the workload and measures (a) that priority
requests always pre-empt the fairness protocols, and (b) how the three
FCFS counter-update options behave for the *non-priority* traffic —
counter overflow under the naive policy vs the winner-matched policy.
"""

import pytest

from repro.bus.model import BusSystem
from repro.core.fcfs import DistributedFCFS, PriorityCounterPolicy
from repro.core.round_robin import DistributedRoundRobin
from repro.stats.collector import CompletionCollector
from repro.stats.summary import RunResult
from repro.workload.distributions import Exponential
from repro.workload.scenarios import AgentSpec, ScenarioSpec


def _priority_scenario(num_agents=10, load=2.0, priority_fraction=0.3):
    mean = num_agents / load - 1.0
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=Exponential(mean),
            priority_fraction=priority_fraction,
        )
        for i in range(1, num_agents + 1)
    )
    return ScenarioSpec(name=f"priority-{priority_fraction}", agents=agents)


def _run(scenario, arbiter, seed=31, batches=5, batch_size=1200, warmup=400):
    collector = CompletionCollector(
        batches=batches, batch_size=batch_size, warmup=warmup, keep_records=True
    )
    system = BusSystem(scenario, arbiter, collector, seed=seed)
    system.run()
    result = RunResult(
        scenario, arbiter.name, collector, system.utilization(),
        system.simulator.now, seed,
    )
    return result, collector.records


def _mean_wait_by_class(records):
    by_class = {True: [], False: []}
    for record in records:
        by_class[record.priority].append(record.waiting_time)
    return {
        cls: sum(values) / len(values) for cls, values in by_class.items() if values
    }


@pytest.mark.parametrize(
    "make_arbiter_under_test",
    [
        lambda: DistributedRoundRobin(10),
        lambda: DistributedFCFS(10, strategy=1),
        lambda: DistributedFCFS(10, strategy=2),
    ],
    ids=["rr", "fcfs-1", "fcfs-2"],
)
def test_priority_class_waits_less(benchmark, make_arbiter_under_test):
    scenario = _priority_scenario()
    result, records = benchmark.pedantic(
        lambda: _run(scenario, make_arbiter_under_test()), rounds=1, iterations=1
    )
    waits = _mean_wait_by_class(records)
    print()
    print(
        f"{result.protocol}: priority W {waits[True]:.2f} vs "
        f"non-priority W {waits[False]:.2f}"
    )
    assert waits[True] < waits[False]


def test_fcfs_counter_policies_under_priority_load(benchmark):
    scenario = _priority_scenario(priority_fraction=0.5)
    policies = {
        "overflow": DistributedFCFS(
            10, strategy=1, priority_policy=PriorityCounterPolicy.OVERFLOW
        ),
        "match-winner": DistributedFCFS(
            10, strategy=1, priority_policy=PriorityCounterPolicy.MATCH_WINNER
        ),
        "dual-lines": DistributedFCFS(
            10, strategy=2, priority_policy=PriorityCounterPolicy.DUAL_LINES
        ),
    }
    stats = {}
    for name, arbiter in policies.items():
        result, __ = _run(scenario, arbiter)
        stats[name] = (arbiter.counter_wraps, result.extreme_throughput_ratio().mean)

    benchmark.pedantic(
        lambda: _run(scenario, DistributedFCFS(10, strategy=1)),
        rounds=1,
        iterations=1,
    )
    print()
    print("FCFS counter policies with 50% priority traffic:")
    for name, (wraps, ratio) in stats.items():
        print(f"  {name:12s} counter wraps {wraps:5d}, fairness t_N/t_1 {ratio:.3f}")
    # The winner-matched policy never lets non-priority counters run away.
    assert stats["match-winner"][0] == 0
    # All policies stay near-fair for this workload.
    for name, (__, ratio) in stats.items():
        assert abs(ratio - 1.0) < 0.2, name

#!/usr/bin/env python
"""Capacity planning: how many processors can share one bus?

A downstream use of the library that combines the analytical models
with the simulator.  A system architect asks: with processors that
compute for R̄ time units between bus transactions, how many can share
the bus before each spends more than 30% of its time stalled?

The closed-form MVA model answers in microseconds; the simulator
confirms the answer at the chosen design point and shows the fairness
picture under the arbiter that will actually ship.

Run:  python examples/capacity_planning.py
"""

from repro import (
    SimulationSettings,
    equal_load,
    mva_closed_bus,
    run_simulation,
    saturated_mean_waiting,
)

THINK_MEAN = 12.0        # compute time between bus transactions
STALL_BUDGET = 0.30      # max fraction of time a processor may stall


def stall_fraction(num_agents: int) -> float:
    """Predicted fraction of a processor's cycle spent stalled."""
    result = mva_closed_bus(num_agents, THINK_MEAN)
    return result.mean_waiting / (THINK_MEAN + result.mean_waiting)


def main() -> None:
    print(f"processors compute {THINK_MEAN:g} units per transaction; "
          f"stall budget {STALL_BUDGET:.0%}\n")
    print(f"{'N':>4s} {'W (MVA)':>9s} {'stall':>7s} {'bus util':>9s}")
    chosen = 1
    for num_agents in range(2, 41):
        result = mva_closed_bus(num_agents, THINK_MEAN)
        stall = stall_fraction(num_agents)
        marker = ""
        if stall <= STALL_BUDGET:
            chosen = num_agents
        if num_agents in (2, 4, 8, 12, 16, 20, 24, 32, 40):
            print(
                f"{num_agents:4d} {result.mean_waiting:9.2f} {stall:7.1%} "
                f"{result.utilization:9.2f}{marker}"
            )
    print(f"\nlargest N within budget (model): {chosen}")

    # Confirm the design point (and one past it) by simulation.
    settings = SimulationSettings(batches=5, batch_size=1500, warmup=500, seed=6)
    for num_agents in (chosen, chosen + 4):
        load = num_agents / (THINK_MEAN + 1.0)
        scenario = equal_load(num_agents, load)
        result = run_simulation(scenario, "rr", settings)
        w = result.mean_waiting().mean
        stall = w / (THINK_MEAN + w)
        verdict = "OK" if stall <= STALL_BUDGET else "over budget"
        print(
            f"simulated N={num_agents}: W {w:.2f}, stall {stall:.1%}, "
            f"fairness {result.extreme_throughput_ratio().mean:.3f}  -> {verdict}"
        )
    ceiling = saturated_mean_waiting(chosen + 4, THINK_MEAN) if (chosen + 4) * 1.0 - THINK_MEAN >= 1 else None
    if ceiling:
        print(f"(saturation ceiling at N={chosen + 4}: W would tend to {ceiling:.1f})")
    print("\nThe RR arbiter keeps every processor at the same stall level,")
    print("so the budget holds for the worst-placed identity too — the")
    print("whole point of replacing the assured-access protocols.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Urgent traffic: integrating priority requests with fair arbitration.

§2.4 and §3 describe how a most-significant priority bit layers urgent
service on top of any of the fairness protocols: I/O devices with
latency deadlines assert it, processors doing bulk transfers do not.

This example builds a mixed population — two "device" agents whose
requests are always urgent, fourteen processors whose requests never
are — and shows that (a) urgent requests see near-minimal waits even on
a saturated bus, and (b) the fairness protocol still equalises the
non-urgent traffic underneath.

Run:  python examples/realtime_priority.py
"""

from repro import (
    AgentSpec,
    BusSystem,
    CompletionCollector,
    DistributedFCFS,
    DistributedRoundRobin,
    Exponential,
    ScenarioSpec,
)

NUM_PROCESSORS = 14
NUM_DEVICES = 2


def build_scenario() -> ScenarioSpec:
    agents = []
    # Processors: identities 1..14, saturating load, never urgent.
    for agent_id in range(1, NUM_PROCESSORS + 1):
        agents.append(
            AgentSpec(agent_id=agent_id, interrequest=Exponential(6.0))
        )
    # Devices: identities 15..16, light load, always urgent.
    for agent_id in range(NUM_PROCESSORS + 1, NUM_PROCESSORS + NUM_DEVICES + 1):
        agents.append(
            AgentSpec(
                agent_id=agent_id,
                interrequest=Exponential(20.0),
                priority_fraction=1.0,
            )
        )
    return ScenarioSpec(name="realtime-mix", agents=agents)


def run(arbiter) -> None:
    scenario = build_scenario()
    collector = CompletionCollector(
        batches=5, batch_size=1500, warmup=500, keep_records=True
    )
    system = BusSystem(scenario, arbiter, collector, seed=3)
    system.run()

    urgent = [r.waiting_time for r in collector.records if r.priority]
    normal = [r.waiting_time for r in collector.records if not r.priority]
    by_agent = {}
    for record in collector.records:
        if not record.priority:
            by_agent.setdefault(record.agent_id, 0)
            by_agent[record.agent_id] += 1
    counts = [by_agent.get(a, 0) for a in range(1, NUM_PROCESSORS + 1)]

    print(f"--- {arbiter.name} ---")
    print(f"urgent mean W : {sum(urgent) / len(urgent):6.2f}  ({len(urgent)} requests)")
    print(f"normal mean W : {sum(normal) / len(normal):6.2f}  ({len(normal)} requests)")
    print(
        f"processor completions, min/max across identities: "
        f"{min(counts)} / {max(counts)}  "
        f"(ratio {max(counts) / max(1, min(counts)):.2f})"
    )
    print()


def main() -> None:
    print("Mixed urgent + fair traffic on a saturated 16-agent bus\n")
    run(DistributedRoundRobin(NUM_PROCESSORS + NUM_DEVICES))
    run(DistributedFCFS(NUM_PROCESSORS + NUM_DEVICES, strategy=2))
    print("Urgent requests wait roughly the residual tenure plus their own")
    print("transaction; the fairness protocol still splits the remaining")
    print("bandwidth evenly across processor identities.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Robustness: why the paper chose static arbitration numbers.

§3.1 claims the static-identity RR protocol "is more robust and simpler
to implement than previous distributed RR protocols that are based on
rotating agent priorities".  Both designs replicate one value at every
agent — the last arbitration winner — and both can have an agent miss a
winner broadcast (a glitch, a marginal receiver, a brown-out).

The difference is the blast radius.  This example injects the same
fault into both arbiters and watches what happens:

- static identities: the stale agent mis-sets its round-robin priority
  *bit* for one round, the numbers on the lines stay unique, and the
  next arbitration it observes heals it;
- rotating priorities: the stale agent's entire arbitration *number* is
  wrong, it eventually collides with another agent's number, and the
  arbitration logic can no longer name a unique winner.

Run:  python examples/fault_tolerance.py
"""

import random

from repro import ArbitrationError, FaultyWinnerRegisterRR, RotatingPriorityRR


def greedy_round(arbiter, now=0.0):
    """One grant on a saturated bus (the winner re-requests at once)."""
    winner = arbiter.start_arbitration(now).winner
    arbiter.grant(winner, now)
    arbiter.request(winner, now)
    return winner


def run_with_fault(arbiter, faulty_agent=3, fault_round=4, rounds=20):
    for agent in range(1, arbiter.num_agents + 1):
        arbiter.request(agent, 0.0)
    served = []
    for round_index in range(rounds):
        if round_index == fault_round:
            arbiter.drop_winner_observations(faulty_agent)
            print(f"    !! agent {faulty_agent} misses the winner broadcast")
        try:
            winner = greedy_round(arbiter)
        except ArbitrationError as error:
            print(f"    xx arbitration failed at grant {round_index}: {error}")
            return served
        served.append(winner)
        stale = arbiter.desynchronised_agents()
        note = f"   (stale views: {sorted(stale)})" if stale else ""
        print(f"    grant {round_index:2d}: agent {winner}{note}")
    return served


def main() -> None:
    print("=== static identities (the paper's protocol) ===")
    served = run_with_fault(FaultyWinnerRegisterRR(5))
    print(f"    completed {len(served)} grants; every agent served "
          f"{min(served.count(a) for a in range(1, 6))}+ times\n")

    print("=== rotating priorities (the rejected prior art) ===")
    served = run_with_fault(RotatingPriorityRR(5))
    print(f"    completed only {len(served)} grants before the collision\n")

    print("Monte-Carlo over 100 random fault patterns (1% drop rate):")
    survived = {"static": 0, "rotating": 0}
    for seed in range(100):
        rng = random.Random(seed)
        for name, arbiter in (
            ("static", FaultyWinnerRegisterRR(8)),
            ("rotating", RotatingPriorityRR(8)),
        ):
            for agent in range(1, 9):
                arbiter.request(agent, 0.0)
            try:
                for __ in range(200):
                    if rng.random() < 0.01:
                        arbiter.drop_winner_observations(rng.randint(1, 8))
                    greedy_round(arbiter)
                survived[name] += 1
            except ArbitrationError:
                pass
    print(f"    static identities : {survived['static']}/100 runs complete")
    print(f"    rotating priorities: {survived['rotating']}/100 runs complete")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: simulate a 10-processor shared bus under two arbiters.

Builds the paper's standard workload (10 identical processors, total
offered load 1.5, exponential inter-request times), runs it under the
distributed round-robin and distributed FCFS protocols, and prints the
headline metrics with their 90% confidence intervals.

Run:  python examples/quickstart.py
"""

from repro import SimulationSettings, equal_load, run_simulation


def main() -> None:
    scenario = equal_load(num_agents=10, total_load=1.5)
    settings = SimulationSettings(
        batches=6, batch_size=1500, warmup=500, seed=2026
    )

    print(f"scenario: {scenario.notes}")
    print(f"{'protocol':12s} {'utilisation':>12s} {'mean W':>14s} "
          f"{'std W':>14s} {'t_10/t_1':>14s}")
    for protocol in ("rr", "fcfs", "fcfs-aincr"):
        result = run_simulation(scenario, protocol, settings)
        print(
            f"{protocol:12s} {result.utilization:12.3f} "
            f"{str(result.mean_waiting()):>14s} "
            f"{str(result.std_waiting()):>14s} "
            f"{str(result.extreme_throughput_ratio()):>14s}"
        )

    print()
    print("Things to notice (the paper's §4 in miniature):")
    print(" * mean W is identical across protocols (conservation law);")
    print(" * std W is visibly lower for FCFS than for RR;")
    print(" * the throughput ratio between the best- and worst-placed")
    print("   processor is statistically 1.0 for every protocol here —")
    print("   fairness is the point of both designs.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Bus monitoring: watching the arbiter's state on the wire.

The paper's §1 lists observability as a selling point of the parallel
contention arbiter: "the state of the arbiter is available and can be
monitored on the bus … useful for software initialization of the system
and for diagnosing system failures."

This example plays logic analyzer.  It runs a small saturated system
under round-robin and under fixed priority, renders the bus-ownership
timeline for both, and then drops one level lower to watch a single
wired-OR arbitration settle bit by bit.

Run:  python examples/bus_monitor.py
"""

from repro import (
    BusSystem,
    CompletionCollector,
    DistributedRoundRobin,
    FixedPriorityArbiter,
    ParallelContention,
    equal_load,
    render_timeline,
)


def timeline_for(arbiter) -> str:
    scenario = equal_load(4, total_load=3.0)  # four eager processors
    collector = CompletionCollector(
        batches=2, batch_size=20, warmup=0, keep_records=True
    )
    system = BusSystem(scenario, arbiter, collector, seed=11)
    system.run()
    window = [r for r in collector.records if r.grant_time <= 16.0]
    return render_timeline(window, end=16.0, resolution=0.5)


def main() -> None:
    print("=== round-robin arbitration (every agent gets its turn) ===")
    print(timeline_for(DistributedRoundRobin(4)))
    print()
    print("=== fixed priority (agent 4 hogs, agent 1 starves) ===")
    print(timeline_for(FixedPriorityArbiter(4)))
    print()

    print("=== one wired-OR arbitration, settling round by round ===")
    contention = ParallelContention(width=7)
    competitors = {0b1010101: "agent 85", 0b0011100: "agent 28", 0b1001111: "agent 79"}
    result = contention.resolve(competitors)
    for round_index, word in enumerate(result.history):
        print(f"  after round {round_index}: lines carry {word:07b}")
    print(f"  settled in {result.rounds} propagation rounds; "
          f"winner = {result.winner_identity} ({competitors[result.winner_identity]})")
    print()
    print("The settled word IS the winner's arbitration number — every agent")
    print("on the bus can read it, which is exactly what the RR protocol's")
    print("'record the previous winner' step relies on.")


if __name__ == "__main__":
    main()

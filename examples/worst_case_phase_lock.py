#!/usr/bin/env python
"""The round-robin phase-lock pathology, and the protocols that fix it.

§4.5 constructs a worst case for RR: with perfectly deterministic
inter-request times one agent can "just miss" its turn every round and
wait almost a full extra round, halving its throughput.  The same
deterministic workload is also FCFS's worst enemy in a different way —
simultaneous arrivals decay to static-priority order.

This example runs the pathological workload under RR, FCFS, and the two
§5 future-work arbiters (hybrid and adaptive), sweeping the
inter-request CV from 0 upward to show how a whisper of randomness
dissolves the phase lock — the paper's "sneak in" intuition.

Run:  python examples/worst_case_phase_lock.py
"""

from repro import SimulationSettings, run_simulation, worst_case_rr
from repro.experiments.table_4_5 import slow_to_other_ratio

PROTOCOLS = ("rr", "fcfs", "hybrid", "adaptive")
CVS = (0.0, 0.25, 1.0)


def main() -> None:
    settings = SimulationSettings(batches=5, batch_size=1500, warmup=500, seed=5)
    scenario0 = worst_case_rr(10, cv=0.0)
    load_ratio = (
        scenario0.agent(1).offered_load() / scenario0.agent(2).offered_load()
    )
    print("slow agent vs regular agent throughput ratio (10 agents)")
    print(f"offered-load ratio (the fair target): {load_ratio:.3f}\n")
    header = f"{'CV':>5s}" + "".join(f"{p:>10s}" for p in PROTOCOLS)
    print(header)
    print("-" * len(header))
    for cv in CVS:
        scenario = worst_case_rr(10, cv=cv)
        cells = []
        for protocol in PROTOCOLS:
            result = run_simulation(scenario, protocol, settings)
            cells.append(f"{slow_to_other_ratio(result).mean:10.3f}")
        print(f"{cv:5.2f}" + "".join(cells))
    print()
    print("At CV = 0 the RR column collapses to ~0.5 — the slow agent is")
    print("served once per two rounds.  FCFS and the hybrid/adaptive")
    print("arbiters track the load ratio; by CV = 0.25 everyone recovers.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Fairness study: why the paper's protocols exist.

The paper's introduction motivates the work with a broken promise: the
assured-access protocols shipped in Fastbus/NuBus/Multibus II and
Futurebus were *believed* fair, but actually hand high-identity
processors up to twice the bandwidth of low-identity ones — and "the
relative bus bandwidth allocated to each processor translates directly
to the relative speeds at which application processes run."

This example puts every arbiter in the library on the same saturated
16-processor workload and prints each agent's bandwidth share, so the
continuum of unfairness (fixed priority → AAPs → RR/FCFS) is visible in
one table.

Run:  python examples/fairness_study.py
"""

from repro import SimulationSettings, StatisticsError, equal_load, run_simulation

PROTOCOLS = ("fixed", "aap1", "aap2", "fcfs", "rr")
NUM_AGENTS = 16


def main() -> None:
    scenario = equal_load(NUM_AGENTS, total_load=4.0)  # deeply saturated
    settings = SimulationSettings(batches=5, batch_size=1600, warmup=500, seed=7)

    shares = {}
    ratios = {}
    for protocol in PROTOCOLS:
        result = run_simulation(scenario, protocol, settings)
        shares[protocol] = result.bandwidth_shares()
        try:
            ratios[protocol] = result.extreme_throughput_ratio()
        except StatisticsError:
            # Fixed priority starves agent 1 completely: the ratio is
            # effectively infinite.
            ratios[protocol] = "infinite (agent 1 starved)"

    print(f"bandwidth share per agent, {NUM_AGENTS} equal processors, load 4.0")
    print(f"fair share would be {1 / NUM_AGENTS:.4f} for everyone\n")
    header = "agent " + "".join(f"{p:>9s}" for p in PROTOCOLS)
    print(header)
    print("-" * len(header))
    for agent in range(1, NUM_AGENTS + 1):
        row = f"{agent:5d} " + "".join(
            f"{shares[p].get(agent, 0.0):9.4f}" for p in PROTOCOLS
        )
        print(row)
    print()
    print("throughput ratio, most- vs least-favoured agent (t_16/t_1):")
    for protocol in PROTOCOLS:
        print(f"  {protocol:6s} {ratios[protocol]}")
    print()
    print("Reading the table: fixed priority starves low identities outright;")
    print("the assured-access baselines still give agent 16 roughly twice")
    print("agent 1's bandwidth; the paper's RR and FCFS arbiters are flat.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Prefetch overlap: when does FCFS's low waiting variance pay off?

§4.3's hypothetical system can overlap useful execution with bus waits —
think of a processor that issues its memory request early (prefetching)
and keeps executing for up to ``v`` time units before stalling.  If the
bus wait W exceeds v, the difference is a stall.

Because FCFS concentrates waits tightly around the mean while RR spreads
them out, a well-chosen v lets the FCFS system hide almost *every* wait,
while the RR system keeps stalling on its long tail.  This example
reproduces that effect and sweeps v to show how contrived the advantage
is: away from the sweet spot the protocols tie.

Run:  python examples/prefetch_overlap.py
"""

from repro import (
    SimulationSettings,
    equal_load,
    min_integer_crossing,
    run_simulation,
)


def main() -> None:
    scenario = equal_load(num_agents=30, total_load=1.5)
    settings = SimulationSettings(
        batches=6, batch_size=1500, warmup=500, seed=88, keep_samples=True
    )

    rr = run_simulation(scenario, "rr", settings)
    fcfs = run_simulation(scenario, "fcfs", settings)
    rr_cdf, fcfs_cdf = rr.waiting_cdf(), fcfs.waiting_cdf()

    sweet_spot = min_integer_crossing(rr_cdf, fcfs_cdf)
    print(f"mean W: {rr_cdf.mean:.2f} (RR) vs {fcfs_cdf.mean:.2f} (FCFS)")
    print(f"std  W: {rr_cdf.std:.2f} (RR) vs {fcfs_cdf.std:.2f} (FCFS)")
    print(f"CDF crossing (paper's overlap choice): v = {sweet_spot}")
    print()

    values = sorted({1, max(1, (sweet_spot or 10) // 2), sweet_spot or 10,
                     2 * (sweet_spot or 10)})
    print(f"{'overlap v':>10s} {'stall RR':>10s} {'stall FCFS':>11s} "
          f"{'prod RR':>9s} {'prod FCFS':>10s}")
    for v in values:
        rr_metrics = rr.overlap_metrics(v)
        fcfs_metrics = fcfs.overlap_metrics(v)
        print(
            f"{v:10.1f} {rr_metrics.residual_waiting.mean:10.3f} "
            f"{fcfs_metrics.residual_waiting.mean:11.3f} "
            f"{rr_metrics.productivity.mean:9.3f} "
            f"{fcfs_metrics.productivity.mean:10.3f}"
        )
    print()
    print("At the crossing value FCFS hides nearly all waiting while RR's")
    print("tail still stalls; at much smaller or larger v the gap closes —")
    print("the paper's own caveat that this best case is contrived.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Run the engine micro-benchmarks and write BENCH_engine.json.

Invokes ``benchmarks/test_engine_microbench.py`` under pytest-benchmark,
then condenses the raw calibration data to one entry per benchmark
(median / mean / stddev in microseconds) so regressions diff cleanly.

Usage::

    python scripts/run_benchmarks.py [--out BENCH_engine.json]
                                     [--compare BASELINE.json]
                                     [--tolerance 0.15]

``--compare`` exits non-zero if any benchmark's median regressed more
than ``--tolerance`` (fractional) against the given baseline file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = ROOT / "BENCH_engine.json"
BENCH_FILES = [
    "benchmarks/test_engine_microbench.py",
    "benchmarks/test_grid_batch.py",
    "benchmarks/test_session_overhead.py",
    "benchmarks/test_service_overhead.py",
    "benchmarks/test_openloop_overhead.py",
]
#: Backwards-compatible alias (pre-grid callers imported the scalar).
BENCH_FILE = BENCH_FILES[0]

#: The grid benchmark pair whose median ratio is the recorded grid
#: speedup; ``check_bench.py`` gates on it.
GRID_EVENT = "test_grid_pass_event_engine"
GRID_BATCH = "test_grid_pass_batch_lanes"

#: The session-routed grid pass and its *paired* raw-lanes baseline
#: (recorded back-to-back in ``test_session_overhead.py`` so the ratio
#: is drift-free); their medians yield the ``session_overhead``
#: fraction ``check_bench.py`` gates.
GRID_SESSION = "test_grid_pass_session_routed"
GRID_SESSION_BASE = "test_grid_pass_lanes_paired"

#: The service-routed cached grid pass and its paired direct-session
#: baseline (adjacent in ``test_service_overhead.py``); their minima
#: yield the ``service_overhead`` fraction ``check_bench.py`` gates.
GRID_SERVICE = "test_grid_pass_cached_service"
GRID_SERVICE_BASE = "test_grid_pass_cached_session"

#: The open-loop event sweep and its paired closed-loop baseline
#: (adjacent in ``test_openloop_overhead.py``, same completion budget);
#: their minima yield the per-completion ``openloop_overhead`` fraction
#: ``check_bench.py`` gates.
SWEEP_OPENLOOP = "test_sweep_pass_open_loop"
SWEEP_OPENLOOP_BASE = "test_sweep_pass_closed_loop_paired"


def run_microbench(raw_path: Path) -> dict:
    """Run pytest-benchmark and return its raw JSON payload."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        *BENCH_FILES,
        "--benchmark-only",
        f"--benchmark-json={raw_path}",
        "-q",
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(ROOT / "src"), env.get("PYTHONPATH")])
    )
    subprocess.run(command, cwd=ROOT, env=env, check=True)
    return json.loads(raw_path.read_text(encoding="utf-8"))


def engine_metadata() -> dict:
    """Record the lane-engine environment the timings were taken in.

    Speedups are only comparable like-for-like: a baseline recorded
    with the numpy timer path forced on (or without numpy installed at
    all) describes a different engine configuration, so the snapshot
    carries enough to tell.
    """
    sys.path.insert(0, str(ROOT / "src"))
    from repro.engine.batch import HAVE_NUMPY, LANE_WIDTH, _numpy_enabled

    return {
        "numpy_available": HAVE_NUMPY,
        "numpy_forced": bool(_numpy_enabled(2)),
        "repro_batch_numpy": os.environ.get("REPRO_BATCH_NUMPY"),
        "lane_width": LANE_WIDTH,
    }


def condense(raw: dict) -> dict:
    """One compact entry per benchmark, timings in microseconds."""
    benchmarks = {}
    for bench in raw["benchmarks"]:
        stats = bench["stats"]
        benchmarks[bench["name"]] = {
            "median_us": round(stats["median"] * 1e6, 3),
            "mean_us": round(stats["mean"] * 1e6, 3),
            "stddev_us": round(stats["stddev"] * 1e6, 3),
            "min_us": round(stats["min"] * 1e6, 3),
            "rounds": stats["rounds"],
        }
    summary = {
        "source": BENCH_FILES,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "engine": engine_metadata(),
        "benchmarks": benchmarks,
    }
    grid_event = benchmarks.get(GRID_EVENT)
    grid_batch = benchmarks.get(GRID_BATCH)
    if grid_event and grid_batch:
        summary["grid_speedup"] = round(
            grid_event["median_us"] / grid_batch["median_us"], 2
        )
    grid_session = benchmarks.get(GRID_SESSION)
    grid_session_base = benchmarks.get(GRID_SESSION_BASE)
    if grid_session and grid_session_base:
        # Min-over-min, the same discipline as the in-test overhead
        # gate: the minimum of each series estimates the true cost with
        # scheduler/GC noise stripped, which a median-of-5 ratio of two
        # ~100ms passes cannot do at the 2% resolution the gate needs.
        summary["session_overhead"] = round(
            grid_session["min_us"] / grid_session_base["min_us"] - 1.0, 4
        )
    grid_service = benchmarks.get(GRID_SERVICE)
    grid_service_base = benchmarks.get(GRID_SERVICE_BASE)
    if grid_service and grid_service_base:
        summary["service_overhead"] = round(
            grid_service["min_us"] / grid_service_base["min_us"] - 1.0, 4
        )
    sweep_open = benchmarks.get(SWEEP_OPENLOOP)
    sweep_open_base = benchmarks.get(SWEEP_OPENLOOP_BASE)
    if sweep_open and sweep_open_base:
        summary["openloop_overhead"] = round(
            sweep_open["min_us"] / sweep_open_base["min_us"] - 1.0, 4
        )
    return summary


def compare(current: dict, baseline_path: Path, tolerance: float) -> int:
    """Report median deltas vs a baseline; non-zero on regression."""
    baseline_doc = json.loads(baseline_path.read_text(encoding="utf-8"))
    baseline = baseline_doc["benchmarks"]
    baseline_engine = baseline_doc.get("engine")
    if baseline_engine is not None and baseline_engine != current.get("engine"):
        print(
            "  note: engine environment differs from baseline "
            f"(baseline {baseline_engine}, current {current.get('engine')}); "
            "medians are not like-for-like"
        )
    status = 0
    for name, entry in sorted(current["benchmarks"].items()):
        reference = baseline.get(name)
        if reference is None:
            print(f"  {name}: no baseline entry")
            continue
        delta = entry["median_us"] / reference["median_us"] - 1.0
        marker = ""
        if delta > tolerance:
            marker = "  <-- REGRESSION"
            status = 1
        print(
            f"  {name}: {reference['median_us']:.1f}us -> "
            f"{entry['median_us']:.1f}us ({delta:+.1%}){marker}"
        )
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT, help="output JSON path"
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE",
        help="fail if a median regressed past --tolerance vs this file",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional median slowdown (default 0.15)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        raw = run_microbench(Path(tmp) / "raw.json")
    summary = condense(raw)
    args.out.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.out}")
    for name, entry in sorted(summary["benchmarks"].items()):
        print(f"  {name}: median {entry['median_us']:.1f}us")

    if args.compare is not None:
        print(f"comparing against {args.compare} (tolerance {args.tolerance:.0%})")
        return compare(summary, args.compare, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Append the extension tables (E1–E4) to EXPERIMENTS.md.

Run after ``generate_experiments.py``; the extension tables use the
current ``REPRO_SCALE`` (their assertions are scale-robust, so the
default quick scale is fine even when the paper tables ran at paper
scale).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.extensions import (
    run_table_e1,
    run_table_e2,
    run_table_e3,
    run_table_e4,
)
from repro.experiments.scale import current_scale

OUT = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
MARKER = "## Extension tables"


def main() -> None:
    scale = current_scale()
    text = OUT.read_text(encoding="utf-8")
    if MARKER in text:
        text = text[: text.index(MARKER)].rstrip() + "\n"
    blocks = [
        MARKER,
        "",
        "Beyond the paper's §4: its prose claims, tabulated (see",
        "DESIGN.md §4 for provenance and `repro-arb table E1..E4`).",
        "",
    ]
    for builder in (run_table_e1, run_table_e2, run_table_e3, run_table_e4):
        print(f"running {builder.__name__} ...", flush=True)
        table = (
            builder()
            if builder is run_table_e1 or builder is run_table_e2
            else builder(scale=scale)
        )
        blocks.append("```")
        blocks.append(table.render())
        blocks.append("```")
        blocks.append("")
    OUT.write_text(text.rstrip() + "\n\n" + "\n".join(blocks), encoding="utf-8")
    print(f"appended extension tables to {OUT}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every table and figure.

Runs the full experiment harness (at the scale given by ``REPRO_SCALE``,
paper fidelity with ``REPRO_SCALE=paper``) and writes EXPERIMENTS.md with
the paper's published numbers beside ours.

Usage:  REPRO_SCALE=paper python scripts/generate_experiments.py [--jobs N] [--cache]

``--jobs N`` fans the independent table cells over N worker processes
(0 = one per core); ``--cache`` replays previously computed cells from
the on-disk result cache.  Either way the output is bit-identical to a
serial, uncached run.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import figure_4_1, table_4_1, table_4_2, table_4_3, table_4_4, table_4_5
from repro.experiments.cache import ResultCache
from repro.experiments.scale import current_scale
from repro.experiments.spec import build_tables
from repro.experiments.sweep import SweepExecutor

OUT = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"

# ---------------------------------------------------------------------------
# The paper's published values live in repro.experiments.reference so the
# regression tests can use them too; local aliases keep the section code
# unchanged.
# ---------------------------------------------------------------------------

from repro.experiments.reference import (
    LOADS,
    TABLE_4_1 as PAPER_4_1,
    TABLE_4_2 as PAPER_4_2,
    TABLE_4_3_OVERLAP as PAPER_4_3_OVERLAP,
    TABLE_4_4 as PAPER_4_4,
    TABLE_4_5_RR_RATIO,
)

PAPER_4_5 = {}
for (_n, _cv), _ratio in TABLE_4_5_RR_RATIO.items():
    PAPER_4_5.setdefault(_n, {})[_cv] = _ratio




def _fmt(value, digits=2):
    if value is None:
        return "—"
    if hasattr(value, "mean"):
        return f"{value.mean:.{digits}f}"
    return f"{value:.{digits}f}"


def section_4_1(scale, out, executor):
    out.append("## Table 4.1 — bandwidth allocation, equal request rates\n")
    out.append("Throughput ratio of the highest-identity agent to the lowest "
               "(t_N/t_1).  Paper values in parentheses.\n")
    for panel in build_tables(table_4_1.spec(scale=scale), executor):
        n = panel.data[0]["num_agents"]
        paper = PAPER_4_1.get(n, {})
        out.append(f"\n### {n} agents\n")
        headers = "| Load | λ | RR (paper) | FCFS (paper) |"
        rule = "|---|---|---|---|"
        if paper.get("aap"):
            headers += " AAP-1 (paper) |"
            rule += "---|"
        out.append(headers)
        out.append(rule)
        for i, row in enumerate(panel.data):
            rr_ref = paper.get("rr")
            fcfs_ref = paper.get("fcfs")
            line = (
                f"| {row['load']:.2f} | {row['throughput'].mean:.2f} "
                f"| {_fmt(row['ratio_rr'])} ({_fmt(rr_ref[i]) if rr_ref else '—'}) "
                f"| {_fmt(row['ratio_fcfs'])} ({_fmt(fcfs_ref[i]) if fcfs_ref else '—'}) |"
            )
            if paper.get("aap"):
                line += f" {_fmt(row['ratio_aap1'])} ({_fmt(paper['aap'][i])}) |"
            out.append(line)
    out.append("\n**Shape check:** RR ratio ≡ 1.0 at every load; FCFS peaks a "
               "few percent above 1.0 near saturation and decays; AAP-1 climbs "
               "toward 2.0. All reproduced.\n")


def section_4_2(scale, out, executor):
    out.append("## Table 4.2 — waiting-time standard deviation\n")
    out.append("W is issue → transaction completion (the paper's W).\n")
    for panel in build_tables(table_4_2.spec(scale=scale), executor):
        n = panel.data[0]["num_agents"]
        paper = PAPER_4_2[n]
        out.append(f"\n### {n} agents\n")
        out.append("| Load | W (paper) | σ FCFS (paper) | σ RR (paper) | σRR/σFCFS |")
        out.append("|---|---|---|---|---|")
        for i, row in enumerate(panel.data):
            w = (row["mean_w_rr"].mean + row["mean_w_fcfs"].mean) / 2
            out.append(
                f"| {row['load']:.2f} "
                f"| {w:.2f} ({paper['w'][i]:.2f}) "
                f"| {_fmt(row['std_fcfs'])} ({paper['std_fcfs'][i]:.2f}) "
                f"| {_fmt(row['std_rr'])} ({paper['std_rr'][i]:.2f}) "
                f"| {row['std_ratio']:.2f} |"
            )
    out.append("\n**Shape check:** means match the paper to ~2%; σ ordering "
               "and the growth of σRR/σFCFS with N and load reproduced.\n")


def section_4_3(scale, out, executor):
    out.append("## Table 4.3 — execution overlapped with bus waiting\n")
    out.append("v = min integer with CDF_RR(v) < CDF_FCFS(v); "
               "residual = E[(W−v)+].  Paper's v in parentheses where "
               "legible in our source.\n")
    for panel in build_tables(table_4_3.spec(scale=scale), executor):
        n = panel.data[0]["num_agents"]
        paper_v = PAPER_4_3_OVERLAP.get(n)
        out.append(f"\n### {n} agents\n")
        out.append("| Load | W | resid RR | resid FCFS | prod RR | prod FCFS | v (paper) |")
        out.append("|---|---|---|---|---|---|---|")
        for i, row in enumerate(panel.data):
            ref = paper_v[i] if paper_v else None
            out.append(
                f"| {row['load']:.2f} | {row['rr'].total_waiting.mean:.2f} "
                f"| {_fmt(row['rr'].residual_waiting)} "
                f"| {_fmt(row['fcfs'].residual_waiting)} "
                f"| {row['rr'].productivity.mean:.3f} "
                f"| {row['fcfs'].productivity.mean:.3f} "
                f"| {row['overlap']:.0f} ({_fmt(ref, 0)}) |"
            )
    out.append("\n**Shape check:** FCFS residual stall < RR residual stall at "
               "every saturated load; FCFS productivity ≥ RR productivity; "
               "crossing values near the paper's overlap column.\n")


def section_4_4(scale, out, executor):
    out.append("## Table 4.4 — unequal request rates (30 agents)\n")
    for panel, factor in zip(build_tables(table_4_4.spec(scale=scale), executor), (2.0, 4.0)):
        paper = PAPER_4_4[factor]
        out.append(f"\n### agent 1 at {factor:g}×\n")
        out.append("| Load | λ | t1/t2 RR (paper) | t1/t2 FCFS (paper) |")
        out.append("|---|---|---|---|")
        for i, row in enumerate(panel.data):
            out.append(
                f"| {row['total_load']:.2f} | {row['throughput'].mean:.2f} "
                f"| {_fmt(row['ratio_rr'])} ({paper['rr'][i]:.2f}) "
                f"| {_fmt(row['ratio_fcfs'])} ({paper['fcfs'][i]:.2f}) |"
            )
    out.append("\n**Shape check:** both protocols proportional at low load; "
               "ratios sink toward 1 at saturation with FCFS staying closer "
               "to the demand ratio. Reproduced.\n")


def section_4_5(scale, out, executor):
    out.append("## Table 4.5 — worst-case bus allocation for RR\n")
    out.append("Slow agent (deterministic inter-request n−0.5) vs regular "
               "agents (n−3.6).  The FCFS column is our added reference.\n")
    for panel in build_tables(table_4_5.spec(scale=scale), executor):
        n = panel.data[0]["num_agents"]
        paper = PAPER_4_5.get(n, {})
        out.append(f"\n### {n} agents\n")
        out.append("| CV | load ratio | t_s/t_o RR (paper) | t_s/t_o FCFS |")
        out.append("|---|---|---|---|")
        for row in panel.data:
            ref = paper.get(row["cv"])
            out.append(
                f"| {row['cv']:.2f} | {row['load_ratio']:.2f} "
                f"| {_fmt(row['ratio_rr'])} ({_fmt(ref)}) "
                f"| {_fmt(row['ratio_fcfs'])} |"
            )
    out.append("\n**Shape check:** the CV = 0 collapse to 0.50 reproduced at "
               "every system size; CV ≥ 0.25 restores ≈ load-proportional "
               "service exactly as the paper reports.\n")


def section_figure(scale, out, executor):
    out.append("## Figure 4.1 — CDF of the bus waiting time (30 agents, load 1.5)\n")
    figure = figure_4_1.run(scale=scale, executor=executor)
    out.append("```")
    out.append(figure.render())
    out.append("```")
    out.append(
        f"\n**Shape check:** shared mean ({figure.rr_cdf.mean:.2f} RR vs "
        f"{figure.fcfs_cdf.mean:.2f} FCFS), with the FCFS CDF rising sharply "
        f"near it (σ {figure.fcfs_cdf.std:.2f}) while RR spreads "
        f"(σ {figure.rr_cdf.std:.2f}). Matches the paper's figure.\n"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (0 = one per core; default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse cached cell results ($REPRO_CACHE_DIR or ~/.cache/repro-arb)",
    )
    args = parser.parse_args()
    executor = SweepExecutor(
        jobs=args.jobs, cache=ResultCache() if args.cache else None
    )
    scale = current_scale()
    started = time.time()
    out = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of every table and figure in Vernon & Manber (ISCA",
        "1988) §4.  Our numbers come from the simulator in this repository;",
        "the paper's numbers are transcribed beside them in parentheses.",
        "Absolute agreement is not expected down to the last digit (different",
        "random-number streams), but in practice the means match to a few",
        "percent and every qualitative shape holds.",
        "",
        f"Run configuration: scale **{scale.name}** "
        f"({scale.batches} batches × {scale.batch_size} samples, "
        f"{scale.warmup} warmup), 90% confidence batch means, "
        "seed 19880530.",
        "",
        "Regenerate with `REPRO_SCALE=paper python scripts/generate_experiments.py`",
        "or table by table via `repro-arb table 4.2` / "
        "`pytest benchmarks/ --benchmark-only -s`.",
        "",
        "Cells marked — correspond to entries that are illegible in our",
        "source scan of the paper.  See docs/methodology.md for the",
        "measurement definitions and for the Table 4.3 crossing-rule",
        "discussion.",
        "",
    ]
    for section in (section_4_1, section_4_2, section_4_3, section_4_4,
                    section_4_5, section_figure):
        print(f"running {section.__name__} ...", flush=True)
        section(scale, out, executor)
        out.append("")
    out.append(f"_Generated in {time.time() - started:.0f}s at scale "
               f"{scale.name}._")
    OUT.write_text("\n".join(out) + "\n", encoding="utf-8")
    stats = executor.stats
    print(
        f"wrote {OUT} (jobs={executor.jobs}, simulated {stats.executed} cells, "
        f"{stats.cache_hits} cache hits)"
    )


if __name__ == "__main__":
    sys.exit(main())

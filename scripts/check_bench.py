#!/usr/bin/env python
"""CI bench guard: fail when a median drifts past 1.5× the baseline.

Runs the engine micro-benchmarks fresh (to a throwaway file — the
committed ``BENCH_engine.json`` is never overwritten here) and compares
every median against the committed baseline with a generous 50%
tolerance.  The committed file is a developer-machine snapshot and CI
runners are slower and noisier, so the guard is deliberately coarse: it
exists to catch order-of-magnitude regressions (an accidentally
quadratic loop, a lost fast path), not single-digit drift — that is
what ``scripts/run_benchmarks.py --compare`` at its default tolerance
is for, on quiet hardware.

Usage::

    python scripts/check_bench.py [--baseline BENCH_engine.json]
                                  [--tolerance 0.5]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from run_benchmarks import DEFAULT_OUT, compare, condense, run_microbench


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_OUT,
        help="committed baseline to compare against (default BENCH_engine.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional median slowdown (default 0.5, i.e. 1.5x)",
    )
    args = parser.parse_args()

    if not args.baseline.exists():
        print(f"baseline {args.baseline} not found", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        raw = run_microbench(Path(tmp) / "raw.json")
    summary = condense(raw)
    print(
        f"bench guard: comparing against {args.baseline} "
        f"(tolerance {args.tolerance:.0%})"
    )
    return compare(summary, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""CI bench guard: median drift plus the grid-wide speedup gate.

Runs the engine benchmarks fresh (to a throwaway file — the committed
``BENCH_engine.json`` is never overwritten here) and applies two
checks:

1. **Median drift** — every median is compared against the committed
   baseline with a generous 50% tolerance.  The committed file is a
   developer-machine snapshot and CI runners are slower and noisier, so
   this check is deliberately coarse: it exists to catch
   order-of-magnitude regressions (an accidentally quadratic loop, a
   lost fast path), not single-digit drift — that is what
   ``scripts/run_benchmarks.py --compare`` at its default tolerance is
   for, on quiet hardware.

2. **Grid speedup** — the recorded baseline must demonstrate at least
   ``--grid-speedup`` (default 10x) end-to-end over the full
   peak-contention grid, and the fresh run must stay above that bar
   scaled by the drift tolerance (so 5x at the default 50%).  The
   ratio is machine-relative, so the fresh check mostly absorbs runner
   noise; the exact >= 10x bar is enforced where timing is reliable —
   on the recorded baseline, and by
   ``benchmarks/test_grid_batch.py::test_grid_batch_speedup_gate``
   with its interleaved min-of-k discipline.

3. **Session overhead** — the recorded baseline's session-routed grid
   pass must sit within ``--session-overhead`` (default 2%) of the raw
   lane-engine pass.  Orchestration (planning, routing, outcome
   assembly) is pure bookkeeping; if it shows up in grid timings, the
   session layer grew a per-cell cost it must not have.  The exact bar
   is enforced on the recorded baseline and by
   ``benchmarks/test_session_overhead.py::test_session_overhead_gate``;
   the fresh run gets the same drift-scaled slack as the speedup.

4. **Service overhead** — the recorded baseline's service-routed
   cached grid pass must sit within ``--service-overhead`` (default
   50%) of the direct session gather.  The job layer's cost is a fixed
   sub-millisecond handoff per gather; a per-cell cost on the hit path
   (re-serialization, re-hashing, per-cell events) lands hundreds of
   percent above the bar.  The exact bar is enforced on the recorded
   baseline and by ``benchmarks/test_service_overhead.py::
   test_service_overhead_gate``; the fresh run gets drift-scaled slack.

5. **Open-loop overhead** — the recorded baseline's open-loop bursty
   sweep must cost at most ``--openloop-overhead`` (default 50%, i.e.
   1.5x) more per completion than the paired closed-loop sweep.  The
   arrival layer's MMPP phase walks and class coin flips run once per
   request on the event engine's hot path; this bar keeps them there.
   The exact bar is enforced on the recorded baseline and by
   ``benchmarks/test_openloop_overhead.py::test_openloop_overhead_gate``;
   the fresh run gets drift-scaled slack.

Usage::

    python scripts/check_bench.py [--baseline BENCH_engine.json]
                                  [--tolerance 0.5]
                                  [--grid-speedup 10.0]
                                  [--session-overhead 0.02]
                                  [--service-overhead 0.5]
                                  [--openloop-overhead 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from run_benchmarks import DEFAULT_OUT, compare, condense, run_microbench


def check_grid_speedup(summary: dict, baseline: dict, gate: float, tolerance: float) -> int:
    """Gate the end-to-end grid speedup at the recorded baseline."""
    status = 0
    recorded = baseline.get("grid_speedup")
    if recorded is None:
        print("  grid speedup: baseline records none  <-- REGRESSION")
        status = 1
    elif recorded < gate:
        print(
            f"  grid speedup: baseline records {recorded:.2f}x "
            f"(gate >= {gate:.1f}x)  <-- REGRESSION"
        )
        status = 1
    else:
        print(f"  grid speedup: baseline records {recorded:.2f}x (gate >= {gate:.1f}x)")
    fresh = summary.get("grid_speedup")
    floor = gate * (1.0 - tolerance)
    if fresh is None:
        print("  grid speedup (fresh): missing grid benchmarks  <-- REGRESSION")
        status = 1
    elif fresh < floor:
        print(
            f"  grid speedup (fresh): {fresh:.2f}x "
            f"(floor {floor:.1f}x at {tolerance:.0%} tolerance)  <-- REGRESSION"
        )
        status = 1
    else:
        print(
            f"  grid speedup (fresh): {fresh:.2f}x "
            f"(floor {floor:.1f}x at {tolerance:.0%} tolerance)"
        )
    return status


def check_session_overhead(
    summary: dict, baseline: dict, gate: float, tolerance: float
) -> int:
    """Gate the session layer's grid overhead at the recorded baseline."""
    status = 0
    recorded = baseline.get("session_overhead")
    if recorded is None:
        print("  session overhead: baseline records none  <-- REGRESSION")
        status = 1
    elif recorded >= gate:
        print(
            f"  session overhead: baseline records {recorded:+.2%} "
            f"(gate < {gate:.0%})  <-- REGRESSION"
        )
        status = 1
    else:
        print(
            f"  session overhead: baseline records {recorded:+.2%} (gate < {gate:.0%})"
        )
    fresh = summary.get("session_overhead")
    ceiling = gate * (1.0 + tolerance)
    if fresh is None:
        print("  session overhead (fresh): missing session benchmark  <-- REGRESSION")
        status = 1
    elif fresh >= ceiling:
        print(
            f"  session overhead (fresh): {fresh:+.2%} "
            f"(ceiling {ceiling:.0%} at {tolerance:.0%} tolerance)  <-- REGRESSION"
        )
        status = 1
    else:
        print(
            f"  session overhead (fresh): {fresh:+.2%} "
            f"(ceiling {ceiling:.0%} at {tolerance:.0%} tolerance)"
        )
    return status


def check_service_overhead(
    summary: dict, baseline: dict, gate: float, tolerance: float
) -> int:
    """Gate the service layer's cached-hit overhead at the baseline."""
    status = 0
    recorded = baseline.get("service_overhead")
    if recorded is None:
        print("  service overhead: baseline records none  <-- REGRESSION")
        status = 1
    elif recorded >= gate:
        print(
            f"  service overhead: baseline records {recorded:+.2%} "
            f"(gate < {gate:.0%})  <-- REGRESSION"
        )
        status = 1
    else:
        print(
            f"  service overhead: baseline records {recorded:+.2%} (gate < {gate:.0%})"
        )
    fresh = summary.get("service_overhead")
    ceiling = gate * (1.0 + tolerance)
    if fresh is None:
        print("  service overhead (fresh): missing service benchmark  <-- REGRESSION")
        status = 1
    elif fresh >= ceiling:
        print(
            f"  service overhead (fresh): {fresh:+.2%} "
            f"(ceiling {ceiling:.0%} at {tolerance:.0%} tolerance)  <-- REGRESSION"
        )
        status = 1
    else:
        print(
            f"  service overhead (fresh): {fresh:+.2%} "
            f"(ceiling {ceiling:.0%} at {tolerance:.0%} tolerance)"
        )
    return status


def check_openloop_overhead(
    summary: dict, baseline: dict, gate: float, tolerance: float
) -> int:
    """Gate the arrival layer's per-completion cost at the baseline."""
    status = 0
    recorded = baseline.get("openloop_overhead")
    if recorded is None:
        print("  open-loop overhead: baseline records none  <-- REGRESSION")
        status = 1
    elif recorded >= gate:
        print(
            f"  open-loop overhead: baseline records {recorded:+.2%} "
            f"(gate < {gate:.0%})  <-- REGRESSION"
        )
        status = 1
    else:
        print(
            f"  open-loop overhead: baseline records {recorded:+.2%} (gate < {gate:.0%})"
        )
    fresh = summary.get("openloop_overhead")
    ceiling = gate * (1.0 + tolerance)
    if fresh is None:
        print("  open-loop overhead (fresh): missing sweep benchmark  <-- REGRESSION")
        status = 1
    elif fresh >= ceiling:
        print(
            f"  open-loop overhead (fresh): {fresh:+.2%} "
            f"(ceiling {ceiling:.0%} at {tolerance:.0%} tolerance)  <-- REGRESSION"
        )
        status = 1
    else:
        print(
            f"  open-loop overhead (fresh): {fresh:+.2%} "
            f"(ceiling {ceiling:.0%} at {tolerance:.0%} tolerance)"
        )
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_OUT,
        help="committed baseline to compare against (default BENCH_engine.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="allowed fractional median slowdown (default 0.5, i.e. 1.5x)",
    )
    parser.add_argument(
        "--grid-speedup",
        type=float,
        default=10.0,
        help="required end-to-end grid speedup at the recorded baseline",
    )
    parser.add_argument(
        "--session-overhead",
        type=float,
        default=0.02,
        help="allowed session-layer grid overhead at the recorded baseline",
    )
    parser.add_argument(
        "--service-overhead",
        type=float,
        default=0.5,
        help="allowed service-layer cached-hit overhead at the recorded baseline",
    )
    parser.add_argument(
        "--openloop-overhead",
        type=float,
        default=0.5,
        help="allowed open-loop per-completion overhead at the recorded baseline",
    )
    args = parser.parse_args()

    if not args.baseline.exists():
        print(f"baseline {args.baseline} not found", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        raw = run_microbench(Path(tmp) / "raw.json")
    summary = condense(raw)
    print(
        f"bench guard: comparing against {args.baseline} "
        f"(tolerance {args.tolerance:.0%})"
    )
    status = compare(summary, args.baseline, args.tolerance)
    baseline_doc = json.loads(args.baseline.read_text(encoding="utf-8"))
    grid_status = check_grid_speedup(
        summary, baseline_doc, args.grid_speedup, args.tolerance
    )
    session_status = check_session_overhead(
        summary, baseline_doc, args.session_overhead, args.tolerance
    )
    service_status = check_service_overhead(
        summary, baseline_doc, args.service_overhead, args.tolerance
    )
    openloop_status = check_openloop_overhead(
        summary, baseline_doc, args.openloop_overhead, args.tolerance
    )
    return status or grid_status or session_status or service_status or openloop_status


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Regenerate the golden arbitration traces under tests/golden/.

Each golden scenario (declared in ``repro.observability.golden``) runs
afresh and its canonical JSONL encoding replaces the checked-in file.
For every file that changes, a unified diff of the drifted lines is
printed so an intentional engine change can be reviewed line by line
before committing the new goldens.

Usage::

    PYTHONPATH=src python scripts/regen_golden.py [--check] [NAME ...]

``--check`` compares without writing and exits non-zero on any drift —
the same comparison ``tests/conformance/test_golden_traces.py`` makes,
usable as a pre-commit probe.  Naming scenarios limits the run to them.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.observability.golden import golden_names, golden_trace_lines  # noqa: E402

GOLDEN_DIR = ROOT / "tests" / "golden"


def trace_diff(name: str, old: list, new: list) -> str:
    """Unified diff between a stored golden trace and a fresh run."""
    return "\n".join(
        difflib.unified_diff(
            old, new,
            fromfile=f"tests/golden/{name}.jsonl (stored)",
            tofile=f"tests/golden/{name}.jsonl (regenerated)",
            lineterm="",
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        default=None,
        help="golden scenarios to regenerate (default: all)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare only; exit 1 if any stored trace drifted",
    )
    args = parser.parse_args(argv)
    names = args.names or list(golden_names())
    unknown = sorted(set(names) - set(golden_names()))
    if unknown:
        parser.error(f"unknown golden scenario(s) {unknown}; have {list(golden_names())}")

    drifted = 0
    for name in names:
        path = GOLDEN_DIR / f"{name}.jsonl"
        new = golden_trace_lines(name)
        old = path.read_text(encoding="utf-8").splitlines() if path.exists() else None
        if old == new:
            print(f"{name}: unchanged ({len(new)} events)")
            continue
        drifted += 1
        if old is None:
            print(f"{name}: new golden ({len(new)} events)")
        else:
            print(f"{name}: DRIFTED ({len(old)} -> {len(new)} events)")
            print(trace_diff(name, old, new))
        if not args.check:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text("\n".join(new) + "\n", encoding="utf-8")
            print(f"{name}: wrote {path.relative_to(ROOT)}")
    if args.check and drifted:
        print(f"{drifted} golden trace(s) drifted", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Generate docs/api.md: an API reference from the live docstrings.

Walks every public module of :mod:`repro`, extracts the module
docstring's first paragraph plus each public class/function signature
and summary line, and writes a single browsable markdown page.  Run
after any API change:

    python scripts/generate_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import repro

OUT = Path(__file__).resolve().parent.parent / "docs" / "api.md"


def _first_paragraph(doc: str) -> str:
    lines = []
    for line in (doc or "").strip().splitlines():
        if not line.strip():
            break
        lines.append(line.strip())
    return " ".join(lines)


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(…)"


def _public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [name for name in vars(module) if not name.startswith("_")]
    for name in names:
        member = getattr(module, name, None)
        if member is None:
            continue
        if inspect.ismodule(member):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented where it is defined
        yield name, member


def _document_class(name, cls, out):
    out.append(f"#### `{name}{_signature(cls.__init__)}`\n")
    out.append(_first_paragraph(inspect.getdoc(cls)) + "\n")
    methods = []
    for member_name, member in inspect.getmembers(cls):
        if member_name.startswith("_"):
            continue
        if inspect.isfunction(member) and member.__qualname__.startswith(
            cls.__name__ + "."
        ):
            methods.append(
                f"- `{member_name}{_signature(member)}` — "
                f"{_first_paragraph(inspect.getdoc(member))}"
            )
        elif isinstance(member, property) and (member.fget.__qualname__.startswith(cls.__name__ + ".")):
            methods.append(
                f"- `{member_name}` *(property)* — "
                f"{_first_paragraph(inspect.getdoc(member))}"
            )
    out.extend(methods)
    if methods:
        out.append("")


def main() -> None:
    out = [
        "# API reference",
        "",
        "Generated from docstrings by `scripts/generate_api_docs.py`; do",
        "not edit by hand.",
        "",
    ]
    modules = sorted(
        module_info.name
        for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro.")
        if not module_info.ispkg
    )
    packages = sorted(
        {name.rsplit(".", 1)[0] for name in modules if name.count(".") > 1}
    )
    for package in ["repro"] + packages:
        package_module = importlib.import_module(package)
        out.append(f"## `{package}`\n")
        out.append(_first_paragraph(inspect.getdoc(package_module)) + "\n")
        for module_name in modules:
            if module_name.rsplit(".", 1)[0] != package:
                continue
            module = importlib.import_module(module_name)
            out.append(f"### `{module_name}`\n")
            out.append(_first_paragraph(inspect.getdoc(module)) + "\n")
            for name, member in _public_members(module):
                if inspect.isclass(member):
                    _document_class(name, member, out)
                elif inspect.isfunction(member):
                    out.append(
                        f"#### `{name}{_signature(member)}`\n"
                    )
                    out.append(_first_paragraph(inspect.getdoc(member)) + "\n")
    OUT.write_text("\n".join(out) + "\n", encoding="utf-8")
    print(f"wrote {OUT} ({len(out)} blocks)")


if __name__ == "__main__":
    main()

"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch library failures with a single ``except`` clause while
still letting genuine programming errors (``TypeError`` and friends from
misuse of the standard library) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "ProtocolError",
    "ArbitrationError",
    "NoUniqueWinnerError",
    "SweepExecutionError",
    "SignalError",
    "StatisticsError",
    "CancelledRunError",
    "DeadlineExceededError",
    "ServiceError",
    "JobRejectedError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation or experiment was configured with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class ProtocolError(ReproError):
    """An arbitration protocol was driven through an illegal transition.

    Examples: granting the bus to an agent that never requested it, or an
    agent issuing a second request while one is already outstanding on a
    single-outstanding-request arbiter.
    """


class ArbitrationError(ProtocolError):
    """An arbitration round produced an impossible outcome."""


class NoUniqueWinnerError(ArbitrationError):
    """An arbitration failed to identify exactly one winner.

    Raised when two agents apply the same arbitration number (their
    replicated protocol state has diverged, §3.1's rotating-priority
    failure mode) or when a line fault masks every asserted pattern.
    The bus watchdog (:class:`repro.bus.watchdog.BusWatchdog`) catches
    this and attempts bounded re-arbitration; without a watchdog it
    propagates and ends the run.
    """


class SweepExecutionError(ReproError):
    """A sweep cell failed to execute even after being retried.

    Carries the per-cell diagnostics collected by the sweep executor so
    a failed grid names exactly which cells died and why.
    """


class SignalError(ReproError):
    """A bus-line or wired-OR signal model was misused."""


class CancelledRunError(ReproError):
    """An orchestrated run was cancelled cooperatively mid-flight.

    Raised by :meth:`repro.session.control.RunControl.check` at the
    session layer's cancellation points; callers that installed the
    control (the service's deadline enforcement, an interactive abort)
    catch it and account the partial work.
    """


class DeadlineExceededError(CancelledRunError):
    """A run's wall-clock deadline expired before it finished."""


class ServiceError(ReproError):
    """The arbitration service was misused or a job has no usable answer."""


class JobRejectedError(ServiceError):
    """A submission was refused at admission (backpressure or budget).

    Carries ``retry_after`` — the backpressure hint, in seconds — when
    the rejection was a full queue rather than a budget violation.
    """

    def __init__(self, message: str, retry_after: "float | None" = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class StatisticsError(ReproError):
    """An output-analysis routine was given unusable data."""

"""The distributed round-robin protocol (§3.1 of the paper).

The protocol implements *true* round-robin scheduling — identical to a
central round-robin arbiter — on the parallel contention arbiter, using
only the statically assigned identities plus one recorded value: the
identity of the most recent arbitration winner.

The key observation: if agent ``j`` won the previous arbitration, the
round-robin scan order for the next arbitration is ``j-1, j-2, …, 1, N,
N-1, …, j``.  The maximum-finding hardware realises exactly this scan if
agents with identities *below* the previous winner are given priority over
agents with identities at or above it.  The three implementations differ
only in how that priority is expressed on the bus:

1. **RR-priority bit** (one extra line): every requester competes; each
   prepends a most-significant bit set to 1 iff ``my_id < last_winner``.
2. **Low-request line** (one extra line): requesters below the previous
   winner assert a shared *low-request* line; when it is high, only they
   compete.
3. **No extra line**: only requesters below the previous winner compete;
   an all-zero (empty) arbitration result causes every agent to record
   ``N+1`` as the winner and a second arbitration starts immediately, in
   which everybody competes.

All three produce the same winner sequence (verified by the test suite,
which also checks equivalence against the central round-robin oracle in
:mod:`repro.baselines.central`); they differ in line cost and in the
occasional extra arbitration pass of implementation 3.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.core.base import (
    ArbitrationOutcome,
    MaxFinder,
    Request,
    SingleOutstandingArbiter,
)
from repro.errors import ArbitrationError, ConfigurationError

__all__ = ["DistributedRoundRobin", "RRPriorityPolicy"]


class RRPriorityPolicy(enum.Enum):
    """How urgent (priority-class) requests interact with the RR scan.

    §3.1: with implementation 1, the RR-priority bit becomes the *second*
    most significant bit and a new true-priority bit is prepended.  Agents
    may then either ignore the RR protocol for urgent requests (always
    setting the RR bit) or follow it, giving round-robin service *within*
    the priority class.
    """

    #: Urgent requests always set the RR bit: fixed-priority among equals.
    IGNORE_RR = "ignore-rr"
    #: Urgent requests follow the RR rule too: round-robin within class.
    RR_WITHIN_CLASS = "rr-within-class"


class DistributedRoundRobin(SingleOutstandingArbiter):
    """Distributed RR arbiter with selectable hardware implementation.

    Parameters
    ----------
    num_agents:
        Number of agents (identities 1..N).
    implementation:
        1, 2 or 3 — see the module docstring.
    priority_policy:
        Treatment of urgent requests (only meaningful when the workload
        issues them).
    max_finder:
        Maximum-finding strategy; defaults to the direct fast path.

    Notes
    -----
    The recorded previous winner starts at 0 for implementations 1 and 2
    (first arbitration degenerates to fixed priority: nobody is "below"
    winner 0) and at ``N+1`` for implementation 3 (everybody is below it,
    so the first arbitration needs no second pass).  The paper leaves the
    initial value to the system reset logic; any choice affects only the
    first arbitration after reset.
    """

    name = "distributed-rr"
    requires_winner_identity = True
    paper_section = "§3.1"

    def __init__(
        self,
        num_agents: int,
        implementation: int = 1,
        priority_policy: RRPriorityPolicy = RRPriorityPolicy.IGNORE_RR,
        record_priority_winners: bool = True,
        max_finder: Optional[MaxFinder] = None,
    ) -> None:
        super().__init__(num_agents, max_finder)
        if implementation not in (1, 2, 3):
            raise ConfigurationError(
                f"round-robin implementation must be 1, 2 or 3, got {implementation}"
            )
        self.implementation = implementation
        self.priority_policy = priority_policy
        #: §3.1 says agents record the winner of *every* arbitration,
        #: which includes urgent-class wins.  Reproduction finding: under
        #: steady urgent traffic from high identities that rule keeps
        #: resetting the RR scan to the top and starves low-identity
        #: normal traffic (see tests/test_priority_integration.py).
        #: Setting this False freezes the pointer across urgent wins,
        #: restoring round-robin fairness for the normal class — a
        #: one-comparator amendment a real implementation would want.
        self.record_priority_winners = record_priority_winners
        self.extra_lines = 1 if implementation in (1, 2) else 0
        self.last_winner = self._initial_last_winner()
        self.extra_passes = 0

    def _initial_last_winner(self) -> int:
        return (self.num_agents + 1) if self.implementation == 3 else 0

    # -- protocol -----------------------------------------------------------

    def has_waiting(self) -> bool:
        return bool(self._pending)

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        if not self._pending:
            raise ArbitrationError("round-robin arbitration started with no requests")
        self.arbitrations += 1
        if self.implementation == 1:
            outcome = self._arbitrate_priority_bit()
        elif self.implementation == 2:
            outcome = self._arbitrate_low_request_line()
        else:
            outcome = self._arbitrate_no_extra_line()
        # Every agent records the winner's static identity at the end of
        # the arbitration; it governs the *next* arbitration's scan.
        # Optionally skip recording urgent-class wins (see __init__).
        winner_was_priority = self._pending[outcome.winner].priority
        if self.record_priority_winners or not winner_was_priority:
            self.last_winner = outcome.winner
        return outcome

    def _rr_bit(self, agent_id: int) -> int:
        return 1 if agent_id < self.last_winner else 0

    def _effective_key(self, record: Request) -> int:
        """Compose the applied arbitration number for implementation 1.

        Layout (MSB first): [priority bit][RR bit][static identity].  The
        priority bit is only meaningful when urgent requests are in play;
        for a priority-free workload it is always 0 and the layout
        collapses to the paper's basic [RR bit][identity].
        """
        k = self.static_bits
        rr_bit = self._rr_bit(record.agent_id)
        if record.priority and self.priority_policy is RRPriorityPolicy.IGNORE_RR:
            rr_bit = 1
        priority_bit = 1 if record.priority else 0
        return (priority_bit << (k + 1)) | (rr_bit << k) | record.agent_id

    def _arbitrate_priority_bit(self) -> ArbitrationOutcome:
        keys = {
            agent: self._effective_key(record)
            for agent, record in self._pending.items()
        }
        winner = self.max_finder.find_max(keys)
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(keys),
            keys=keys,
        )

    def _split_competitors(self) -> Dict[str, Dict[int, Request]]:
        """Partition pending requests for implementations 2 and 3.

        Urgent requests ignore the RR gating and always compete (§2.4);
        non-urgent ones are gated on being below the previous winner.
        """
        urgent = {a: r for a, r in self._pending.items() if r.priority}
        normal = {a: r for a, r in self._pending.items() if not r.priority}
        low = {a: r for a, r in normal.items() if a < self.last_winner}
        return {"urgent": urgent, "normal": normal, "low": low}

    def _keyed_outcome(self, competitors: Dict[int, Request], rounds: int) -> ArbitrationOutcome:
        k = self.static_bits
        keys = {
            agent: ((1 if record.priority else 0) << k) | agent
            for agent, record in competitors.items()
        }
        winner = self.max_finder.find_max(keys)
        return ArbitrationOutcome(
            winner=winner,
            rounds=rounds,
            competitors=frozenset(keys),
            keys=keys,
        )

    def _arbitrate_low_request_line(self) -> ArbitrationOutcome:
        parts = self._split_competitors()
        # The low-request line is asserted iff some non-urgent requester is
        # below the previous winner; urgent requests compete regardless.
        if parts["low"]:
            competitors = dict(parts["low"])
            competitors.update(parts["urgent"])
        else:
            competitors = dict(self._pending)
        return self._keyed_outcome(competitors, rounds=1)

    def _arbitrate_no_extra_line(self) -> ArbitrationOutcome:
        parts = self._split_competitors()
        competitors = dict(parts["low"])
        competitors.update(parts["urgent"])
        rounds = 1
        if not competitors:
            # All-zero result: every agent records N+1 as the winner and a
            # second arbitration starts immediately, with nobody inhibited.
            self.last_winner = self.num_agents + 1
            self.extra_passes += 1
            rounds = 2
            competitors = dict(self._pending)
        return self._keyed_outcome(competitors, rounds=rounds)

    # -- introspection ------------------------------------------------------

    @property
    def identity_width(self) -> int:
        # priority bit + RR bit + static identity (implementation 1 layout,
        # which is the widest of the three).
        return self.static_bits + 2

    def reset(self) -> None:
        super().reset()
        self.last_winner = self._initial_last_winner()
        self.extra_passes = 0

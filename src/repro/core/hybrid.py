"""Hybrid RR/FCFS arbiter — the first future-work sketch of §5.

    "For example, the round robin protocol might be used only for
    requests that arrive at the same time, while the FCFS protocol is
    used for other requests."

Concretely: requests are ordered first-come first-serve by arrival tick
(the a-incr mechanism of FCFS strategy 2), but a *cohort* of requests
sharing one tick — which plain FCFS would serve in static-priority order,
the protocol's only source of unfairness — is served round-robin relative
to the recorded previous winner.

The composite arbitration number is [age counter][RR bit][static id]: the
counter dominates, so older cohorts win; within the oldest cohort the RR
bit plays exactly the role it plays in RR implementation 1.  The hybrid
therefore needs the winner identity on the bus (like RR) plus the a-incr
line (like FCFS strategy 2): two extra lines.

This is an extension beyond the paper's evaluated protocols; it is
exercised by the fairness test-suite and by the hybrid ablation bench.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.base import (
    ArbitrationOutcome,
    MaxFinder,
    Request,
    SingleOutstandingArbiter,
)
from repro.errors import ArbitrationError, ConfigurationError

__all__ = ["HybridArbiter"]


class HybridArbiter(SingleOutstandingArbiter):
    """FCFS across arrival ticks, round-robin within a tick cohort.

    Parameters
    ----------
    num_agents:
        Number of agents (identities 1..N).
    coincidence_window:
        Arrivals within this much time of the previous a-incr pulse share
        its tick and form a cohort (0.0: only simultaneous arrivals).
    """

    name = "hybrid-rr-fcfs"
    requires_winner_identity = True
    extra_lines = 2
    paper_section = "§5"

    def __init__(
        self,
        num_agents: int,
        coincidence_window: float = 0.0,
        max_finder: Optional[MaxFinder] = None,
    ) -> None:
        super().__init__(num_agents, max_finder)
        if coincidence_window < 0.0:
            raise ConfigurationError(
                f"coincidence_window must be >= 0, got {coincidence_window}"
            )
        self.coincidence_window = coincidence_window
        self.counter_bits = self.static_bits
        self.counter_modulus = 1 << self.counter_bits
        self.last_winner = 0
        self._tick = 0
        self._last_pulse_time = -math.inf

    def _on_request(self, record: Request, now: float) -> None:
        if now - self._last_pulse_time > self.coincidence_window:
            self._tick += 1
            self._last_pulse_time = now
        record.tick = self._tick

    def has_waiting(self) -> bool:
        return bool(self._pending)

    def _effective_key(self, record: Request) -> int:
        k = self.static_bits
        age = (self._tick - record.tick) % self.counter_modulus
        rr_bit = 1 if record.agent_id < self.last_winner else 0
        return (age << (k + 1)) | (rr_bit << k) | record.agent_id

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        if not self._pending:
            raise ArbitrationError("hybrid arbitration started with no requests")
        self.arbitrations += 1
        keys = {
            agent: self._effective_key(record)
            for agent, record in self._pending.items()
        }
        winner = self.max_finder.find_max(keys)
        self.last_winner = winner
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(keys),
            keys=keys,
        )

    @property
    def identity_width(self) -> int:
        return self.counter_bits + 1 + self.static_bits

    def reset(self) -> None:
        super().reset()
        self.last_winner = 0
        self._tick = 0
        self._last_pulse_time = -math.inf

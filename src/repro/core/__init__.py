"""The paper's primary contribution: distributed RR and FCFS arbiters.

- :class:`~repro.core.base.Arbiter` — the protocol interface driven by the
  bus model (request / start_arbitration / grant / release);
- :class:`~repro.core.round_robin.DistributedRoundRobin` — §3.1, all three
  hardware implementations;
- :class:`~repro.core.fcfs.DistributedFCFS` — §3.2, both counter-update
  strategies, multiple-outstanding-request support, and the three options
  for integrating priority traffic;
- :class:`~repro.core.hybrid.HybridArbiter` and
  :class:`~repro.core.adaptive.AdaptiveArbiter` — the §5 future-work
  sketches, implemented as documented extensions.
"""

from repro.core.adaptive import AdaptiveArbiter
from repro.core.base import (
    Arbiter,
    ArbitrationOutcome,
    DirectMaxFinder,
    MaxFinder,
    Request,
    WiredOrMaxFinder,
)
from repro.core.fcfs import DistributedFCFS, PriorityCounterPolicy
from repro.core.hybrid import HybridArbiter
from repro.core.round_robin import DistributedRoundRobin, RRPriorityPolicy

__all__ = [
    "Arbiter",
    "ArbitrationOutcome",
    "Request",
    "MaxFinder",
    "DirectMaxFinder",
    "WiredOrMaxFinder",
    "DistributedRoundRobin",
    "RRPriorityPolicy",
    "DistributedFCFS",
    "PriorityCounterPolicy",
    "HybridArbiter",
    "AdaptiveArbiter",
]

"""Arbiter interface and shared machinery.

An arbiter is the decision logic of a bus-arbitration protocol, factored
out of the timing model.  The bus simulator (:mod:`repro.bus`) drives it
through four calls:

``request(agent, now)``
    The agent asserts the shared bus-request line.
``start_arbitration(now)``
    An arbitration begins; the arbiter snapshots the competitors allowed
    by its protocol, resolves the winner through a maximum-finding
    mechanism, and returns an :class:`ArbitrationOutcome`.  Requests that
    arrive while the arbitration settles are *not* in the snapshot —
    exactly as on the real bus.
``grant(agent, now)``
    The winner's bus tenure begins (it releases the request line).
``release(agent, now)``
    The tenure ends.

Maximum finding is pluggable so the same protocol logic can run against a
direct ``max()`` (fast, used in performance runs) or against the full
wired-OR settle simulation of :mod:`repro.signals` (used in tests and
ablations to show the two are behaviourally identical).

Agent identities are the integers ``1..N`` — identity 0 is reserved by the
parallel contention arbiter to mean "nobody competed".
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional

from repro.errors import (
    ArbitrationError,
    ConfigurationError,
    NoUniqueWinnerError,
    ProtocolError,
)
from repro.signals.contention import ParallelContention

__all__ = [
    "Request",
    "ArbitrationOutcome",
    "MaxFinder",
    "DirectMaxFinder",
    "WiredOrMaxFinder",
    "Arbiter",
    "SingleOutstandingArbiter",
    "identity_bits",
]


def identity_bits(num_agents: int) -> int:
    """Bits needed for static identities ``1..num_agents`` (k of the paper)."""
    if num_agents < 1:
        raise ConfigurationError(f"need at least one agent, got {num_agents}")
    return max(1, math.ceil(math.log2(num_agents + 1)))


@dataclass
class Request:
    """One outstanding bus request.

    Attributes
    ----------
    agent_id:
        Static identity of the requesting agent (1..N).
    issue_time:
        Simulation time at which the request was issued.
    priority:
        Whether this is an urgent (priority-class) request (§2.4).
    counter:
        Protocol scratch state: the FCFS waiting-time counter, or unused.
    tick:
        Protocol scratch state: FCFS strategy-2 arrival tick.
    """

    agent_id: int
    issue_time: float
    priority: bool = False
    counter: int = 0
    tick: int = 0


@dataclass(frozen=True)
class ArbitrationOutcome:
    """Result of one arbitration.

    Attributes
    ----------
    winner:
        Agent id of the next bus master.
    rounds:
        Number of full arbitration passes consumed.  1 for every protocol
        except RR implementation 3, which occasionally needs an immediate
        second pass (§3.1).
    competitors:
        The agents whose arbitration numbers were on the lines.
    keys:
        The effective arbitration number each competitor applied —
        exposed for tests and for monitoring, mirroring the paper's point
        that the arbiter state is observable on the bus.
    """

    winner: int
    rounds: int
    competitors: FrozenSet[int]
    keys: Mapping[int, int] = field(default_factory=dict)


class MaxFinder(abc.ABC):
    """Strategy for selecting the maximum arbitration number."""

    @abc.abstractmethod
    def find_max(self, keys: Mapping[int, int]) -> int:
        """Return the agent id whose key is largest.

        ``keys`` maps agent id to the (unique) effective arbitration
        number the agent applies.
        """


class DirectMaxFinder(MaxFinder):
    """Resolve the maximum with a plain ``max()`` — the fast path."""

    def find_max(self, keys: Mapping[int, int]) -> int:
        if not keys:
            raise ArbitrationError("arbitration started with no competitors")
        return max(keys, key=lambda agent: (keys[agent], agent))


class WiredOrMaxFinder(MaxFinder):
    """Resolve the maximum by running the wired-OR settle process.

    Parameters
    ----------
    width:
        Arbitration-line count; must cover the widest key the protocol
        can produce (the owning arbiter knows this as ``identity_width``).
    """

    def __init__(self, width: int) -> None:
        self._contention = ParallelContention(width)
        self.total_rounds = 0
        self.resolutions = 0

    def find_max(self, keys: Mapping[int, int]) -> int:
        if not keys:
            raise ArbitrationError("arbitration started with no competitors")
        by_key: Dict[int, int] = {}
        for agent, key in keys.items():
            if key in by_key:
                raise NoUniqueWinnerError(
                    f"agents {by_key[key]} and {agent} applied the same "
                    f"arbitration number {key}"
                )
            by_key[key] = agent
        result = self._contention.resolve(by_key.keys())
        self.total_rounds += result.rounds
        self.resolutions += 1
        return by_key[result.winner_identity]


class Arbiter(abc.ABC):
    """Abstract bus-arbitration protocol.

    Subclasses implement the eligibility and numbering rules of one
    protocol; the request bookkeeping and validation live here.
    """

    #: Human-readable protocol name, used in tables and reprs.
    name: str = "arbiter"

    #: Whether the protocol needs every agent to observe the winner's
    #: identity at the end of each arbitration (true for RR — it cannot
    #: run on binary-patterned lines without a winner broadcast, §3.1).
    requires_winner_identity: bool = False

    #: Number of extra bus lines beyond the k arbitration lines and the
    #: shared request line (documented cost of each implementation).
    extra_lines: int = 0

    #: Paper section (or citation) that introduces the protocol; the
    #: registry's :class:`~repro.protocols.registry.ProtocolSpec` entries
    #: must agree with this (cross-checked by the capability tests).
    paper_section: str = ""

    #: Whether the protocol supports r > 1 outstanding requests per
    #: agent (§3.2 extends only the FCFS arbiters this way).
    supports_outstanding: bool = False

    def __init__(self, num_agents: int, max_finder: Optional[MaxFinder] = None) -> None:
        if num_agents < 1:
            raise ConfigurationError(f"need at least one agent, got {num_agents}")
        self.num_agents = num_agents
        self.static_bits = identity_bits(num_agents)
        self.max_finder = max_finder if max_finder is not None else DirectMaxFinder()
        self.arbitrations = 0

    # -- interface driven by the bus model ---------------------------------

    @abc.abstractmethod
    def request(self, agent_id: int, now: float, priority: bool = False) -> Request:
        """Agent ``agent_id`` asserts the bus-request line at time ``now``."""

    @abc.abstractmethod
    def has_waiting(self) -> bool:
        """Whether any agent is currently eligible to compete."""

    @abc.abstractmethod
    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        """Snapshot competitors, resolve the winner, update protocol state."""

    @abc.abstractmethod
    def grant(self, agent_id: int, now: float) -> Request:
        """Begin the agent's bus tenure; returns the request being served."""

    def release(self, agent_id: int, now: float) -> None:
        """End the agent's bus tenure.  Default: no protocol action."""

    def reset(self) -> None:
        """Forget all dynamic state (requests, counters, batch membership)."""
        self.arbitrations = 0

    # -- introspection ------------------------------------------------------

    @property
    def identity_width(self) -> int:
        """Total width in bits of the effective arbitration numbers."""
        return self.static_bits

    def _validate_agent(self, agent_id: int) -> None:
        if not 1 <= agent_id <= self.num_agents:
            raise ProtocolError(
                f"agent id {agent_id} outside 1..{self.num_agents} "
                f"(identity 0 is reserved)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_agents={self.num_agents})"


class SingleOutstandingArbiter(Arbiter):
    """Base for protocols where each agent has at most one pending request.

    This matches the paper's closed-system model (§4.1): a processor
    stalls on its bus request, so it cannot issue another until the first
    completes.  Subclasses manage *eligibility*; the pending-request table
    lives here.
    """

    def __init__(self, num_agents: int, max_finder: Optional[MaxFinder] = None) -> None:
        super().__init__(num_agents, max_finder)
        self._pending: Dict[int, Request] = {}

    def request(self, agent_id: int, now: float, priority: bool = False) -> Request:
        self._validate_agent(agent_id)
        if agent_id in self._pending:
            raise ProtocolError(
                f"agent {agent_id} issued a second request while one is pending; "
                f"{type(self).__name__} allows one outstanding request per agent"
            )
        record = Request(agent_id=agent_id, issue_time=now, priority=priority)
        self._pending[agent_id] = record
        self._on_request(record, now)
        return record

    def _on_request(self, record: Request, now: float) -> None:
        """Protocol hook invoked after a request is registered."""

    def grant(self, agent_id: int, now: float) -> Request:
        self._validate_agent(agent_id)
        try:
            record = self._pending.pop(agent_id)
        except KeyError:
            raise ProtocolError(
                f"granted bus to agent {agent_id}, which has no pending request"
            ) from None
        self._on_grant(record, now)
        return record

    def _on_grant(self, record: Request, now: float) -> None:
        """Protocol hook invoked after a grant removes the request."""

    def pending_requests(self) -> Mapping[int, Request]:
        """Read-only view of the pending-request table."""
        return dict(self._pending)

    def waiting_agents(self) -> FrozenSet[int]:
        """All agents with a pending request (eligible or not)."""
        return frozenset(self._pending)

    def reset(self) -> None:
        super().reset()
        self._pending.clear()

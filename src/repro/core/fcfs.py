"""The distributed first-come first-serve protocol (§3.2 of the paper).

Each agent's effective arbitration number is the concatenation of two
parts: the most-significant part is a **waiting-time counter** and the
least-significant part is the statically assigned identity.  The counter
is reset to 0 when a new request is issued and incremented on predefined
global events while the request waits, so the maximum-finding hardware
selects the request that has waited longest — FCFS, up to the resolution
of the counting events.  Two counter-update strategies are modelled:

1. **Lost-arbitration counting** — a request's counter increments each
   time an arbitration completes without serving it.  Requests issued
   between the same pair of arbitrations tie and fall back to static
   priority order; the practical unfairness of this coarseness is the
   subject of the paper's Table 4.1.
2. **a-incr line counting** — one extra bus line is pulsed by every newly
   arriving request; all waiting requests increment on each pulse.  Ties
   are confined to arrivals within one line-propagation window
   (``coincidence_window``), so scheduling is nearly exact FCFS.

The counters are ``ceil(log2 N)``-bit modulo counters: with a single
outstanding request per agent at most ``N - 1`` increments can occur
while a request waits (at most one per other agent), so the counter never
wraps.  With ``r`` outstanding requests per agent the paper adds
``ceil(log2 r)`` bits, preserving the no-wrap guarantee; both are
implemented here and the wrap-free invariant is property-tested.
Priority traffic can force genuine overflow, which the paper addresses
with three options — all three are implemented (see
:class:`PriorityCounterPolicy`).
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import Deque, Dict, Optional

from repro.core.base import (
    Arbiter,
    ArbitrationOutcome,
    MaxFinder,
    Request,
)
from repro.errors import ArbitrationError, ConfigurationError, ProtocolError

__all__ = ["DistributedFCFS", "PriorityCounterPolicy"]


class PriorityCounterPolicy(enum.Enum):
    """§3.2's three options for updating counters under priority traffic.

    Without priority requests the options coincide; they differ only in
    how non-priority waiting-time counters react to urgent traffic.
    """

    #: Increment on every event regardless of class; counters may
    #: genuinely overflow (wrap to zero) under heavy priority traffic.
    OVERFLOW = "overflow"
    #: Strategy 1 only: increment only when the winning identity's
    #: priority bit matches the request's own class.
    MATCH_WINNER = "match-winner"
    #: Strategy 2 only: separate a-incr / a-incr-priority lines, one tick
    #: stream per class.
    DUAL_LINES = "dual-lines"


class DistributedFCFS(Arbiter):
    """Distributed FCFS arbiter with selectable counting strategy.

    Parameters
    ----------
    num_agents:
        Number of agents (identities 1..N).
    strategy:
        1 = lost-arbitration counting, 2 = a-incr line counting.
    max_outstanding:
        ``r`` of §3.2 — outstanding requests allowed per agent.  The
        counter gains ``ceil(log2 r)`` bits, exactly as the paper states.
    coincidence_window:
        Strategy 2 only: requests arriving within this much time of the
        previous arrival share its tick (the a-incr pulse they raced).
        0.0 means only exactly simultaneous arrivals tie.
    priority_policy:
        Counter behaviour under priority traffic.
    max_finder:
        Maximum-finding strategy; defaults to the direct fast path.
    """

    name = "distributed-fcfs"
    requires_winner_identity = False
    paper_section = "§3.2"
    supports_outstanding = True

    def __init__(
        self,
        num_agents: int,
        strategy: int = 1,
        max_outstanding: int = 1,
        coincidence_window: float = 0.0,
        priority_policy: PriorityCounterPolicy = PriorityCounterPolicy.OVERFLOW,
        max_finder: Optional[MaxFinder] = None,
    ) -> None:
        super().__init__(num_agents, max_finder)
        if strategy not in (1, 2):
            raise ConfigurationError(f"FCFS strategy must be 1 or 2, got {strategy}")
        if max_outstanding < 1:
            raise ConfigurationError(
                f"max_outstanding must be >= 1, got {max_outstanding}"
            )
        if coincidence_window < 0.0:
            raise ConfigurationError(
                f"coincidence_window must be >= 0, got {coincidence_window}"
            )
        if priority_policy is PriorityCounterPolicy.MATCH_WINNER and strategy != 1:
            raise ConfigurationError(
                "MATCH_WINNER is a strategy-1 counter policy (§3.2)"
            )
        if priority_policy is PriorityCounterPolicy.DUAL_LINES and strategy != 2:
            raise ConfigurationError(
                "DUAL_LINES is a strategy-2 counter policy (§3.2)"
            )
        self.strategy = strategy
        self.max_outstanding = max_outstanding
        self.coincidence_window = coincidence_window
        self.priority_policy = priority_policy
        self.extra_lines = (
            0 if strategy == 1
            else (2 if priority_policy is PriorityCounterPolicy.DUAL_LINES else 1)
        )

        #: Counter bits: ceil(log2 N) for the base protocol plus
        #: ceil(log2 r) for multiple outstanding requests (§3.2).
        self.counter_bits = self.static_bits + (
            math.ceil(math.log2(max_outstanding)) if max_outstanding > 1 else 0
        )
        self.counter_modulus = 1 << self.counter_bits
        #: Diagnostic: how many times a counter genuinely wrapped.
        self.counter_wraps = 0

        self._queues: Dict[int, Deque[Request]] = {}
        # Strategy 2 tick state, one stream per priority class under
        # DUAL_LINES, a single shared stream otherwise.
        self._tick: Dict[bool, int] = {False: 0, True: 0}
        self._last_pulse_time: Dict[bool, float] = {False: -math.inf, True: -math.inf}

    # -- request intake -----------------------------------------------------

    def request(self, agent_id: int, now: float, priority: bool = False) -> Request:
        self._validate_agent(agent_id)
        queue = self._queues.setdefault(agent_id, deque())
        if len(queue) >= self.max_outstanding:
            raise ProtocolError(
                f"agent {agent_id} exceeded max_outstanding={self.max_outstanding}"
            )
        record = Request(agent_id=agent_id, issue_time=now, priority=priority)
        if self.strategy == 2:
            record.tick = self._pulse_a_incr(now, priority)
        queue.append(record)
        return record

    def _pulse_a_incr(self, now: float, priority: bool) -> int:
        """Assert the a-incr line; returns the arrival tick for the request.

        A request senses the line before pulsing: if the previous pulse on
        its class's line is still propagating (within the coincidence
        window), the new request shares that tick instead of raising a new
        pulse — this is exactly the tie the paper describes.
        """
        stream = priority if self.priority_policy is PriorityCounterPolicy.DUAL_LINES else False
        if now - self._last_pulse_time[stream] > self.coincidence_window:
            self._tick[stream] += 1
            self._last_pulse_time[stream] = now
        return self._tick[stream]

    # -- arbitration --------------------------------------------------------

    def has_waiting(self) -> bool:
        return any(self._queues.values())

    def _competing_request(self, agent_id: int) -> Request:
        """The request an agent applies to the lines: its oldest."""
        return self._queues[agent_id][0]

    def _counter_value(self, record: Request) -> int:
        """Current waiting-time counter of a request, with modular wrap."""
        if self.strategy == 1:
            return record.counter % self.counter_modulus
        stream = (
            record.priority
            if self.priority_policy is PriorityCounterPolicy.DUAL_LINES
            else False
        )
        elapsed = self._tick[stream] - record.tick
        if elapsed >= self.counter_modulus:
            self.counter_wraps += 1
        return elapsed % self.counter_modulus

    def _effective_key(self, record: Request) -> int:
        """[priority bit][waiting-time counter][static identity]."""
        k = self.static_bits
        priority_bit = 1 if record.priority else 0
        counter = self._counter_value(record)
        return (priority_bit << (self.counter_bits + k)) | (counter << k) | record.agent_id

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        competitors = {
            agent: self._competing_request(agent)
            for agent, queue in self._queues.items()
            if queue
        }
        if not competitors:
            raise ArbitrationError("FCFS arbitration started with no requests")
        self.arbitrations += 1
        keys = {
            agent: self._effective_key(record)
            for agent, record in competitors.items()
        }
        winner = self.max_finder.find_max(keys)
        if self.strategy == 1:
            self._count_losses(competitors, winner)
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(keys),
            keys=keys,
        )

    def _count_losses(self, competitors: Dict[int, Request], winner: int) -> None:
        """Strategy 1: losing requests increment their counters.

        Every waiting request of a losing agent observed the arbitration,
        so all of them count it, not only the one on the lines.  Under
        MATCH_WINNER the increment additionally requires the winning
        identity's priority bit to match the request's own class.
        """
        winner_priority = competitors[winner].priority
        winning_record = self._queues[winner][0]
        for queue in self._queues.values():
            for record in queue:
                if record is winning_record:
                    continue
                if (
                    self.priority_policy is PriorityCounterPolicy.MATCH_WINNER
                    and record.priority != winner_priority
                ):
                    continue
                record.counter += 1
                if record.counter >= self.counter_modulus:
                    self.counter_wraps += 1

    # -- grant / release ----------------------------------------------------

    def grant(self, agent_id: int, now: float) -> Request:
        self._validate_agent(agent_id)
        queue = self._queues.get(agent_id)
        if not queue:
            raise ProtocolError(
                f"granted bus to agent {agent_id}, which has no pending request"
            )
        return queue.popleft()

    # -- introspection ------------------------------------------------------

    @property
    def identity_width(self) -> int:
        return self.static_bits + self.counter_bits + 1

    def pending_count(self, agent_id: int) -> int:
        """Outstanding requests of one agent."""
        return len(self._queues.get(agent_id, ()))

    def pending_requests_counter(self, agent_id: int) -> int:
        """Current waiting-time counter of the agent's oldest request.

        This is the counter value the agent would apply to the lines in
        the next arbitration — observable bus state, per the paper's
        monitorability argument.
        """
        queue = self._queues.get(agent_id)
        if not queue:
            raise ProtocolError(f"agent {agent_id} has no pending request")
        return self._counter_value(queue[0])

    def waiting_agents(self):
        """Agents with at least one pending request."""
        return frozenset(a for a, q in self._queues.items() if q)

    def reset(self) -> None:
        super().reset()
        self._queues.clear()
        self._tick = {False: 0, True: 0}
        self._last_pulse_time = {False: -math.inf, True: -math.inf}
        self.counter_wraps = 0

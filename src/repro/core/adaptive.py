"""Adaptive arbiter — the second future-work sketch of §5.

    "It may also be possible to design an adaptive scheme that uses the
    history of request patterns to optimize its behavior."

The paper does not specify the scheme; our instantiation targets the one
regime where the two protocols measurably differ (§4.5): *coincident*
arrivals.  FCFS resolves same-instant arrivals by static priority — its
only unfairness — while RR is immune to arrival phase.  The arbiter
therefore tracks, over a sliding window of recent requests, the fraction
that arrived coincident with another request; when that fraction exceeds
``rr_threshold`` it schedules round-robin, otherwise first-come
first-serve.

Both rule sets read the same physical state (arrival ticks and the
recorded previous winner), so switching modes between arbitrations needs
no state migration — the mode only changes which composite arbitration
number the agents apply.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

from repro.core.base import (
    ArbitrationOutcome,
    MaxFinder,
    Request,
    SingleOutstandingArbiter,
)
from repro.errors import ArbitrationError, ConfigurationError

__all__ = ["AdaptiveArbiter"]


class AdaptiveArbiter(SingleOutstandingArbiter):
    """Switches between RR and FCFS scheduling from arrival history.

    Parameters
    ----------
    num_agents:
        Number of agents (identities 1..N).
    coincidence_window:
        Arrivals within this much time of the previous arrival count as
        coincident and share an arrival tick.
    history:
        Number of recent requests over which the coincidence fraction is
        estimated.
    rr_threshold:
        Coincidence fraction at or above which the arbiter schedules
        round-robin instead of FCFS.
    """

    name = "adaptive-rr-fcfs"
    requires_winner_identity = True
    extra_lines = 2
    paper_section = "§5"

    def __init__(
        self,
        num_agents: int,
        coincidence_window: float = 1e-9,
        history: int = 64,
        rr_threshold: float = 0.25,
        max_finder: Optional[MaxFinder] = None,
    ) -> None:
        super().__init__(num_agents, max_finder)
        if coincidence_window < 0.0:
            raise ConfigurationError(
                f"coincidence_window must be >= 0, got {coincidence_window}"
            )
        if history < 1:
            raise ConfigurationError(f"history must be >= 1, got {history}")
        if not 0.0 <= rr_threshold <= 1.0:
            raise ConfigurationError(
                f"rr_threshold must be in [0, 1], got {rr_threshold}"
            )
        self.coincidence_window = coincidence_window
        self.history = history
        self.rr_threshold = rr_threshold
        self.counter_bits = self.static_bits
        self.counter_modulus = 1 << self.counter_bits
        self.last_winner = 0
        self._tick = 0
        self._last_pulse_time = -math.inf
        self._coincident: Deque[bool] = deque(maxlen=history)
        #: Diagnostics: arbitrations decided under each mode.
        self.rr_decisions = 0
        self.fcfs_decisions = 0

    def _on_request(self, record: Request, now: float) -> None:
        coincident = now - self._last_pulse_time <= self.coincidence_window
        if not coincident:
            self._tick += 1
            self._last_pulse_time = now
        record.tick = self._tick
        self._coincident.append(coincident)

    def has_waiting(self) -> bool:
        return bool(self._pending)

    @property
    def coincidence_fraction(self) -> float:
        """Recent fraction of requests that arrived coincident."""
        if not self._coincident:
            return 0.0
        return sum(self._coincident) / len(self._coincident)

    @property
    def mode(self) -> str:
        """The scheduling rule the next arbitration will use."""
        return "rr" if self.coincidence_fraction >= self.rr_threshold else "fcfs"

    def _effective_key(self, record: Request, rr_mode: bool) -> int:
        k = self.static_bits
        if rr_mode:
            rr_bit = 1 if record.agent_id < self.last_winner else 0
            return (rr_bit << k) | record.agent_id
        age = (self._tick - record.tick) % self.counter_modulus
        return (age << k) | record.agent_id

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        if not self._pending:
            raise ArbitrationError("adaptive arbitration started with no requests")
        self.arbitrations += 1
        rr_mode = self.mode == "rr"
        if rr_mode:
            self.rr_decisions += 1
        else:
            self.fcfs_decisions += 1
        keys = {
            agent: self._effective_key(record, rr_mode)
            for agent, record in self._pending.items()
        }
        winner = self.max_finder.find_max(keys)
        self.last_winner = winner
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(keys),
            keys=keys,
        )

    @property
    def identity_width(self) -> int:
        return self.counter_bits + self.static_bits

    def reset(self) -> None:
        super().reset()
        self.last_winner = 0
        self._tick = 0
        self._last_pulse_time = -math.inf
        self._coincident.clear()
        self.rr_decisions = 0
        self.fcfs_decisions = 0

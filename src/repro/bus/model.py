"""The bus system: wires agents, an arbiter and the timing rules together.

Timing rules (§4.1 of the paper):

- one bus; one master at a time; a tenure lasts ``transaction_time``;
- an arbitration pass lasts ``arbitration_time`` per round and runs
  *concurrently* with the current tenure: it starts as soon as there is at
  least one eligible request and neither an arbitration nor an unclaimed
  arbitration result is outstanding — i.e. at the start of every tenure
  when requests are waiting (the paper's rule), and immediately on arrival
  when a request finds the bus without a pending arbitration;
- when an arbitration completes while the bus is busy, its winner takes
  over at the end of the tenure with zero gap (fully overlapped overhead);
  when it completes on an idle bus, the winner is granted immediately;
- the *next* arbitration begins only when the winner's tenure begins:
  arbitration results are not pipelined more than one ahead.

The event ordering at a tenure boundary is: release, grant, arbitration
start, new requests — encoded in :class:`~repro.engine.event.EventPriority`
so simultaneous events resolve the way the hardware would.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bus.agent import BusAgent
from repro.bus.records import CompletionRecord
from repro.bus.timing import BusTiming
from repro.bus.watchdog import BusWatchdog
from repro.core.base import Arbiter, ArbitrationOutcome, Request
from repro.engine.event import EventPriority
from repro.engine.rng import RandomStreams
from repro.engine.simulator import Simulator
from repro.engine.trace import Trace
from repro.errors import NoUniqueWinnerError, SimulationError
from repro.faults.injector import FaultInjector
from repro.observability.events import ArbitrationEvent
from repro.observability.metrics import WAIT_BUCKETS, MetricsRegistry, MetricsSink
from repro.observability.sinks import EventSink
from repro.stats.collector import CompletionCollector
from repro.workload.scenarios import ScenarioSpec

__all__ = ["BusSystem"]


class BusSystem:
    """One shared bus, its arbiter, and a population of agents.

    Parameters
    ----------
    scenario:
        The agent population (workloads, loop modes).
    arbiter:
        The arbitration protocol; must be sized for ``scenario.num_agents``.
    collector:
        Sink for completion records; also provides the run's stop rule.
    timing:
        Bus timing constants.
    seed:
        Master seed for the per-agent random streams.
    trace:
        Optional event trace for debugging.
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; its
        plan's point faults are scheduled on this system's calendar and
        its line faults perturb every arbitration outcome.
    watchdog:
        Optional :class:`~repro.bus.watchdog.BusWatchdog`; recovers
        anomalous arbitrations by bounded re-arbitration.  Without one,
        an anomaly raises :class:`~repro.errors.NoUniqueWinnerError`.
    sink:
        Optional :class:`~repro.observability.sinks.EventSink`; every
        arbitration pass (clean or anomalous) is emitted to it as a
        structured :class:`~repro.observability.events.
        ArbitrationEvent`.  ``None`` (the default) skips event
        construction entirely.
    metrics:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`;
        arbitration-level series are fed from the event stream and
        per-agent waiting times are observed at each transaction end.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        arbiter: Arbiter,
        collector: CompletionCollector,
        timing: Optional[BusTiming] = None,
        seed: int = 0,
        trace: Optional[Trace] = None,
        injector: Optional[FaultInjector] = None,
        watchdog: Optional[BusWatchdog] = None,
        sink: Optional[EventSink] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if arbiter.num_agents < scenario.num_agents:
            raise SimulationError(
                f"arbiter sized for {arbiter.num_agents} agents cannot serve "
                f"scenario with {scenario.num_agents}"
            )
        self.scenario = scenario
        self.arbiter = arbiter
        self.collector = collector
        # Built per call: a signature-level BusTiming() default would be a
        # single module-level instance shared across every BusSystem.
        self.timing = timing if timing is not None else BusTiming()
        self.simulator = Simulator(trace=trace)
        self.streams = RandomStreams(seed)

        self.agents: Dict[int, BusAgent] = {}
        for spec in scenario.agents:
            agent = BusAgent(
                spec,
                rng=self.streams.agent_stream(spec.agent_id),
                issue=self._on_request,
                schedule=self._schedule_agent_action,
            )
            self.agents[spec.agent_id] = agent

        self.injector = injector
        self.watchdog = watchdog
        if watchdog is not None:
            watchdog.bind(collector)
        if injector is not None:
            injector.attach(self)

        self.sink = sink
        self.metrics = metrics
        #: Per-class/per-flow series are only emitted for the scenario
        #: families that have flows to distinguish (open-loop arrivals or
        #: a priority class), so every pre-existing closed-loop run's
        #: registry — and the goldens pinning it — stays byte-identical.
        self._flow_metrics = metrics is not None and any(
            spec.open_loop or spec.priority_fraction > 0.0
            for spec in scenario.agents
        )
        targets = []
        if sink is not None:
            targets.append(sink)
        if metrics is not None:
            targets.append(MetricsSink(metrics))
        #: Emission fan-out; empty means telemetry is fully disabled and
        #: the hot path pays one truthiness check per arbitration.
        self._event_sinks = tuple(targets)
        self._arb_index = 0

        self._busy = False
        self._master: Optional[int] = None
        self._master_request: Optional[Request] = None
        self._master_grant_time = 0.0
        self._arbitration_running = False
        self._arb_kick_scheduled = False
        self._retry_pending = False
        self._pending_winner: Optional[int] = None
        #: Time-weighted accounting for bus utilisation.
        self.busy_time = 0.0
        self.transactions = 0
        #: Arbitration outcomes observed, for protocol diagnostics.
        self.arbitration_log_limit = 0
        self.arbitration_log: List[ArbitrationOutcome] = []

    # -- agent-facing plumbing ----------------------------------------------

    def _schedule_agent_action(self, delay, action) -> None:
        self.simulator.schedule(delay, action, priority=EventPriority.REQUEST)

    def _on_request(self, agent_id: int, priority: bool) -> None:
        self.arbiter.request(agent_id, self.simulator.now, priority=priority)
        self._schedule_arb_kick()

    # -- arbitration / grant / release cycle ---------------------------------

    def _schedule_arb_kick(self) -> None:
        """Defer the arbitration start to the end of the current instant.

        Every trigger (request arrival, grant) schedules a zero-delay
        ``ARB_KICK`` event instead of starting the arbitration inline, so
        all requests issued at the same simulated instant are on the
        request line before the competitor snapshot is taken — exactly
        what the electrically-shared line does, and essential for the
        deterministic workloads of Table 4.5 where simultaneous requests
        are the norm rather than a measure-zero coincidence.
        """
        if (
            self._arb_kick_scheduled
            or self._arbitration_running
            or self._retry_pending
            or self._pending_winner is not None
        ):
            return
        self._arb_kick_scheduled = True
        # On a synchronous bus the arbitration-start control signal is
        # sampled at the next clock edge (§2.1); self-timed buses start
        # at the end of the current instant.
        delay = self.timing.delay_to_next_edge(self.simulator.now)
        self.simulator.schedule(
            delay,
            self._arb_kick,
            priority=EventPriority.ARB_KICK,
            label="arb-kick",
        )

    def _arb_kick(self) -> None:
        self._arb_kick_scheduled = False
        self._maybe_start_arbitration()

    def _maybe_start_arbitration(self) -> None:
        """Start an arbitration if one can usefully run now.

        Blocked while an arbitration is settling or an unclaimed winner
        exists (the hardware decides one master ahead, no further).
        """
        if (
            self._arbitration_running
            or self._retry_pending
            or self._pending_winner is not None
        ):
            return
        if not self.arbiter.has_waiting():
            return
        try:
            outcome = self.arbiter.start_arbitration(self.simulator.now)
        except NoUniqueWinnerError:
            # The protocol itself detected the collision (rotating-rr
            # with desynchronised replicas, a wired-OR duplicate).  One
            # settle period was burned finding out.  The competitor
            # snapshot was never returned; the waiting set is the best
            # observable approximation of what was on the lines.
            if self.watchdog is None:
                raise
            waiting = getattr(self.arbiter, "waiting_agents", None)
            self._on_arbitration_anomaly(
                "duplicate-winner",
                self.timing.arbitration_time,
                competitors=waiting() if waiting is not None else (),
            )
            return
        if self.arbitration_log_limit and len(self.arbitration_log) < self.arbitration_log_limit:
            self.arbitration_log.append(outcome)
        settle = self.timing.arbitration_time * outcome.rounds
        winner = outcome.winner
        deviated = False
        if self.injector is not None:
            perturbed = self.injector.perturb(outcome, self.simulator.now)
            if perturbed.anomaly is not None:
                if self.watchdog is None:
                    raise NoUniqueWinnerError(
                        f"line faults left the arbitration with "
                        f"{perturbed.anomaly} and no watchdog is attached"
                    )
                self._on_arbitration_anomaly(
                    perturbed.anomaly,
                    settle,
                    competitors=outcome.competitors,
                    rounds=outcome.rounds,
                )
                return
            if perturbed.deviated:
                deviated = True
                self.collector.record_deviation()
            winner = perturbed.winner
        if self._event_sinks:
            self._emit_arbitration(
                competitors=outcome.competitors,
                winner=winner,
                rounds=outcome.rounds,
                settle=settle,
                fault_tags=("deviated",) if deviated else (),
            )
        self._arbitration_running = True
        self.simulator.schedule(
            settle,
            lambda: self._arbitration_complete(winner),
            priority=EventPriority.ARBITRATION,
            label=f"arb-complete:{winner}",
        )

    def _emit_arbitration(
        self,
        competitors,
        winner: Optional[int],
        rounds: int,
        settle: float,
        anomaly: Optional[str] = None,
        fault_tags=(),
    ) -> None:
        """Build one :class:`ArbitrationEvent` and fan it out.

        ``watchdog_attempt`` is the anomaly count of the *open* episode
        before this pass resolved, so it is nonzero exactly on the
        passes the watchdog scheduled as retries — the invariant the
        telemetry property tests assert.  Callers on the anomaly path
        must emit *before* handing the anomaly to the watchdog.
        """
        event = ArbitrationEvent(
            index=self._arb_index,
            time=self.simulator.now,
            competitors=tuple(sorted(competitors)),
            winner=winner,
            rounds=rounds,
            settle_time=settle,
            anomaly=anomaly,
            watchdog_attempt=(
                self.watchdog.attempts if self.watchdog is not None else 0
            ),
            fault_tags=tuple(fault_tags),
        )
        self._arb_index += 1
        for sink in self._event_sinks:
            sink.emit(event)

    def _on_arbitration_anomaly(
        self, kind: str, settle: float, competitors=(), rounds: int = 1
    ) -> None:
        """Hand an anomalous arbitration to the watchdog.

        The settle time was spent regardless; the retry (if the budget
        allows one) runs after the watchdog's backed-off delay on top.
        Pending requests are untouched — the agents keep their request
        lines asserted, exactly as the hardware would.
        """
        if self._event_sinks:
            self._emit_arbitration(
                competitors=competitors,
                winner=None,
                rounds=rounds,
                settle=settle,
                anomaly=kind,
            )
        delay = self.watchdog.on_anomaly(kind, self.simulator.now)
        if delay is None:
            # Retry budget exhausted: permanent failure.  No further
            # arbitration runs; run()'s stop rule ends the simulation.
            return
        self._retry_pending = True
        self.simulator.schedule(
            settle + delay,
            self._watchdog_retry,
            priority=EventPriority.ARB_KICK,
            label=f"watchdog-retry:{kind}",
        )

    def _watchdog_retry(self) -> None:
        self._retry_pending = False
        self._maybe_start_arbitration()

    def _arbitration_complete(self, winner: int) -> None:
        self._arbitration_running = False
        self._pending_winner = winner
        if self._busy:
            return
        # Idle bus: hand over now (self-timed) or at the next clock edge
        # (synchronous).  Nothing else can seize the bus meanwhile — an
        # unclaimed winner blocks further arbitrations.
        delay = self.timing.delay_to_next_edge(self.simulator.now)
        if delay == 0.0:
            self._grant(winner)
        else:
            self.simulator.schedule(
                delay,
                lambda: self._grant(winner),
                priority=EventPriority.GRANT,
                label=f"grant-on-edge:{winner}",
            )

    def _grant(self, agent_id: int) -> None:
        now = self.simulator.now
        if self._busy:
            raise SimulationError(f"granting agent {agent_id} while bus is busy")
        self._pending_winner = None
        request = self.arbiter.grant(agent_id, now)
        if self.watchdog is not None:
            self.watchdog.on_clean_grant(now)
        self._busy = True
        self._master = agent_id
        self._master_request = request
        self._master_grant_time = now
        self.simulator.schedule(
            self.timing.transaction_time,
            self._transaction_end,
            priority=EventPriority.RELEASE,
            label=f"release:{agent_id}",
        )
        # Arbitration for the next master starts at the beginning of this
        # tenure whenever requests are waiting (§4.1).
        self._schedule_arb_kick()

    def _transaction_end(self) -> None:
        now = self.simulator.now
        agent_id = self._master
        request = self._master_request
        if agent_id is None or request is None:
            raise SimulationError("transaction ended with no master")
        self._busy = False
        self._master = None
        self._master_request = None
        self.busy_time += self.timing.transaction_time
        self.transactions += 1
        self.arbiter.release(agent_id, now)
        self.collector.record(
            CompletionRecord(
                agent_id=agent_id,
                issue_time=request.issue_time,
                grant_time=self._master_grant_time,
                completion_time=now,
                priority=request.priority,
            )
        )
        if self.metrics is not None:
            self.metrics.counter("completions").increment()
            self.metrics.histogram(f"wait.agent.{agent_id}", WAIT_BUCKETS).observe(
                now - request.issue_time
            )
            if self._flow_metrics:
                label = "urgent" if request.priority else "normal"
                self.metrics.counter(
                    f"flow.share.agent.{agent_id}.{label}"
                ).increment()
                self.metrics.histogram(f"wait.class.{label}", WAIT_BUCKETS).observe(
                    now - request.issue_time
                )
        self.agents[agent_id].on_completion(now)
        if self._pending_winner is not None:
            self._grant(self._pending_winner)
        else:
            # Covers a request that arrived while the previous arbitration
            # was still settling past the tenure end (bus briefly idle).
            self._schedule_arb_kick()

    # -- running --------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> None:
        """Start all agents and run until the collector has what it needs.

        With a watchdog attached, a permanent arbitration failure also
        ends the run — gracefully, with whatever statistics were
        gathered before the bus died (the robustness grid reports the
        failure itself, not a crash).
        """
        for agent in self.agents.values():
            agent.start()
        if self.watchdog is not None:
            watchdog = self.watchdog

            def stop() -> bool:
                return self.collector.satisfied() or watchdog.gave_up

        else:
            stop = self.collector.satisfied
        self.simulator.run(stop=stop, max_events=max_events)
        if not self.collector.satisfied():
            if self.watchdog is not None and self.watchdog.gave_up:
                return
            raise SimulationError(
                "simulation drained its event calendar before the collector "
                "was satisfied; the scenario generates too few requests"
            )

    def utilization(self) -> float:
        """Fraction of elapsed time the bus spent transferring data."""
        if self.simulator.now <= 0.0:
            return 0.0
        return self.busy_time / self.simulator.now

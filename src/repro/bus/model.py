"""The bus system: wires agents, an arbiter and the timing rules together.

Timing rules (§4.1 of the paper):

- one bus; one master at a time; a tenure lasts ``transaction_time``;
- an arbitration pass lasts ``arbitration_time`` per round and runs
  *concurrently* with the current tenure: it starts as soon as there is at
  least one eligible request and neither an arbitration nor an unclaimed
  arbitration result is outstanding — i.e. at the start of every tenure
  when requests are waiting (the paper's rule), and immediately on arrival
  when a request finds the bus without a pending arbitration;
- when an arbitration completes while the bus is busy, its winner takes
  over at the end of the tenure with zero gap (fully overlapped overhead);
  when it completes on an idle bus, the winner is granted immediately;
- the *next* arbitration begins only when the winner's tenure begins:
  arbitration results are not pipelined more than one ahead.

The event ordering at a tenure boundary is: release, grant, arbitration
start, new requests — encoded in :class:`~repro.engine.event.EventPriority`
so simultaneous events resolve the way the hardware would.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bus.agent import BusAgent
from repro.bus.records import CompletionRecord
from repro.bus.timing import BusTiming
from repro.core.base import Arbiter, ArbitrationOutcome, Request
from repro.engine.event import EventPriority
from repro.engine.rng import RandomStreams
from repro.engine.simulator import Simulator
from repro.engine.trace import Trace
from repro.errors import SimulationError
from repro.stats.collector import CompletionCollector
from repro.workload.scenarios import ScenarioSpec

__all__ = ["BusSystem"]


class BusSystem:
    """One shared bus, its arbiter, and a population of agents.

    Parameters
    ----------
    scenario:
        The agent population (workloads, loop modes).
    arbiter:
        The arbitration protocol; must be sized for ``scenario.num_agents``.
    collector:
        Sink for completion records; also provides the run's stop rule.
    timing:
        Bus timing constants.
    seed:
        Master seed for the per-agent random streams.
    trace:
        Optional event trace for debugging.
    """

    def __init__(
        self,
        scenario: ScenarioSpec,
        arbiter: Arbiter,
        collector: CompletionCollector,
        timing: Optional[BusTiming] = None,
        seed: int = 0,
        trace: Optional[Trace] = None,
    ) -> None:
        if arbiter.num_agents < scenario.num_agents:
            raise SimulationError(
                f"arbiter sized for {arbiter.num_agents} agents cannot serve "
                f"scenario with {scenario.num_agents}"
            )
        self.scenario = scenario
        self.arbiter = arbiter
        self.collector = collector
        # Built per call: a signature-level BusTiming() default would be a
        # single module-level instance shared across every BusSystem.
        self.timing = timing if timing is not None else BusTiming()
        self.simulator = Simulator(trace=trace)
        self.streams = RandomStreams(seed)

        self.agents: Dict[int, BusAgent] = {}
        for spec in scenario.agents:
            agent = BusAgent(
                spec,
                rng=self.streams.agent_stream(spec.agent_id),
                issue=self._on_request,
                schedule=self._schedule_agent_action,
            )
            self.agents[spec.agent_id] = agent

        self._busy = False
        self._master: Optional[int] = None
        self._master_request: Optional[Request] = None
        self._master_grant_time = 0.0
        self._arbitration_running = False
        self._arb_kick_scheduled = False
        self._pending_winner: Optional[int] = None
        #: Time-weighted accounting for bus utilisation.
        self.busy_time = 0.0
        self.transactions = 0
        #: Arbitration outcomes observed, for protocol diagnostics.
        self.arbitration_log_limit = 0
        self.arbitration_log: List[ArbitrationOutcome] = []

    # -- agent-facing plumbing ----------------------------------------------

    def _schedule_agent_action(self, delay, action) -> None:
        self.simulator.schedule(delay, action, priority=EventPriority.REQUEST)

    def _on_request(self, agent_id: int, priority: bool) -> None:
        self.arbiter.request(agent_id, self.simulator.now, priority=priority)
        self._schedule_arb_kick()

    # -- arbitration / grant / release cycle ---------------------------------

    def _schedule_arb_kick(self) -> None:
        """Defer the arbitration start to the end of the current instant.

        Every trigger (request arrival, grant) schedules a zero-delay
        ``ARB_KICK`` event instead of starting the arbitration inline, so
        all requests issued at the same simulated instant are on the
        request line before the competitor snapshot is taken — exactly
        what the electrically-shared line does, and essential for the
        deterministic workloads of Table 4.5 where simultaneous requests
        are the norm rather than a measure-zero coincidence.
        """
        if (
            self._arb_kick_scheduled
            or self._arbitration_running
            or self._pending_winner is not None
        ):
            return
        self._arb_kick_scheduled = True
        # On a synchronous bus the arbitration-start control signal is
        # sampled at the next clock edge (§2.1); self-timed buses start
        # at the end of the current instant.
        delay = self.timing.delay_to_next_edge(self.simulator.now)
        self.simulator.schedule(
            delay,
            self._arb_kick,
            priority=EventPriority.ARB_KICK,
            label="arb-kick",
        )

    def _arb_kick(self) -> None:
        self._arb_kick_scheduled = False
        self._maybe_start_arbitration()

    def _maybe_start_arbitration(self) -> None:
        """Start an arbitration if one can usefully run now.

        Blocked while an arbitration is settling or an unclaimed winner
        exists (the hardware decides one master ahead, no further).
        """
        if self._arbitration_running or self._pending_winner is not None:
            return
        if not self.arbiter.has_waiting():
            return
        outcome = self.arbiter.start_arbitration(self.simulator.now)
        if self.arbitration_log_limit and len(self.arbitration_log) < self.arbitration_log_limit:
            self.arbitration_log.append(outcome)
        self._arbitration_running = True
        settle = self.timing.arbitration_time * outcome.rounds
        self.simulator.schedule(
            settle,
            lambda: self._arbitration_complete(outcome),
            priority=EventPriority.ARBITRATION,
            label=f"arb-complete:{outcome.winner}",
        )

    def _arbitration_complete(self, outcome: ArbitrationOutcome) -> None:
        self._arbitration_running = False
        self._pending_winner = outcome.winner
        if self._busy:
            return
        # Idle bus: hand over now (self-timed) or at the next clock edge
        # (synchronous).  Nothing else can seize the bus meanwhile — an
        # unclaimed winner blocks further arbitrations.
        delay = self.timing.delay_to_next_edge(self.simulator.now)
        if delay == 0.0:
            self._grant(outcome.winner)
        else:
            self.simulator.schedule(
                delay,
                lambda: self._grant(outcome.winner),
                priority=EventPriority.GRANT,
                label=f"grant-on-edge:{outcome.winner}",
            )

    def _grant(self, agent_id: int) -> None:
        now = self.simulator.now
        if self._busy:
            raise SimulationError(f"granting agent {agent_id} while bus is busy")
        self._pending_winner = None
        request = self.arbiter.grant(agent_id, now)
        self._busy = True
        self._master = agent_id
        self._master_request = request
        self._master_grant_time = now
        self.simulator.schedule(
            self.timing.transaction_time,
            self._transaction_end,
            priority=EventPriority.RELEASE,
            label=f"release:{agent_id}",
        )
        # Arbitration for the next master starts at the beginning of this
        # tenure whenever requests are waiting (§4.1).
        self._schedule_arb_kick()

    def _transaction_end(self) -> None:
        now = self.simulator.now
        agent_id = self._master
        request = self._master_request
        if agent_id is None or request is None:
            raise SimulationError("transaction ended with no master")
        self._busy = False
        self._master = None
        self._master_request = None
        self.busy_time += self.timing.transaction_time
        self.transactions += 1
        self.arbiter.release(agent_id, now)
        self.collector.record(
            CompletionRecord(
                agent_id=agent_id,
                issue_time=request.issue_time,
                grant_time=self._master_grant_time,
                completion_time=now,
                priority=request.priority,
            )
        )
        self.agents[agent_id].on_completion(now)
        if self._pending_winner is not None:
            self._grant(self._pending_winner)
        else:
            # Covers a request that arrived while the previous arbitration
            # was still settling past the tenure end (bus briefly idle).
            self._schedule_arb_kick()

    # -- running --------------------------------------------------------------

    def run(self, max_events: Optional[int] = None) -> None:
        """Start all agents and run until the collector has what it needs."""
        for agent in self.agents.values():
            agent.start()
        self.simulator.run(stop=self.collector.satisfied, max_events=max_events)
        if not self.collector.satisfied():
            raise SimulationError(
                "simulation drained its event calendar before the collector "
                "was satisfied; the scenario generates too few requests"
            )

    def utilization(self) -> float:
        """Fraction of elapsed time the bus spent transferring data."""
        if self.simulator.now <= 0.0:
            return 0.0
        return self.busy_time / self.simulator.now

"""Textual bus-activity timeline (a logic-analyzer view).

The paper's third argument for the parallel contention arbiter is that
"the state of the arbiter is available and can be monitored on the bus
… useful for … diagnosing system failures" (§1).  This module is that
monitor for the simulator: it renders a run's completion records as a
waveform-style timeline showing who owned the bus when, where the gaps
were, and how long each request waited.

Example (three agents, saturated)::

    t=  0.0    1.0    2.0    3.0
    bus [..][A3][A2][A1][A3]...

Used by tests and handy in a REPL when debugging a protocol.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.bus.records import CompletionRecord
from repro.errors import ConfigurationError

__all__ = ["render_timeline", "ownership_segments"]


def ownership_segments(records: Iterable[CompletionRecord]) -> List[tuple]:
    """(start, end, agent_id) tenure triples, time-sorted.

    Raises
    ------
    ConfigurationError
        If two tenures overlap — one bus, one master at a time; an
        overlap means the records do not come from a single bus.
    """
    segments = sorted(
        (record.grant_time, record.completion_time, record.agent_id)
        for record in records
    )
    for (s1, e1, a1), (s2, __, a2) in zip(segments, segments[1:]):
        if s2 < e1 - 1e-9:
            raise ConfigurationError(
                f"overlapping bus tenures: agent {a1} [{s1}, {e1}) and "
                f"agent {a2} starting at {s2}"
            )
    return segments


def render_timeline(
    records: Sequence[CompletionRecord],
    start: float = 0.0,
    end: float = None,
    resolution: float = 0.5,
    width_limit: int = 160,
) -> str:
    """Render bus ownership over [start, end) as one text row per agent.

    Each character cell covers ``resolution`` time units; ``#`` marks a
    cell in which the agent held the bus, ``.`` marks waiting (request
    issued, not yet completed), space means thinking.
    """
    if resolution <= 0.0:
        raise ConfigurationError(f"resolution must be positive, got {resolution}")
    if not records:
        return "(no completions)"
    if end is None:
        end = max(record.completion_time for record in records)
    cells = int((end - start) / resolution)
    if cells <= 0:
        raise ConfigurationError(f"empty window [{start}, {end})")
    if cells > width_limit:
        cells = width_limit
        end = start + cells * resolution

    agents = sorted({record.agent_id for record in records})
    rows = {agent: [" "] * cells for agent in agents}
    for record in records:
        for phase, lo, hi in (
            (".", record.issue_time, record.grant_time),
            ("#", record.grant_time, record.completion_time),
        ):
            first = max(0, int((lo - start) / resolution))
            last = min(cells, int((hi - start) / resolution + 0.999999))
            for cell in range(first, last):
                cell_start = start + cell * resolution
                if cell_start >= lo - 1e-9 and cell_start < hi:
                    rows[record.agent_id][cell] = phase

    lines = [
        f"bus ownership, t = {start:g} .. {end:g} "
        f"({resolution:g} units/cell; '#' = tenure, '.' = waiting)"
    ]
    for agent in agents:
        lines.append(f"A{agent:<3d}|" + "".join(rows[agent]) + "|")
    return "\n".join(lines)

"""Line-level bus control-acquisition handshake.

§2.1 abstracts the control of an arbitration — starting it and handing
the bus to the winner — as "not important for the current study".  The
system simulator (:class:`repro.bus.model.BusSystem`) therefore models
control as three state variables.  This module builds the thing those
variables abstract: an explicit, per-agent state machine over the
control lines an IEEE-896-style backplane actually has,

- **BR** (bus request, wired-OR) — asserted by every agent that wants
  the bus and has not yet been granted it;
- **AP** (arbitration in progress, wired-OR) — asserted by the control
  logic for the duration of a contention on the arbitration lines;
- **BB** (bus busy, driven by the master) — asserted from grant to the
  end of the tenure.

Agent state machine::

    IDLE ── want bus ──▶ REQUESTING (assert BR)
    REQUESTING ── AP rises with us competing ──▶ COMPETING
    COMPETING ── AP falls, we lost ──▶ REQUESTING
    COMPETING ── AP falls, we won ──▶ PENDING (release BR)
    PENDING ── BB falls (or bus already idle) ──▶ MASTER (assert BB)
    MASTER ── tenure over ──▶ IDLE (release BB)

The control rules are exactly the §4.1 timing model: AP rises whenever
BR is high and no arbitration or unclaimed winner is outstanding; AP
stays up for the arbitration time; the winner seizes BB the instant it
falls (overlapped arbitration) or when AP falls on an idle bus.

:class:`HandshakeBus` runs this machine on the discrete-event engine
and is *validated against* ``BusSystem``: driven by the same arrivals,
the two produce identical grant sequences and identical timing
(``tests/test_handshake.py``).  That test is the justification for the
abstraction the rest of the library uses.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.base import Arbiter
from repro.engine.event import EventPriority
from repro.engine.simulator import Simulator
from repro.errors import ProtocolError, SimulationError
from repro.signals.wired_or import WiredOrLine

__all__ = ["AgentState", "HandshakeBus"]


class AgentState(enum.Enum):
    """Where one agent stands in the control-acquisition handshake."""

    IDLE = "idle"
    REQUESTING = "requesting"
    COMPETING = "competing"
    PENDING = "pending"
    MASTER = "master"


class HandshakeBus:
    """Line-level control acquisition around an arbitration protocol.

    Parameters
    ----------
    arbiter:
        The protocol that resolves each contention (any
        :class:`~repro.core.base.Arbiter`).
    transaction_time, arbitration_time:
        §4.1 timing constants.
    on_completion:
        Callback ``(agent_id, issue_time, grant_time, completion_time)``
        fired at the end of every tenure.
    simulator:
        Optional externally owned engine (one is created otherwise).
    """

    def __init__(
        self,
        arbiter: Arbiter,
        transaction_time: float = 1.0,
        arbitration_time: float = 0.5,
        on_completion: Optional[Callable[[int, float, float, float], None]] = None,
        simulator: Optional[Simulator] = None,
    ) -> None:
        self.arbiter = arbiter
        self.transaction_time = transaction_time
        self.arbitration_time = arbitration_time
        self.on_completion = on_completion
        self.simulator = simulator if simulator is not None else Simulator()

        #: The three control lines, observable like any bus state.
        self.bus_request = WiredOrLine("BR")
        self.arb_in_progress = WiredOrLine("AP")
        self.bus_busy = WiredOrLine("BB")

        self.state: Dict[int, AgentState] = {
            agent: AgentState.IDLE for agent in range(1, arbiter.num_agents + 1)
        }
        self._issue_time: Dict[int, float] = {}
        self._grant_time: Dict[int, float] = {}
        self._pending_winner: Optional[int] = None
        self._kick_scheduled = False
        #: Grant order, for cross-validation against BusSystem.
        self.grant_log: List[Tuple[float, int]] = []

    # -- external stimulus ----------------------------------------------------

    def request(self, agent_id: int, priority: bool = False) -> None:
        """An agent decides it wants the bus (now)."""
        if self.state[agent_id] is not AgentState.IDLE:
            raise ProtocolError(
                f"agent {agent_id} requested while {self.state[agent_id].value}"
            )
        now = self.simulator.now
        self.state[agent_id] = AgentState.REQUESTING
        self.bus_request.assert_(agent_id)
        self._issue_time[agent_id] = now
        self.arbiter.request(agent_id, now, priority=priority)
        self._schedule_kick()

    # -- control logic ---------------------------------------------------------

    def _schedule_kick(self) -> None:
        """Raise AP at the end of this instant if conditions allow."""
        if (
            self._kick_scheduled
            or self.arb_in_progress.value
            or self._pending_winner is not None
        ):
            return
        self._kick_scheduled = True
        self.simulator.schedule(
            0.0, self._kick, priority=EventPriority.ARB_KICK, label="hs-kick"
        )

    def _kick(self) -> None:
        self._kick_scheduled = False
        if self.arb_in_progress.value or self._pending_winner is not None:
            return
        if not self.bus_request.value or not self.arbiter.has_waiting():
            return
        # AP rises; everyone on BR joins the contention.
        self.arb_in_progress.assert_(0)
        competitors = []
        for agent, state in self.state.items():
            if state is AgentState.REQUESTING:
                self.state[agent] = AgentState.COMPETING
                competitors.append(agent)
        outcome = self.arbiter.start_arbitration(self.simulator.now)
        if outcome.winner not in competitors:
            raise SimulationError(
                f"arbiter chose {outcome.winner}, which is not on the BR line"
            )
        self.simulator.schedule(
            self.arbitration_time * outcome.rounds,
            lambda: self._arbitration_ends(outcome.winner),
            priority=EventPriority.ARBITRATION,
            label=f"hs-ap-falls:{outcome.winner}",
        )

    def _arbitration_ends(self, winner: int) -> None:
        # AP falls; every competitor reads the settled lines.
        self.arb_in_progress.release(0)
        for agent, state in self.state.items():
            if state is not AgentState.COMPETING:
                continue
            if agent == winner:
                self.state[agent] = AgentState.PENDING
                self.bus_request.release(agent)  # §2.2: released at tenure start;
                # electrically the winner may hold BR until grant, but it
                # must not retrigger an arbitration, so it drops here.
            else:
                self.state[agent] = AgentState.REQUESTING
        self._pending_winner = winner
        if not self.bus_busy.value:
            self._seize(winner)

    def _seize(self, agent_id: int) -> None:
        now = self.simulator.now
        if self.state[agent_id] is not AgentState.PENDING:
            raise SimulationError(
                f"agent {agent_id} seized the bus from state "
                f"{self.state[agent_id].value}"
            )
        self._pending_winner = None
        self.state[agent_id] = AgentState.MASTER
        self.bus_busy.assert_(agent_id)
        self._grant_time[agent_id] = now
        self.grant_log.append((now, agent_id))
        self.arbiter.grant(agent_id, now)
        self.simulator.schedule(
            self.transaction_time,
            lambda: self._tenure_ends(agent_id),
            priority=EventPriority.RELEASE,
            label=f"hs-bb-falls:{agent_id}",
        )
        # Arbitration for the next master may begin at once (§4.1).
        self._schedule_kick()

    def _tenure_ends(self, agent_id: int) -> None:
        now = self.simulator.now
        self.bus_busy.release(agent_id)
        self.state[agent_id] = AgentState.IDLE
        self.arbiter.release(agent_id, now)
        if self.on_completion is not None:
            self.on_completion(
                agent_id,
                self._issue_time.pop(agent_id),
                self._grant_time.pop(agent_id),
                now,
            )
        if self._pending_winner is not None:
            self._seize(self._pending_winner)
        else:
            self._schedule_kick()

    # -- introspection ----------------------------------------------------------

    def line_levels(self) -> Dict[str, bool]:
        """Observable control-line levels, like a logic probe would see."""
        return {
            "BR": self.bus_request.value,
            "AP": self.arb_in_progress.value,
            "BB": self.bus_busy.value,
        }

"""Bus watchdog: bounded re-arbitration after anomalous outcomes.

Real backplane standards pair the arbitration logic with a monitor: if
the lines settle to a pattern that names no master (all-zero) or a
non-unique one (two agents' patterns coincide at the maximum), a
watchdog timer expires and the arbitration is retried.  The
:class:`BusWatchdog` models that layer for the simulator:

- every anomaly (``no-winner`` / ``duplicate-winner``, whether detected
  by the protocol itself via
  :class:`~repro.errors.NoUniqueWinnerError` or by the fault injector's
  line perturbation) is recorded in the stats collector;
- recovery is a bounded sequence of re-arbitrations separated by an
  exponentially backed-off timeout (:class:`WatchdogPolicy`);
- the first clean grant after an anomaly closes the episode and its
  latency (first anomaly to clean grant, in simulated time) is recorded;
- exhausting ``max_attempts`` consecutive retries declares a
  *permanent failure* — the §3.1 fate of rotating-priority RR after a
  dropped winner broadcast — and ends the run gracefully instead of
  spinning forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.stats.collector import CompletionCollector

__all__ = ["WatchdogPolicy", "BusWatchdog"]


@dataclass(frozen=True)
class WatchdogPolicy:
    """Retry schedule for anomalous arbitrations.

    Attributes
    ----------
    max_attempts:
        Consecutive anomalous arbitrations tolerated before the
        watchdog declares a permanent failure.
    timeout:
        Delay before the first re-arbitration (simulated time units).
    backoff:
        Multiplier applied to the delay after each further anomaly.
    """

    max_attempts: int = 6
    timeout: float = 0.5
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout <= 0.0:
            raise ConfigurationError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1, got {self.backoff}")

    def retry_delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based)."""
        return self.timeout * self.backoff ** (attempt - 1)

    def spec_key(self) -> list:
        """Canonical JSON-serialisable description, for cache keying."""
        return [self.max_attempts, self.timeout, self.backoff]


class BusWatchdog:
    """Tracks anomaly episodes for one bus system and decides retries.

    The bus model consults :meth:`on_anomaly` whenever an arbitration
    fails to name a unique winner and :meth:`on_clean_grant` whenever a
    tenure begins normally; the watchdog turns those calls into retry
    delays, recovery-latency records and the ``gave_up`` stop signal.
    """

    def __init__(self, policy: Optional[WatchdogPolicy] = None) -> None:
        self.policy = policy if policy is not None else WatchdogPolicy()
        #: Anomalies in the current (open) episode.
        self.attempts = 0
        #: Set when an episode exhausted the retry budget.
        self.gave_up = False
        #: Totals across the run, for diagnostics.
        self.anomalies_seen = 0
        self.recoveries = 0
        self._episode_start: Optional[float] = None
        self._collector: Optional[CompletionCollector] = None

    def bind(self, collector: CompletionCollector) -> None:
        """Route episode records into a run's stats collector."""
        self._collector = collector

    def on_anomaly(self, kind: str, now: float) -> Optional[float]:
        """An arbitration produced no unique winner at time ``now``.

        Returns the delay to wait before re-arbitrating, or ``None``
        when the retry budget is exhausted (permanent failure:
        :attr:`gave_up` is set and no further retries should run).
        """
        self.anomalies_seen += 1
        if self._collector is not None:
            self._collector.record_anomaly(kind)
        if self._episode_start is None:
            self._episode_start = now
        self.attempts += 1
        if self.attempts >= self.policy.max_attempts:
            self.gave_up = True
            if self._collector is not None:
                self._collector.record_permanent_failure()
            return None
        return self.policy.retry_delay(self.attempts)

    def on_clean_grant(self, now: float) -> None:
        """A tenure began normally; close any open anomaly episode."""
        if self.attempts and self._episode_start is not None:
            self.recoveries += 1
            if self._collector is not None:
                self._collector.record_recovery(now - self._episode_start)
        self.attempts = 0
        self._episode_start = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BusWatchdog(attempts={self.attempts}, "
            f"anomalies={self.anomalies_seen}, gave_up={self.gave_up})"
        )

"""The bus agent: a processor (or DMA device) generating bus requests.

Closed-loop agents model the paper's stalled processor: execute for an
inter-request time, issue a request, stall until the transaction
completes, repeat.  Open-loop agents (an extension supporting §3.2's
multiple outstanding requests) keep their inter-request clock running
while requests are pending, pausing generation only when
``max_outstanding`` requests are already in flight.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.workload.scenarios import AgentSpec

__all__ = ["BusAgent"]

#: Think times drawn per batched RNG call.  Batching amortises the
#: per-draw dispatch through the Distribution interface; the variate
#: *sequence* is unchanged, so results stay bit-identical.
_THINK_BLOCK = 64


class BusAgent:
    """Request-generation state machine for one agent.

    The agent does not talk to the simulator directly; the
    :class:`~repro.bus.model.BusSystem` wires its callbacks.

    Parameters
    ----------
    spec:
        Immutable workload description.
    rng:
        This agent's private random stream.
    issue:
        Callback ``issue(agent_id, priority)`` that places a request on
        the bus; installed by the bus system.
    schedule:
        Callback ``schedule(delay, action)`` that defers an action;
        installed by the bus system.
    """

    def __init__(
        self,
        spec: AgentSpec,
        rng: random.Random,
        issue: Callable[[int, bool], None],
        schedule: Callable[[float, Callable[[], None]], None],
    ) -> None:
        self.spec = spec
        self.rng = rng
        self._issue = issue
        self._schedule = schedule
        self.outstanding = 0
        self.requests_issued = 0
        self.completions = 0
        #: Sum of inter-request (think) times drawn, for productivity
        #: accounting in the overlap experiments.
        self.total_think_time = 0.0
        self._generation_blocked = False
        #: Whether the agent is present on the bus.  Fault injection can
        #: drop an agent out for a window (live removal) and rejoin it
        #: (hot insertion); an absent agent generates no new requests.
        self.active = True
        self._woke_while_inactive = False
        #: Pre-drawn think times, consumed from the end.  Batching is only
        #: sequence-preserving when think draws are the *only* draws on
        #: this agent's stream; priority classing interleaves a uniform
        #: draw per request, so such agents fall back to one-at-a-time.
        self._think_buffer: list = []
        self._batch_draws = spec.priority_fraction <= 0.0

    @property
    def agent_id(self) -> int:
        """Static identity of this agent."""
        return self.spec.agent_id

    def start(self) -> None:
        """Begin the agent's life with one think period before its first request."""
        self._schedule_next_request()

    def _schedule_next_request(self) -> None:
        if self._batch_draws:
            buffer = self._think_buffer
            if not buffer:
                buffer.extend(
                    self.spec.interrequest.sample_batch(self.rng, _THINK_BLOCK)
                )
                buffer.reverse()  # consume in draw order via pop()
            think = buffer.pop()
        else:
            think = self.spec.interrequest.sample(self.rng)
        self.total_think_time += think
        self._schedule(think, self._generate_request)

    def _draw_priority(self) -> bool:
        fraction = self.spec.priority_fraction
        if fraction <= 0.0:
            return False
        return self.rng.random() < fraction

    def _generate_request(self) -> None:
        if not self.active:
            # Off the bus: swallow the think-timer expiry and remember it,
            # so rejoin() can resume the generation loop.
            self._woke_while_inactive = True
            return
        if self.outstanding >= self.spec.max_outstanding:
            # Open loop at capacity: the source blocks; generation resumes
            # at the next completion.  (A closed-loop agent cannot reach
            # this: it only draws a think time after completing.)
            self._generation_blocked = True
            return
        self.outstanding += 1
        self.requests_issued += 1
        self._issue(self.agent_id, self._draw_priority())
        if self.spec.open_loop and self.outstanding < self.spec.max_outstanding:
            self._schedule_next_request()
        elif self.spec.open_loop:
            self._generation_blocked = True

    def on_completion(self, now: float) -> None:
        """The bus finished one of this agent's transactions."""
        if self.outstanding <= 0:
            raise SimulationError(
                f"agent {self.agent_id} completed a transaction with no "
                f"request outstanding"
            )
        self.outstanding -= 1
        self.completions += 1
        if self.spec.open_loop:
            if self._generation_blocked:
                self._generation_blocked = False
                self._schedule_next_request()
        else:
            self._schedule_next_request()

    # -- fault injection: live removal / hot insertion -----------------------

    def drop_out(self) -> bool:
        """Remove the agent from the bus; returns False if already absent.

        Requests already issued stay on the arbiter (the hardware cannot
        recall an asserted request line); only *new* generation stops.
        """
        if not self.active:
            return False
        self.active = False
        return True

    def rejoin(self) -> None:
        """Hot-insert the agent back onto the bus.

        If a think timer expired while the agent was absent, the
        generation loop is restarted with a fresh think period — the
        re-inserted board comes up idle, not mid-request.
        """
        if self.active:
            return
        self.active = True
        if self._woke_while_inactive:
            self._woke_while_inactive = False
            self._schedule_next_request()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "open" if self.spec.open_loop else "closed"
        return (
            f"BusAgent(id={self.agent_id}, {mode}-loop, "
            f"outstanding={self.outstanding}, completions={self.completions})"
        )

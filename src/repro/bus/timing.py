"""Bus timing parameters (§4.1 of the paper).

The paper's model: bus transaction times are deterministic (cache-block
or I/O-block transfers) and define the unit of time; arbitration overhead
is half a transaction time and is completely overlapped with bus service
whenever requests are waiting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BusTiming"]


@dataclass(frozen=True)
class BusTiming:
    """Deterministic bus timing.

    Attributes
    ----------
    transaction_time:
        Duration of one bus tenure; the paper's unit of time.
    arbitration_time:
        Duration of one arbitration pass (the settle plus handover
        overhead); the paper uses half a transaction time.
    clock_period:
        §2.1: arbitration control is "synchronized by the clock in
        synchronous buses, or occurs in a self-timed fashion in
        asynchronous buses."  0.0 (default) models the self-timed bus
        the paper evaluates; a positive period aligns arbitration
        starts and idle-bus grants to clock edges, adding the expected
        half-period of synchronisation latency per idle dispatch.
        Choose a period dividing both the transaction and arbitration
        times (e.g. 0.25) so tenure boundaries stay edge-aligned.
    """

    transaction_time: float = 1.0
    arbitration_time: float = 0.5
    clock_period: float = 0.0

    def __post_init__(self) -> None:
        if self.transaction_time <= 0.0:
            raise ConfigurationError(
                f"transaction_time must be positive, got {self.transaction_time}"
            )
        if self.arbitration_time < 0.0:
            raise ConfigurationError(
                f"arbitration_time must be non-negative, got {self.arbitration_time}"
            )
        if self.clock_period < 0.0:
            raise ConfigurationError(
                f"clock_period must be non-negative, got {self.clock_period}"
            )

    @property
    def synchronous(self) -> bool:
        """Whether arbitration control is clock-aligned."""
        return self.clock_period > 0.0

    def delay_to_next_edge(self, now: float) -> float:
        """Time from ``now`` to the next clock edge (0 when on-edge or async)."""
        if not self.synchronous:
            return 0.0
        period = self.clock_period
        phase = now % period
        if phase <= 1e-9 * max(1.0, now) or period - phase <= 1e-9 * max(1.0, now):
            return 0.0
        return period - phase

"""System-level bus model: agents, timing, and the grant/release loop.

This is the simulator of the paper's §4.1: a single bus with
deterministic transaction time (the unit of time), 0.5-unit arbitration
overhead fully overlapped with bus service whenever requests are waiting,
and closed-loop agents that stall on their bus requests.
"""

from repro.bus.agent import BusAgent
from repro.bus.handshake import AgentState, HandshakeBus
from repro.bus.model import BusSystem
from repro.bus.records import CompletionRecord
from repro.bus.timeline import ownership_segments, render_timeline
from repro.bus.timing import BusTiming

__all__ = [
    "BusAgent",
    "BusSystem",
    "BusTiming",
    "CompletionRecord",
    "HandshakeBus",
    "AgentState",
    "render_timeline",
    "ownership_segments",
]

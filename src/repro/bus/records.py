"""Per-request completion records.

One :class:`CompletionRecord` is produced per served bus request; the
statistics layer consumes them.  The paper's "waiting time" W measures
request issue to *transaction completion* (the time a stalled processor
spends off the critical path), so both that and the queueing-only delay
are exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CompletionRecord"]


@dataclass(frozen=True)
class CompletionRecord:
    """Timing of one completed bus request.

    Attributes
    ----------
    agent_id:
        Static identity of the served agent.
    issue_time:
        When the request was issued (request line asserted).
    grant_time:
        When the agent's bus tenure began.
    completion_time:
        When the transaction finished.
    priority:
        Whether the request was urgent-class.
    """

    agent_id: int
    issue_time: float
    grant_time: float
    completion_time: float
    priority: bool = False

    @property
    def queueing_delay(self) -> float:
        """Issue to grant: time spent waiting for bus ownership."""
        return self.grant_time - self.issue_time

    @property
    def waiting_time(self) -> float:
        """Issue to completion — the paper's W (includes the transaction).

        A processor that stalls on its memory request is unproductive for
        exactly this long, which is why the paper's tables report it.
        """
        return self.completion_time - self.issue_time

"""Scenario builders for the paper's experiments.

A :class:`ScenarioSpec` describes the agent population: one
:class:`AgentSpec` per agent, each with its inter-request time
distribution and loop mode.  Builders construct the exact populations of
the paper's §4:

- :func:`equal_load` — N statistically identical agents (Tables 4.1/4.2,
  Figure 4.1, Table 4.3);
- :func:`unequal_load` — one agent with a rate multiple of the rest
  (Table 4.4);
- :func:`worst_case_rr` — the contrived §4.5 scenario where a slow agent
  deterministically "just misses" its round-robin turn (Table 4.5);
- :func:`open_loop_equal_load` — an extension with non-blocking sources
  and multiple outstanding requests per agent (§3.2's r > 1).

Offered load follows the paper's definition: an agent's offered load is
its transaction time divided by (transaction time + mean inter-request
time), i.e. the bus fraction it would consume with zero interference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError
from repro.workload.distributions import Distribution, from_mean_cv

__all__ = [
    "AgentSpec",
    "ScenarioSpec",
    "mean_interrequest_for_load",
    "equal_load",
    "unequal_load",
    "worst_case_rr",
    "open_loop_equal_load",
]


def mean_interrequest_for_load(load: float, transaction_time: float = 1.0) -> float:
    """Mean inter-request time giving one agent the requested offered load.

    Inverts ``load = S / (S + mean)``; an offered load of 1 means the
    agent re-requests immediately (mean 0).
    """
    if not 0.0 < load <= 1.0:
        raise ConfigurationError(
            f"per-agent offered load must be in (0, 1], got {load}"
        )
    return transaction_time * (1.0 - load) / load


@dataclass(frozen=True)
class AgentSpec:
    """Workload of one agent.

    Attributes
    ----------
    agent_id:
        Static identity (1..N); also the agent's fixed arbitration
        priority in the protocols that fall back to static order.
    interrequest:
        Distribution of the time the agent computes between completing
        one bus transaction and issuing the next request.
    priority_fraction:
        Probability that a request is urgent-class (extension; the
        paper's experiments use 0).
    open_loop:
        If true, the agent keeps issuing requests while earlier ones are
        pending (up to ``max_outstanding``); if false it stalls, the
        paper's closed-loop processor model.
    max_outstanding:
        Maximum simultaneously pending requests (r of §3.2).
    """

    agent_id: int
    interrequest: Distribution
    priority_fraction: float = 0.0
    open_loop: bool = False
    max_outstanding: int = 1

    def __post_init__(self) -> None:
        if self.agent_id < 1:
            raise ConfigurationError(f"agent_id must be >= 1, got {self.agent_id}")
        if not 0.0 <= self.priority_fraction <= 1.0:
            raise ConfigurationError(
                f"priority_fraction must be in [0, 1], got {self.priority_fraction}"
            )
        if self.max_outstanding < 1:
            raise ConfigurationError(
                f"max_outstanding must be >= 1, got {self.max_outstanding}"
            )
        if not self.open_loop and self.max_outstanding != 1:
            raise ConfigurationError(
                "a closed-loop agent stalls on its request; max_outstanding "
                "must be 1 (use open_loop=True for r > 1)"
            )

    def offered_load(self, transaction_time: float = 1.0) -> float:
        """The paper's offered load: S / (S + mean inter-request time)."""
        return transaction_time / (transaction_time + self.interrequest.mean)


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete agent population plus a descriptive name."""

    name: str
    agents: Tuple[AgentSpec, ...]
    notes: str = ""

    def __post_init__(self) -> None:
        ids = [agent.agent_id for agent in self.agents]
        if len(set(ids)) != len(ids):
            raise ConfigurationError(f"duplicate agent ids in scenario {self.name!r}")
        if not self.agents:
            raise ConfigurationError("a scenario needs at least one agent")

    @property
    def num_agents(self) -> int:
        """Population size (identities are 1..num_agents)."""
        return max(agent.agent_id for agent in self.agents)

    def total_offered_load(self, transaction_time: float = 1.0) -> float:
        """Sum of per-agent offered loads (the tables' "Load" column)."""
        return sum(agent.offered_load(transaction_time) for agent in self.agents)

    def agent(self, agent_id: int) -> AgentSpec:
        """Spec of one agent by identity."""
        for spec in self.agents:
            if spec.agent_id == agent_id:
                return spec
        raise ConfigurationError(f"no agent {agent_id} in scenario {self.name!r}")


def equal_load(
    num_agents: int,
    total_load: float,
    cv: float = 1.0,
    transaction_time: float = 1.0,
) -> ScenarioSpec:
    """N identical agents sharing ``total_load`` equally (Tables 4.1/4.2)."""
    if num_agents < 1:
        raise ConfigurationError(f"num_agents must be >= 1, got {num_agents}")
    per_agent = total_load / num_agents
    mean = mean_interrequest_for_load(per_agent, transaction_time)
    agents = tuple(
        AgentSpec(agent_id=i, interrequest=from_mean_cv(mean, cv))
        for i in range(1, num_agents + 1)
    )
    return ScenarioSpec(
        name=f"equal-load-n{num_agents}-L{total_load:g}-cv{cv:g}",
        agents=agents,
        notes=f"{num_agents} identical agents, total offered load {total_load:g}, CV {cv:g}",
    )


def unequal_load(
    num_agents: int,
    regular_load: float,
    factor: float,
    cv: float = 1.0,
    hot_agent: int = 1,
    transaction_time: float = 1.0,
) -> ScenarioSpec:
    """One agent at ``factor`` times the others' offered load (Table 4.4).

    ``regular_load`` is the offered load of each regular agent; the hot
    agent (identity ``hot_agent``, agent 1 in the paper) gets
    ``factor * regular_load``.
    """
    if factor <= 0.0:
        raise ConfigurationError(f"factor must be > 0, got {factor}")
    if not 1 <= hot_agent <= num_agents:
        raise ConfigurationError(f"hot_agent {hot_agent} outside 1..{num_agents}")
    regular_mean = mean_interrequest_for_load(regular_load, transaction_time)
    hot_mean = mean_interrequest_for_load(factor * regular_load, transaction_time)
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=from_mean_cv(hot_mean if i == hot_agent else regular_mean, cv),
        )
        for i in range(1, num_agents + 1)
    )
    return ScenarioSpec(
        name=f"unequal-n{num_agents}-x{factor:g}-l{regular_load:g}-cv{cv:g}",
        agents=agents,
        notes=(
            f"agent {hot_agent} at {factor:g}x the offered load "
            f"({factor * regular_load:g}) of the other {num_agents - 1} agents "
            f"({regular_load:g} each)"
        ),
    )


def worst_case_rr(
    num_agents: int,
    cv: float = 0.0,
    slow_agent: int = 1,
) -> ScenarioSpec:
    """The §4.5 contrived worst case for the RR protocol (Table 4.5).

    The slow agent's inter-request time is (n - 0.5); everyone else's is
    (n - 3.6).  With CV = 0 the slow agent deterministically "just
    misses" its turn in the round-robin order and waits a full round;
    any inter-request variability destroys the phase-lock.
    """
    if num_agents < 5:
        raise ConfigurationError(
            f"worst-case scenario needs n - 3.6 > 0, so num_agents >= 5; got {num_agents}"
        )
    if not 1 <= slow_agent <= num_agents:
        raise ConfigurationError(f"slow_agent {slow_agent} outside 1..{num_agents}")
    slow_mean = num_agents - 0.5
    other_mean = num_agents - 3.6
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=from_mean_cv(slow_mean if i == slow_agent else other_mean, cv),
        )
        for i in range(1, num_agents + 1)
    )
    return ScenarioSpec(
        name=f"worst-case-rr-n{num_agents}-cv{cv:g}",
        agents=agents,
        notes=(
            f"slow agent {slow_agent}: mean inter-request {slow_mean:g}; "
            f"others: {other_mean:g}; CV {cv:g}"
        ),
    )


def open_loop_equal_load(
    num_agents: int,
    total_load: float,
    cv: float = 1.0,
    max_outstanding: int = 4,
    transaction_time: float = 1.0,
) -> ScenarioSpec:
    """Extension: non-blocking sources with r outstanding requests each.

    The inter-request clock keeps running while requests are pending, so
    ``total_load`` here is a true arrival-rate load (requests per
    transaction time); it must stay below 1 for stability.
    """
    if not 0.0 < total_load < 1.0:
        raise ConfigurationError(
            f"open-loop total load must be in (0, 1) for stability, got {total_load}"
        )
    # Open loop: offered load per agent = (arrival rate) * S, so the mean
    # inter-arrival time is S / per-agent load (no "minus service time" —
    # the clock does not stop during service).
    per_agent_load = total_load / num_agents
    mean = transaction_time / per_agent_load
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=from_mean_cv(mean, cv),
            open_loop=True,
            max_outstanding=max_outstanding,
        )
        for i in range(1, num_agents + 1)
    )
    return ScenarioSpec(
        name=f"open-loop-n{num_agents}-L{total_load:g}-r{max_outstanding}",
        agents=agents,
        notes=(
            f"{num_agents} open-loop agents, r={max_outstanding} outstanding "
            f"requests each, total load {total_load:g}"
        ),
    )

"""Workload generation: inter-request time distributions and scenarios."""

from repro.workload.arrivals import (
    MarkovModulatedPoisson,
    bursty_equal_load,
    heterogeneous_load,
    on_off_poisson,
    two_class_priority_load,
)
from repro.workload.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    Hyperexponential,
    from_mean_cv,
)
from repro.workload.scenarios import (
    AgentSpec,
    ScenarioSpec,
    equal_load,
    open_loop_equal_load,
    unequal_load,
    worst_case_rr,
)
from repro.workload.traces import (
    TraceDistribution,
    load_trace,
    save_trace,
    synthesize_program_trace,
)

__all__ = [
    "MarkovModulatedPoisson",
    "on_off_poisson",
    "bursty_equal_load",
    "heterogeneous_load",
    "two_class_priority_load",
    "TraceDistribution",
    "load_trace",
    "save_trace",
    "synthesize_program_trace",
    "Distribution",
    "Deterministic",
    "Exponential",
    "Erlang",
    "Hyperexponential",
    "from_mean_cv",
    "AgentSpec",
    "ScenarioSpec",
    "equal_load",
    "open_loop_equal_load",
    "unequal_load",
    "worst_case_rr",
]

"""Inter-request time distributions, parameterised by mean and CV.

The paper (§4.1) specifies inter-request times by their mean and
coefficient of variation (CV = standard deviation / mean), with CV swept
between 0 (deterministic) and 1 (exponential) and the Erlang family used
in between.  :func:`from_mean_cv` reproduces that parameterisation; a
two-phase hyperexponential extends it to CV > 1 for sensitivity studies
beyond the paper.
"""

from __future__ import annotations

import abc
import math
import random
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Erlang",
    "Hyperexponential",
    "from_mean_cv",
]


class Distribution(abc.ABC):
    """A non-negative random variable with known mean and CV."""

    #: Whether sampling mutates the distribution object itself (trace
    #: replay cursors).  Engines that run several simulations from one
    #: scenario object only need private copies when this is set —
    #: renewal distributions are pure functions of the passed-in rng.
    stateful: bool = False

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abc.abstractmethod
    def cv(self) -> float:
        """Coefficient of variation (standard deviation / mean)."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one variate using the provided generator."""

    def sample_batch(self, rng: random.Random, count: int) -> List[float]:
        """Draw ``count`` variates — the same sequence ``count`` calls to
        :meth:`sample` would produce, amortising per-draw dispatch.

        Hot-path consumers (the bus agents) draw think times in blocks;
        subclasses override with a tight loop where it pays.  Stateful
        distributions inherit this default, which preserves their state
        progression exactly.
        """
        sample = self.sample
        return [sample(rng) for _ in range(count)]

    @abc.abstractmethod
    def survival(self, x: float) -> float:
        """P(X > x) — used by the analytical models of :mod:`repro.analysis`."""

    def spec_key(self) -> Tuple[object, ...]:
        """A stable, hashable description of this distribution.

        Used by the experiment result cache to key cells by workload
        content; two distributions with equal keys must generate identical
        variate sequences from identical generators.  Subclasses whose
        behaviour is not captured by (type, mean, CV) — e.g. trace
        replay — must override.
        """
        return (type(self).__name__, self.mean, self.cv)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(mean={self.mean:.6g}, cv={self.cv:.3g})"


class Deterministic(Distribution):
    """A constant: CV = 0."""

    def __init__(self, value: float) -> None:
        if value < 0.0:
            raise ConfigurationError(f"deterministic value must be >= 0, got {value}")
        self._value = float(value)

    @property
    def mean(self) -> float:
        return self._value

    @property
    def cv(self) -> float:
        return 0.0

    def sample(self, rng: random.Random) -> float:
        return self._value

    def sample_batch(self, rng: random.Random, count: int) -> List[float]:
        return [self._value] * count

    def survival(self, x: float) -> float:
        """P(X > x): a step at the constant value."""
        return 1.0 if x < self._value else 0.0


class Exponential(Distribution):
    """Exponential with the given mean: CV = 1, the paper's peak contention."""

    def __init__(self, mean: float) -> None:
        if mean <= 0.0:
            raise ConfigurationError(f"exponential mean must be > 0, got {mean}")
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv(self) -> float:
        return 1.0

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def sample_batch(self, rng: random.Random, count: int) -> List[float]:
        # Bit-identical inline of ``rng.expovariate(rate)`` (CPython
        # computes ``-log(1.0 - random()) / lambd``): the bound-method
        # call per draw is measurable on the lane engine's hot path.
        random_ = rng.random
        log = math.log
        rate = 1.0 / self._mean
        return [-log(1.0 - random_()) / rate for _ in range(count)]

    def survival(self, x: float) -> float:
        """P(X > x) = exp(-x / mean)."""
        if x <= 0.0:
            return 1.0
        return math.exp(-x / self._mean)


class Erlang(Distribution):
    """Erlang-k with the given mean: CV = 1/sqrt(k).

    The sum of k independent exponentials; the paper uses it for
    0 < CV < 1.
    """

    def __init__(self, mean: float, shape: int) -> None:
        if mean <= 0.0:
            raise ConfigurationError(f"Erlang mean must be > 0, got {mean}")
        if shape < 1:
            raise ConfigurationError(f"Erlang shape must be >= 1, got {shape}")
        self._mean = float(mean)
        self.shape = int(shape)
        self._phase_mean = self._mean / self.shape

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv(self) -> float:
        return 1.0 / math.sqrt(self.shape)

    def sample(self, rng: random.Random) -> float:
        # gammavariate(k, theta) is the Erlang when k is integral.
        return rng.gammavariate(self.shape, self._phase_mean)

    def sample_batch(self, rng: random.Random, count: int) -> List[float]:
        gammavariate = rng.gammavariate
        shape, phase_mean = self.shape, self._phase_mean
        return [gammavariate(shape, phase_mean) for _ in range(count)]

    def survival(self, x: float) -> float:
        """P(X > x): the Erlang-k survival (truncated Poisson sum)."""
        if x <= 0.0:
            return 1.0
        rate_x = x / self._phase_mean
        term = math.exp(-rate_x)
        total = term
        for j in range(1, self.shape):
            term *= rate_x / j
            total += term
        return min(1.0, total)


class Hyperexponential(Distribution):
    """Two-phase hyperexponential with balanced means: CV > 1.

    An extension beyond the paper's CV <= 1 sweep, used by the
    variability-sensitivity benches.  Phase probabilities follow the
    standard balanced-means construction for a target CV.
    """

    def __init__(self, mean: float, cv: float) -> None:
        if mean <= 0.0:
            raise ConfigurationError(f"mean must be > 0, got {mean}")
        if cv <= 1.0:
            raise ConfigurationError(
                f"hyperexponential requires CV > 1, got {cv}; use Erlang/Exponential"
            )
        self._mean = float(mean)
        self._cv = float(cv)
        squared = cv * cv
        # Balanced means: p1 * mean1 == p2 * mean2 == mean / 2, with p1
        # chosen so the squared CV comes out right.
        self._p1 = 0.5 * (1.0 + math.sqrt((squared - 1.0) / (squared + 1.0)))
        self._mean1 = self._mean / (2.0 * self._p1)
        self._mean2 = self._mean / (2.0 * (1.0 - self._p1))

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv(self) -> float:
        return self._cv

    def sample(self, rng: random.Random) -> float:
        phase_mean = self._mean1 if rng.random() < self._p1 else self._mean2
        return rng.expovariate(1.0 / phase_mean)

    def sample_batch(self, rng: random.Random, count: int) -> List[float]:
        uniform, expovariate = rng.random, rng.expovariate
        p1, mean1, mean2 = self._p1, self._mean1, self._mean2
        return [
            expovariate(1.0 / (mean1 if uniform() < p1 else mean2))
            for _ in range(count)
        ]

    def survival(self, x: float) -> float:
        """P(X > x): probability-weighted exponential survivals."""
        if x <= 0.0:
            return 1.0
        return self._p1 * math.exp(-x / self._mean1) + (1.0 - self._p1) * math.exp(
            -x / self._mean2
        )


def from_mean_cv(mean: float, cv: float) -> Distribution:
    """Build the paper's distribution for a given mean and CV.

    CV = 0 gives a constant, CV = 1 the exponential, 0 < CV < 1 the
    Erlang with shape ``round(1 / CV**2)`` (so the realised CV is the
    nearest achievable ``1/sqrt(k)``), and CV > 1 the balanced-means
    hyperexponential extension.
    """
    if mean < 0.0:
        raise ConfigurationError(f"mean must be >= 0, got {mean}")
    if cv < 0.0:
        raise ConfigurationError(f"cv must be >= 0, got {cv}")
    if cv == 0.0 or mean == 0.0:
        return Deterministic(mean)
    if cv == 1.0:
        return Exponential(mean)
    if cv < 1.0:
        squared = cv * cv
        if squared == 0.0 or 1.0 / squared > 2**31:
            # CV too small to represent as an Erlang shape: a constant is
            # indistinguishable at this precision.
            return Deterministic(mean)
        shape = max(1, round(1.0 / squared))
        return Erlang(mean, shape)
    return Hyperexponential(mean, cv)

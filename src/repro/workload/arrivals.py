"""Open-loop arrival processes and the scenario builders that use them.

The paper's experiments (§4) all run the closed processor loop: an agent
computes for a think time, requests, stalls until served, repeats.  Its
§5 priority-integration options and the fairness comparisons they enable
only become interesting under *open-loop* and *multi-class* traffic —
arrival clocks that keep running during service, bursty sources, and
urgent/normal request classes.  This module supplies that vocabulary:

- :class:`MarkovModulatedPoisson` — a two-state MMPP: Poisson arrivals
  whose rate is modulated by a two-state continuous-time Markov chain.
  With one rate zero it degenerates to the classic on-off (interrupted
  Poisson) source, built by :func:`on_off_poisson`.  Grounding: Nikolov
  & Lerato's cache-miss-driven shared-bus traffic is bursty precisely
  because private caches alternate hit runs (no bus traffic) with miss
  bursts — an on-off modulation of the request stream.
- :func:`bursty_equal_load` — N identical on-off sources at a target
  average load (open loop by default).
- :func:`heterogeneous_load` — per-agent arrival rates on a linear ramp
  (agent N offers ``skew`` times agent 1's load), the open-loop analogue
  of the paper's Table 4.4 asymmetry.
- :func:`two_class_priority_load` — every request is urgent with
  probability ``urgent_fraction``, exercising the paper's §5
  fixed-priority overlay (RR impls 1/3 and FCFS strategies 1/2 all
  arbitrate the priority bit above their own number).

The MMPP is *stateful* (the modulating phase persists across draws, so
consecutive inter-arrival times are correlated — the whole point of the
model); like :class:`~repro.workload.traces.TraceDistribution` it
carries ``stateful = True`` so engines deep-copy scenarios instead of
sharing one object across replications.
"""

from __future__ import annotations

import math
import random
from typing import Tuple

from repro.errors import ConfigurationError
from repro.workload.distributions import Distribution, from_mean_cv
from repro.workload.scenarios import AgentSpec, ScenarioSpec, mean_interrequest_for_load

__all__ = [
    "MarkovModulatedPoisson",
    "on_off_poisson",
    "bursty_equal_load",
    "heterogeneous_load",
    "two_class_priority_load",
]


class MarkovModulatedPoisson(Distribution):
    """Two-state Markov-modulated Poisson process (MMPP-2).

    A continuous-time Markov chain with states 0 and 1 switches at rates
    ``switch_rates = (r0, r1)`` (state i leaves at rate ``ri``); while in
    state i, arrivals occur at Poisson rate ``rates[i]``.  Inter-arrival
    times are sampled exactly by competing exponentials: from the current
    phase the next event happens after Exp(rate + switch) time and is an
    arrival with probability rate / (rate + switch), else a phase change.
    In a zero-rate phase no uniform is drawn — the only event is the
    switch — which keeps RNG consumption minimal and reproducible.

    Mean and CV are the stationary inter-arrival moments of the
    phase-type distribution PH(phi, D0) seen from an arrival epoch
    (phi is the arrival-weighted stationary phase vector), so analytical
    consumers see the long-run process, independent of the initial
    ``phase``.  Burstiness shows up as CV > 1 whenever the two rates
    differ.

    Parameters
    ----------
    rates:
        Arrival rates (lambda0, lambda1), each >= 0, not both 0.
    switch_rates:
        Phase-leaving rates (r0, r1), each > 0.
    phase:
        Initial modulating phase, 0 or 1.
    """

    stateful = True

    def __init__(
        self,
        rates: Tuple[float, float],
        switch_rates: Tuple[float, float],
        phase: int = 0,
    ) -> None:
        lam0, lam1 = (float(rates[0]), float(rates[1]))
        r0, r1 = (float(switch_rates[0]), float(switch_rates[1]))
        if lam0 < 0.0 or lam1 < 0.0:
            raise ConfigurationError(f"arrival rates must be >= 0, got {rates}")
        if lam0 == 0.0 and lam1 == 0.0:
            raise ConfigurationError("at least one MMPP phase must have rate > 0")
        if r0 <= 0.0 or r1 <= 0.0:
            raise ConfigurationError(f"switch rates must be > 0, got {switch_rates}")
        if phase not in (0, 1):
            raise ConfigurationError(f"phase must be 0 or 1, got {phase}")
        self.rates = (lam0, lam1)
        self.switch_rates = (r0, r1)
        self.phase = int(phase)

        # Time-stationary phase probabilities of the modulating chain and
        # the long-run arrival rate lambda* they induce.
        pi0 = r1 / (r0 + r1)
        pi1 = r0 / (r0 + r1)
        lam_star = pi0 * lam0 + pi1 * lam1
        self._mean = 1.0 / lam_star
        # Arrival-epoch phase vector phi = pi D1 / (pi D1 . 1): the phase
        # an arbitrary arrival finds the chain in.
        self._phi = (pi0 * lam0 / lam_star, pi1 * lam1 / lam_star)
        # Inter-arrival moments of PH(phi, D0) with
        # D0 = [[-(l0+r0), r0], [r1, -(l1+r1)]]: E[T^k] = k! phi (-D0)^-k 1.
        det = lam0 * lam1 + lam0 * r1 + lam1 * r0
        inv = (
            ((lam1 + r1) / det, r0 / det),
            (r1 / det, (lam0 + r0) / det),
        )
        v1 = (inv[0][0] + inv[0][1], inv[1][0] + inv[1][1])  # (-D0)^-1 . 1
        v2 = (
            inv[0][0] * v1[0] + inv[0][1] * v1[1],
            inv[1][0] * v1[0] + inv[1][1] * v1[1],
        )
        m1 = self._phi[0] * v1[0] + self._phi[1] * v1[1]
        m2 = 2.0 * (self._phi[0] * v2[0] + self._phi[1] * v2[1])
        variance = max(0.0, m2 - m1 * m1)
        self._cv = math.sqrt(variance) / m1
        # Eigenvalues of D0 for the closed-form survival; the discriminant
        # (a - d)^2 + 4 r0 r1 is strictly positive, so they are real and
        # distinct — no degenerate branch needed.
        a, d = -(lam0 + r0), -(lam1 + r1)
        half_gap = 0.5 * math.sqrt((a - d) * (a - d) + 4.0 * r0 * r1)
        mid = 0.5 * (a + d)
        self._eigs = (mid + half_gap, mid - half_gap)

    @property
    def mean(self) -> float:
        """Stationary mean inter-arrival time, 1 / lambda*."""
        return self._mean

    @property
    def cv(self) -> float:
        """Stationary inter-arrival CV (> 1 whenever the rates differ)."""
        return self._cv

    def sample(self, rng: random.Random) -> float:
        """Time to the next arrival from the current modulating phase."""
        rates, switch = self.rates, self.switch_rates
        phase = self.phase
        expovariate, uniform = rng.expovariate, rng.random
        elapsed = 0.0
        while True:
            lam = rates[phase]
            total = lam + switch[phase]
            elapsed += expovariate(total)
            if lam > 0.0 and uniform() * total < lam:
                self.phase = phase
                return elapsed
            phase = 1 - phase

    def survival(self, x: float) -> float:
        """P(T > x) = phi exp(D0 x) 1, via the 2x2 spectral form."""
        if x <= 0.0:
            return 1.0
        mu1, mu2 = self._eigs
        # phi D0 1 = -(phi0 l0 + phi1 l1); Lagrange-Sylvester on D0 gives
        # survival = [e^(mu1 x)(s - mu2) - e^(mu2 x)(s - mu1)] / (mu1 - mu2).
        s = -(self._phi[0] * self.rates[0] + self._phi[1] * self.rates[1])
        value = (
            math.exp(mu1 * x) * (s - mu2) - math.exp(mu2 * x) * (s - mu1)
        ) / (mu1 - mu2)
        return min(1.0, max(0.0, value))

    def spec_key(self) -> Tuple[object, ...]:
        """Parameters plus the current phase (sampling depends on it)."""
        return (
            type(self).__name__,
            self.rates[0],
            self.rates[1],
            self.switch_rates[0],
            self.switch_rates[1],
            self.phase,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MarkovModulatedPoisson(rates={self.rates}, "
            f"switch_rates={self.switch_rates}, phase={self.phase})"
        )


def on_off_poisson(
    rate: float,
    mean_on: float,
    mean_off: float,
    phase: int = 0,
) -> MarkovModulatedPoisson:
    """An on-off (interrupted Poisson) source as a degenerate MMPP.

    Phase 0 is *on* — Poisson arrivals at ``rate`` for Exp(``mean_on``)
    time — and phase 1 is *off* — silent for Exp(``mean_off``) time.
    The long-run arrival rate is ``rate * mean_on / (mean_on + mean_off)``.
    """
    if rate <= 0.0:
        raise ConfigurationError(f"on-rate must be > 0, got {rate}")
    if mean_on <= 0.0 or mean_off <= 0.0:
        raise ConfigurationError(
            f"phase durations must be > 0, got on={mean_on}, off={mean_off}"
        )
    return MarkovModulatedPoisson(
        rates=(rate, 0.0),
        switch_rates=(1.0 / mean_on, 1.0 / mean_off),
        phase=phase,
    )


def bursty_equal_load(
    num_agents: int,
    total_load: float,
    on_fraction: float = 0.5,
    cycle_time: float = 20.0,
    urgent_fraction: float = 0.0,
    open_loop: bool = True,
    max_outstanding: int = 1,
    transaction_time: float = 1.0,
) -> ScenarioSpec:
    """N identical on-off bursty sources at a target average load.

    Each agent is an :func:`on_off_poisson` source spending
    ``on_fraction`` of an average ``cycle_time`` in the on phase, with
    the on-rate chosen so the *long-run* per-agent load is
    ``total_load / num_agents`` — during a burst the instantaneous load
    is ``1 / on_fraction`` times that.  Every agent gets its own
    distribution instance (the modulating phase is per-agent state).

    ``urgent_fraction`` > 0 adds the §5 two-class overlay on top of the
    bursty arrivals.
    """
    if num_agents < 1:
        raise ConfigurationError(f"num_agents must be >= 1, got {num_agents}")
    if not 0.0 < total_load < 1.0:
        raise ConfigurationError(
            f"open-loop total load must be in (0, 1) for stability, got {total_load}"
        )
    if not 0.0 < on_fraction < 1.0:
        raise ConfigurationError(f"on_fraction must be in (0, 1), got {on_fraction}")
    if cycle_time <= 0.0:
        raise ConfigurationError(f"cycle_time must be > 0, got {cycle_time}")
    per_agent_rate = total_load / num_agents / transaction_time
    on_rate = per_agent_rate / on_fraction
    mean_on = on_fraction * cycle_time
    mean_off = (1.0 - on_fraction) * cycle_time
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=on_off_poisson(on_rate, mean_on, mean_off),
            priority_fraction=urgent_fraction,
            open_loop=open_loop,
            max_outstanding=max_outstanding,
        )
        for i in range(1, num_agents + 1)
    )
    return ScenarioSpec(
        name=(
            f"bursty-n{num_agents}-L{total_load:g}-on{on_fraction:g}"
            f"-c{cycle_time:g}"
            + (f"-u{urgent_fraction:g}" if urgent_fraction > 0.0 else "")
        ),
        agents=agents,
        notes=(
            f"{num_agents} on-off sources, average load {total_load:g}, "
            f"burst rate {on_rate:g}/S over {on_fraction:g} of a "
            f"{cycle_time:g}-unit cycle"
        ),
    )


def heterogeneous_load(
    num_agents: int,
    total_load: float,
    skew: float = 2.0,
    cv: float = 1.0,
    open_loop: bool = True,
    max_outstanding: int = 1,
    transaction_time: float = 1.0,
) -> ScenarioSpec:
    """Per-agent arrival rates on a linear ramp summing to ``total_load``.

    Agent N offers ``skew`` times agent 1's load; intermediate agents
    interpolate linearly.  ``skew`` = 1 recovers the equal-load
    population.  Open loop by default (rates are true arrival rates);
    with ``open_loop=False`` the same ramp is applied to closed-loop
    think times via :func:`mean_interrequest_for_load`.
    """
    if num_agents < 1:
        raise ConfigurationError(f"num_agents must be >= 1, got {num_agents}")
    if skew <= 0.0:
        raise ConfigurationError(f"skew must be > 0, got {skew}")
    if open_loop and not 0.0 < total_load < 1.0:
        raise ConfigurationError(
            f"open-loop total load must be in (0, 1) for stability, got {total_load}"
        )
    if num_agents == 1:
        weights = [1.0]
    else:
        weights = [
            1.0 + (skew - 1.0) * (i - 1) / (num_agents - 1)
            for i in range(1, num_agents + 1)
        ]
    scale = total_load / sum(weights)
    agents = []
    for i, weight in enumerate(weights, start=1):
        per_agent_load = weight * scale
        if open_loop:
            mean = transaction_time / per_agent_load
        else:
            mean = mean_interrequest_for_load(per_agent_load, transaction_time)
        agents.append(
            AgentSpec(
                agent_id=i,
                interrequest=from_mean_cv(mean, cv),
                open_loop=open_loop,
                max_outstanding=max_outstanding if open_loop else 1,
            )
        )
    loop = "open" if open_loop else "closed"
    return ScenarioSpec(
        name=f"hetero-n{num_agents}-L{total_load:g}-skew{skew:g}-{loop}",
        agents=tuple(agents),
        notes=(
            f"{num_agents} {loop}-loop agents on a linear rate ramp, "
            f"agent {num_agents} at {skew:g}x agent 1, total load {total_load:g}"
        ),
    )


def two_class_priority_load(
    num_agents: int,
    total_load: float,
    urgent_fraction: float = 0.2,
    cv: float = 1.0,
    open_loop: bool = False,
    max_outstanding: int = 1,
    transaction_time: float = 1.0,
) -> ScenarioSpec:
    """Two traffic classes: each request is urgent with fixed probability.

    Exercises the paper's §5 priority-integration options — all the
    distributed protocols arbitrate a priority bit above their own
    number field, so urgent requests always beat normal ones and
    compete among themselves under the underlying discipline (RR
    impls 1/3 keep their round-robin state; FCFS strategies 1/2 keep
    arrival order within the class).
    """
    if num_agents < 1:
        raise ConfigurationError(f"num_agents must be >= 1, got {num_agents}")
    if not 0.0 < urgent_fraction < 1.0:
        raise ConfigurationError(
            f"urgent_fraction must be in (0, 1) for two classes, got {urgent_fraction}"
        )
    per_agent = total_load / num_agents
    if open_loop:
        if not 0.0 < total_load < 1.0:
            raise ConfigurationError(
                f"open-loop total load must be in (0, 1) for stability, got {total_load}"
            )
        mean = transaction_time / per_agent
    else:
        mean = mean_interrequest_for_load(per_agent, transaction_time)
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=from_mean_cv(mean, cv),
            priority_fraction=urgent_fraction,
            open_loop=open_loop,
            max_outstanding=max_outstanding if open_loop else 1,
        )
        for i in range(1, num_agents + 1)
    )
    loop = "open" if open_loop else "closed"
    return ScenarioSpec(
        name=(
            f"two-class-n{num_agents}-L{total_load:g}"
            f"-u{urgent_fraction:g}-{loop}"
        ),
        agents=agents,
        notes=(
            f"{num_agents} {loop}-loop agents, total load {total_load:g}, "
            f"each request urgent with probability {urgent_fraction:g} (§5 overlay)"
        ),
    )

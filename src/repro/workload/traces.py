"""Trace-driven workloads.

The fairness results the paper leans on were corroborated by "a recent
trace simulation study [EgGi87]" — driving the bus model with
inter-request times captured from real parallel programs instead of
fitted distributions.  We do not have the Eggers/Gibson traces (they
were a private communication in 1987), so this module provides:

- :class:`TraceDistribution` — replay a recorded sequence of
  inter-request times through the standard
  :class:`~repro.workload.distributions.Distribution` interface (cycled
  when exhausted, optionally with a per-agent phase offset);
- plain-text trace I/O (:func:`load_trace`, :func:`save_trace`) — one
  inter-request time per line, ``#`` comments;
- :func:`synthesize_program_trace` — a synthetic stand-in for the
  missing real traces: alternating compute/communicate program phases
  produce the bursty, phase-correlated request streams that trace
  studies exhibit and that no renewal (mean/CV) model reproduces.

The substitution is recorded in DESIGN.md: what matters for the
protocols is burstiness and cross-phase correlation in the arrival
process, which the synthesizer provides and the CV-parameterised
distributions cannot.
"""

from __future__ import annotations

import hashlib
import random
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.workload.distributions import Distribution

__all__ = [
    "TraceDistribution",
    "load_trace",
    "save_trace",
    "synthesize_program_trace",
]


class TraceDistribution(Distribution):
    """Replay recorded inter-request times as a Distribution.

    Parameters
    ----------
    samples:
        The recorded inter-request times, in order.
    offset:
        Starting index into the trace (lets several agents replay the
        same trace out of phase).
    cycle:
        Whether to wrap around when the trace is exhausted; if false,
        exhaustion raises :class:`~repro.errors.ConfigurationError`.

    Note: replay ignores the ``rng`` argument of :meth:`sample` — the
    variability is the trace's own.
    """

    stateful = True

    def __init__(
        self,
        samples: Sequence[float],
        offset: int = 0,
        cycle: bool = True,
    ) -> None:
        values = [float(value) for value in samples]
        if not values:
            raise ConfigurationError("a trace needs at least one sample")
        if any(value < 0.0 for value in values):
            raise ConfigurationError("inter-request times must be >= 0")
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        self._samples = values
        self._index = offset % len(values)
        self._cycle = cycle
        self._exhausted = False
        self._mean = sum(values) / len(values)
        if self._mean > 0.0:
            variance = sum((v - self._mean) ** 2 for v in values) / len(values)
            self._cv = variance**0.5 / self._mean
        else:
            self._cv = 0.0

    @property
    def mean(self) -> float:
        """Mean of the recorded samples."""
        return self._mean

    @property
    def cv(self) -> float:
        """Coefficient of variation of the recorded samples."""
        return self._cv

    @property
    def length(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    def survival(self, x: float) -> float:
        """Empirical P(X > x) over the recorded samples."""
        if not self._samples:
            return 0.0
        exceeding = sum(1 for value in self._samples if value > x)
        return exceeding / len(self._samples)

    def sample(self, rng: random.Random) -> float:
        """The next recorded inter-request time."""
        if self._exhausted:
            raise ConfigurationError("trace exhausted and cycling is disabled")
        value = self._samples[self._index]
        self._index += 1
        if self._index >= len(self._samples):
            if self._cycle:
                self._index = 0
            else:
                self._exhausted = True
        return value

    def sample_batch(self, rng: random.Random, count: int) -> List[float]:
        """Batch replay that never over-runs a non-cycling trace.

        Stops at exhaustion so a block prefetch cannot raise for draws
        the simulation might never request; the exhaustion error still
        surfaces on the first draw that is genuinely unavailable.
        """
        out: List[float] = []
        for _ in range(count):
            if self._exhausted:
                break
            out.append(self.sample(rng))
        if not out:
            self.sample(rng)  # exhausted: raises ConfigurationError
        return out

    def spec_key(self) -> Tuple[object, ...]:
        """Content-addressed description: digest of the recorded samples
        plus the replay position, since two replays of the same trace
        from different offsets produce different arrival processes."""
        digest = hashlib.sha256(repr(self._samples).encode("utf-8")).hexdigest()
        return (
            type(self).__name__,
            digest,
            self._index,
            self._cycle,
            self._exhausted,
        )


def load_trace(path: Union[str, Path]) -> List[float]:
    """Read a trace file: one inter-request time per line, ``#`` comments."""
    values: List[float] = []
    for line_number, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            value = float(line)
        except ValueError:
            raise ConfigurationError(
                f"{path}:{line_number}: not a number: {line!r}"
            ) from None
        if value < 0.0:
            raise ConfigurationError(
                f"{path}:{line_number}: negative inter-request time {value}"
            )
        values.append(value)
    if not values:
        raise ConfigurationError(f"{path}: trace contains no samples")
    return values


def save_trace(path: Union[str, Path], samples: Iterable[float], header: str = "") -> None:
    """Write a trace file readable by :func:`load_trace`."""
    lines = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    lines.extend(f"{float(value):.6f}" for value in samples)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def synthesize_program_trace(
    length: int,
    seed: int = 0,
    compute_mean: float = 12.0,
    communicate_mean: float = 1.5,
    phase_length_mean: float = 25.0,
) -> List[float]:
    """A synthetic parallel-program inter-request trace.

    Alternates *compute* phases (long, exponential inter-request times —
    cache hits dominate) with *communicate* phases (short, tight
    inter-request times — misses and synchronisation traffic), with
    geometrically distributed phase lengths.  The result is bursty and
    auto-correlated, the qualitative signature of the [EgGi87]-style
    real traces this stands in for.
    """
    if length < 1:
        raise ConfigurationError(f"length must be >= 1, got {length}")
    if min(compute_mean, communicate_mean, phase_length_mean) <= 0.0:
        raise ConfigurationError("phase parameters must be positive")
    rng = random.Random(seed)
    trace: List[float] = []
    computing = True
    while len(trace) < length:
        phase_length = max(1, int(rng.expovariate(1.0 / phase_length_mean)))
        mean = compute_mean if computing else communicate_mean
        for __ in range(min(phase_length, length - len(trace))):
            trace.append(rng.expovariate(1.0 / mean))
        computing = not computing
    return trace

"""Structured per-arbitration telemetry for the bus simulator.

The paper's evaluation (Tables 4.1–4.5, Figure 4.1) rests on
per-arbitration behaviour — who competed, how many settle rounds were
spent, who won, how long each request waited.  This package makes that
behaviour observable without perturbing it:

- :mod:`~repro.observability.events` — the structured
  :class:`ArbitrationEvent` schema, one record per arbitration pass,
  plus the :class:`TelemetrySettings` knob block that
  :class:`~repro.experiments.runner.SimulationSettings` embeds;
- :mod:`~repro.observability.sinks` — the pluggable
  :class:`EventSink` protocol and its implementations (no-op,
  in-memory, JSONL file, tee);
- :mod:`~repro.observability.metrics` — a :class:`MetricsRegistry` of
  counters and fixed-bucket histograms (rounds per grant, settle
  iterations, per-agent waiting times) with deterministic merging
  across sweep cells;
- :mod:`~repro.observability.golden` — the small frozen scenarios whose
  byte-exact JSONL traces live in ``tests/golden/``.

Telemetry is *off* by default: a :class:`~repro.bus.model.BusSystem`
with no sink and no registry pays one attribute check per arbitration
(≤ 3 % end-to-end, verified by ``benchmarks/test_engine_microbench.py``),
and every experiment output is byte-identical with sinks off.
"""

from repro.observability.events import ArbitrationEvent, TelemetrySettings, event_from_dict
from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    ROUNDS_BUCKETS,
    WAIT_BUCKETS,
    merge_metrics,
    render_metrics,
)
from repro.observability.sinks import (
    EventSink,
    InMemorySink,
    JsonlSink,
    NullSink,
    TeeSink,
)

__all__ = [
    "ArbitrationEvent",
    "TelemetrySettings",
    "event_from_dict",
    "EventSink",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "TeeSink",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "ROUNDS_BUCKETS",
    "WAIT_BUCKETS",
    "merge_metrics",
    "render_metrics",
]

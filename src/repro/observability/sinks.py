"""Event sinks: where a run's :class:`ArbitrationEvent` stream goes.

A sink is anything with ``emit(event)`` and ``close()``.  The bus emits
to at most one sink; fan-out is a :class:`TeeSink`.  Sinks must not
raise from ``emit`` in normal operation — a telemetry failure must
never perturb the simulation it observes.

The default is *no* sink at all (``BusSystem(sink=None)``), which costs
one attribute check per arbitration.  :class:`NullSink` exists for API
completeness and for measuring the marginal cost of the emission path
itself (``benchmarks/test_engine_microbench.py``).
"""

from __future__ import annotations

import abc
import sys
from pathlib import Path
from typing import IO, List, Optional, Union

from repro.observability.events import ArbitrationEvent

__all__ = ["EventSink", "NullSink", "InMemorySink", "JsonlSink", "TeeSink"]


class EventSink(abc.ABC):
    """Consumer of a run's arbitration-event stream."""

    @abc.abstractmethod
    def emit(self, event: ArbitrationEvent) -> None:
        """Accept one event.  Called in event order, strictly by index."""

    def close(self) -> None:
        """Release any resources; further ``emit`` calls are undefined."""


class NullSink(EventSink):
    """Accepts and discards everything (telemetry plumbed but off)."""

    def emit(self, event: ArbitrationEvent) -> None:
        pass


class InMemorySink(EventSink):
    """Retains every event in order; backs ``RunResult.events``."""

    def __init__(self) -> None:
        self.events: List[ArbitrationEvent] = []

    def emit(self, event: ArbitrationEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class JsonlSink(EventSink):
    """Streams events as canonical JSON lines to a file or handle.

    Parameters
    ----------
    target:
        A path (opened for writing, parents created) or an open text
        handle.  The special path ``"-"`` means stdout.  Only handles
        this sink opened are closed by :meth:`close`.
    """

    def __init__(self, target: Union[str, Path, IO[str]]) -> None:
        self._owns_handle = False
        if hasattr(target, "write"):
            self._handle: Optional[IO[str]] = target  # type: ignore[assignment]
        elif str(target) == "-":
            self._handle = sys.stdout
        else:
            path = Path(target)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = path.open("w", encoding="utf-8")
            self._owns_handle = True
        self.emitted = 0

    def emit(self, event: ArbitrationEvent) -> None:
        assert self._handle is not None
        self._handle.write(event.to_json())
        self._handle.write("\n")
        self.emitted += 1

    def close(self) -> None:
        if self._handle is None:
            return
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()
        self._handle = None


class TeeSink(EventSink):
    """Fans every event out to several sinks, in construction order."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = tuple(sinks)

    def emit(self, event: ArbitrationEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()

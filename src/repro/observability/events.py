"""The structured telemetry schema: one record per arbitration pass.

An :class:`ArbitrationEvent` captures exactly what a logic analyser on
the backplane would see of one arbitration: when it started, who had
their arbitration numbers on the lines, how many settle rounds were
burned, who won (or which anomaly prevented a winner), and whether the
bus watchdog or the fault injector had a hand in it.  The schema is
flat and JSON-serialisable so streams can be diffed byte-for-byte —
the golden-trace suite in ``tests/golden/`` relies on that.

:class:`TelemetrySettings` is the declarative knob block embedded in
:class:`~repro.experiments.runner.SimulationSettings`; it is frozen,
picklable and cache-keyable, so telemetry-enabled cells flow through
the parallel sweep executor and the result cache like any other cell.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["ArbitrationEvent", "TelemetrySettings", "event_from_dict"]

#: Field order of the canonical JSON encoding (stable across runs and
#: platforms; ``repr``-based float formatting is exact round-trip).
_FIELDS = (
    "index",
    "time",
    "competitors",
    "winner",
    "rounds",
    "settle_time",
    "anomaly",
    "watchdog_attempt",
    "fault_tags",
)


@dataclass(frozen=True)
class ArbitrationEvent:
    """One arbitration pass, as observed on the bus.

    Attributes
    ----------
    index:
        0-based sequence number of the arbitration within the run
        (anomalous passes count — they spent a settle period).
    time:
        Simulated time at which the arbitration started.
    competitors:
        Static identities whose arbitration numbers were on the lines,
        ascending.
    winner:
        The agent the lines identified, or ``None`` when the pass ended
        in an anomaly.
    rounds:
        Full arbitration passes consumed — 1 for every protocol except
        RR implementation 3's occasional immediate second pass (§3.1).
    settle_time:
        Simulated time the arbitration spent settling
        (``rounds × arbitration_time``).
    anomaly:
        ``None`` for a clean pass, else ``"no-winner"`` or
        ``"duplicate-winner"`` — the two classes the watchdog recovers.
    watchdog_attempt:
        The watchdog's open-episode anomaly count when this pass ran:
        0 outside any episode; for a retry (clean or not) it names
        which attempt this was.
    fault_tags:
        Effects the fault injector had on this pass (``"deviated"``
        when line faults silently changed the winner), sorted.
    """

    index: int
    time: float
    competitors: Tuple[int, ...]
    winner: Optional[int]
    rounds: int
    settle_time: float
    anomaly: Optional[str] = None
    watchdog_attempt: int = 0
    fault_tags: Tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """Plain-data form, fields in canonical order."""
        return {
            "index": self.index,
            "time": self.time,
            "competitors": list(self.competitors),
            "winner": self.winner,
            "rounds": self.rounds,
            "settle_time": self.settle_time,
            "anomaly": self.anomaly,
            "watchdog_attempt": self.watchdog_attempt,
            "fault_tags": list(self.fault_tags),
        }

    def to_json(self) -> str:
        """One canonical JSON line (no spaces, fixed field order)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))


def event_from_dict(payload: Mapping) -> ArbitrationEvent:
    """Rebuild an event from :meth:`ArbitrationEvent.to_dict` output.

    Unknown keys are rejected so schema drift in a recorded stream is
    caught where it is diagnosable, not downstream.
    """
    unknown = sorted(set(payload) - set(_FIELDS))
    if unknown:
        raise ConfigurationError(
            f"unknown ArbitrationEvent fields {unknown}; expected {sorted(_FIELDS)}"
        )
    return ArbitrationEvent(
        index=payload["index"],
        time=payload["time"],
        competitors=tuple(payload["competitors"]),
        winner=payload["winner"],
        rounds=payload["rounds"],
        settle_time=payload["settle_time"],
        anomaly=payload.get("anomaly"),
        watchdog_attempt=payload.get("watchdog_attempt", 0),
        fault_tags=tuple(payload.get("fault_tags", ())),
    )


@dataclass(frozen=True)
class TelemetrySettings:
    """What one run should record; embedded in ``SimulationSettings``.

    All three knobs default off; any of them being on changes what a
    :class:`~repro.stats.summary.RunResult` carries, so the block is
    part of the run's cache identity (:func:`spec_key`).

    Attributes
    ----------
    events:
        Retain the full :class:`ArbitrationEvent` stream on
        ``RunResult.events`` (in-memory; sized like the run).
    metrics:
        Accumulate a :class:`~repro.observability.metrics.
        MetricsRegistry` on ``RunResult.metrics``.
    jsonl_path:
        Stream every event to this JSONL file as the run executes.
    """

    events: bool = False
    metrics: bool = False
    jsonl_path: Optional[str] = None

    def __post_init__(self) -> None:
        if not (self.events or self.metrics or self.jsonl_path):
            raise ConfigurationError(
                "TelemetrySettings with every knob off records nothing; "
                "leave SimulationSettings.telemetry as None instead"
            )

    def spec_key(self) -> list:
        """Canonical JSON-serialisable description, for cache keying."""
        return [self.events, self.metrics, self.jsonl_path]


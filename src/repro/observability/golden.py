"""Golden-trace scenarios: the pinned event streams under ``tests/golden/``.

A golden trace is the canonical JSONL encoding of one short run's full
:class:`~repro.observability.events.ArbitrationEvent` stream, checked
into the repository and compared *byte for byte* by the conformance
suite.  Any engine change that perturbs arbitration order, settle
accounting or the event schema trips the comparison — and because the
stored artefact is a line-per-event diff-able text file, the failure
shows exactly which arbitrations moved.

This module is the single source of truth for what those runs are; both
the regression test (``tests/conformance/test_golden_traces.py``) and
the regeneration script (``scripts/regen_golden.py``) call
:func:`golden_trace_lines`, so they can never disagree about the
scenario behind a file.

The runs are deliberately tiny (a few hundred events) and pin *every*
knob explicitly — scale presets and environment variables have no say —
so the bytes depend only on the engine's code.  Floats serialise via
``repr`` (shortest round-trip), which is platform-stable on every
Python ≥ 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "GOLDEN_SEED",
    "GoldenScenario",
    "GOLDEN_SCENARIOS",
    "golden_names",
    "golden_trace_lines",
]

#: One seed for every golden run: the traces pin engine behaviour, not
#: seed sensitivity (the property and differential suites cover seeds).
GOLDEN_SEED = 19880530


@dataclass(frozen=True)
class GoldenScenario:
    """One pinned run: workload shape + protocol + exact run length."""

    protocol: str
    agents: int
    load: float
    #: Post-warmup completions retained (2 batches of this many halves).
    completions: int = 80
    warmup: int = 10
    #: Why this particular cell is worth pinning.
    rationale: str = ""
    #: Execution engine the trace pins ("event" or "batch").  The batch
    #: engine is contractually bit-identical on its domain, so a batch
    #: golden equals its event twin — pinning both means a divergence
    #: names the engine that moved.
    engine: str = "event"
    #: Bus-level faults per unit simulated time.  Non-zero turns the run
    #: into a fault-domain golden: a deterministic
    #: :class:`~repro.faults.plan.FaultPlan` (seeded from
    #: :data:`GOLDEN_SEED`, bus-level kinds only) plus the default
    #: watchdog policy, so the trace pins anomaly emission, watchdog
    #: attempt counting and recovery scheduling — not just clean grants.
    fault_rate: float = 0.0
    #: Workload family behind the run.  ``closed`` is the original
    #: equal-load think-time population; ``mmpp-closed`` swaps the think
    #: times for closed-loop MMPP draws (still inside the batch-lane
    #: domain, so it can have a batch twin); ``poisson`` and
    #: ``bursty-priority`` are open-loop arrival scenarios (event engine
    #: only — open loops are outside the lane domain by construction).
    workload: str = "closed"


#: The pinned grid: one RR implementation per §3.1 flavour, one FCFS
#: strategy per §3.2 flavour, and the fixed-priority baseline whose
#: starvation behaviour Table 4.1 contrasts against.
GOLDEN_SCENARIOS: Dict[str, GoldenScenario] = {
    "rr": GoldenScenario(
        protocol="rr",
        agents=4,
        load=2.0,
        rationale="RR implementation 1: the §3.1 reference grant order",
    ),
    "rr-impl3": GoldenScenario(
        protocol="rr-impl3",
        agents=4,
        load=2.0,
        rationale="RR implementation 3: pins the extra-round passes",
    ),
    "fcfs": GoldenScenario(
        protocol="fcfs",
        agents=4,
        load=2.0,
        rationale="FCFS strategy 1: window-tie grant order",
    ),
    "fcfs-aincr": GoldenScenario(
        protocol="fcfs-aincr",
        agents=4,
        load=2.0,
        rationale="FCFS strategy 2: arrival-exact grant order",
    ),
    "fixed": GoldenScenario(
        protocol="fixed",
        agents=4,
        load=2.0,
        rationale="fixed priority: the starvation baseline of Table 4.1",
    ),
    # Batch-engine twins: one per batch-capable protocol, same seed and
    # workload as the event goldens so any divergence is the engine's.
    "batch-rr": GoldenScenario(
        protocol="rr",
        agents=4,
        load=2.0,
        engine="batch",
        rationale="batch engine, RR implementation 1",
    ),
    "batch-rr-impl2": GoldenScenario(
        protocol="rr-impl2",
        agents=4,
        load=2.0,
        engine="batch",
        rationale="batch engine, RR implementation 2 (no event twin: pins it)",
    ),
    "batch-rr-impl3": GoldenScenario(
        protocol="rr-impl3",
        agents=4,
        load=2.0,
        engine="batch",
        rationale="batch engine, RR implementation 3 extra-round passes",
    ),
    "batch-fcfs": GoldenScenario(
        protocol="fcfs",
        agents=4,
        load=2.0,
        engine="batch",
        rationale="batch engine, FCFS strategy 1 loss counting",
    ),
    "batch-fcfs-aincr": GoldenScenario(
        protocol="fcfs-aincr",
        agents=4,
        load=2.0,
        engine="batch",
        rationale="batch engine, FCFS strategy 2 arrival ticks",
    ),
    "batch-fixed": GoldenScenario(
        protocol="fixed",
        agents=4,
        load=2.0,
        engine="batch",
        rationale="batch engine, fixed-priority baseline",
    ),
    # Fault-domain twins: the same seeded bus-level fault plan and
    # default watchdog on both engines.  The rate is tuned so the run
    # completes while exercising anomalies, deviated grants and
    # watchdog retries — the whole fault-recovery event vocabulary.
    "rr-faults": GoldenScenario(
        protocol="rr",
        agents=4,
        load=2.0,
        fault_rate=0.3,
        rationale="event engine under bus-level faults: anomaly/retry pinning",
    ),
    "batch-rr-faults": GoldenScenario(
        protocol="rr",
        agents=4,
        load=2.0,
        engine="batch",
        fault_rate=0.3,
        rationale="batch engine fault-timer class, byte-equal to rr-faults",
    ),
    # Arrival-layer goldens.  The closed-loop MMPP pair stays inside the
    # batch-lane domain (stateful distributions ride the default
    # sample_batch path), so it pins the engines against each other; the
    # open-loop pair pins the arrival-clock scheduling and the two-class
    # priority bit, event engine only.
    "mmpp-closed": GoldenScenario(
        protocol="rr",
        agents=4,
        load=2.0,
        workload="mmpp-closed",
        rationale="closed-loop MMPP think times: pins modulated RNG draws",
    ),
    "batch-mmpp-closed": GoldenScenario(
        protocol="rr",
        agents=4,
        load=2.0,
        engine="batch",
        workload="mmpp-closed",
        rationale="batch engine on closed-loop MMPP, byte-equal to mmpp-closed",
    ),
    "openloop-poisson": GoldenScenario(
        protocol="fcfs",
        agents=4,
        load=0.8,
        workload="poisson",
        rationale="open-loop Poisson arrivals: pins the free-running arrival clock",
    ),
    "openloop-bursty-priority": GoldenScenario(
        protocol="rr",
        agents=4,
        load=0.8,
        workload="bursty-priority",
        rationale="on-off bursty sources + §5 two-class overlay: pins MMPP "
        "phase flips and the priority bit in arbitration",
    ),
}


def golden_names() -> Tuple[str, ...]:
    """The golden scenario names, in declaration order."""
    return tuple(GOLDEN_SCENARIOS)


def golden_trace_lines(name: str) -> List[str]:
    """Run one golden scenario and return its canonical JSON lines.

    The returned list is exactly the content of
    ``tests/golden/<name>.jsonl`` (one line per event, no trailing
    newline included per line).
    """
    try:
        golden = GOLDEN_SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown golden scenario {name!r}; have {sorted(GOLDEN_SCENARIOS)}"
        )
    # Imported here, not at module top: repro.experiments.runner imports
    # this package's event/sink modules, so a top-level import would put
    # a cycle one refactor away.
    from repro.bus.watchdog import WatchdogPolicy
    from repro.experiments.runner import SimulationSettings, run_simulation
    from repro.faults.plan import BUS_LEVEL_FAULTS, FaultPlan
    from repro.observability.events import TelemetrySettings
    from repro.protocols.registry import get_spec
    from repro.workload.arrivals import MarkovModulatedPoisson, bursty_equal_load
    from repro.workload.scenarios import (
        AgentSpec,
        ScenarioSpec,
        equal_load,
        mean_interrequest_for_load,
        open_loop_equal_load,
    )

    if golden.workload == "closed":
        scenario = equal_load(golden.agents, golden.load)
    elif golden.workload == "mmpp-closed":
        # Symmetric switch rates make the stationary rate (l0 + l1) / 2,
        # so the long-run think mean matches the equal-load population's.
        mean = mean_interrequest_for_load(golden.load / golden.agents)
        scenario = ScenarioSpec(
            name=f"mmpp-closed-n{golden.agents}-L{golden.load:g}",
            agents=tuple(
                AgentSpec(
                    agent_id=i,
                    interrequest=MarkovModulatedPoisson(
                        (1.6 / mean, 0.4 / mean), (0.05, 0.05)
                    ),
                )
                for i in range(1, golden.agents + 1)
            ),
        )
    elif golden.workload == "poisson":
        scenario = open_loop_equal_load(golden.agents, golden.load, max_outstanding=1)
    elif golden.workload == "bursty-priority":
        scenario = bursty_equal_load(golden.agents, golden.load, urgent_fraction=0.3)
    else:
        raise ConfigurationError(
            f"unknown golden workload {golden.workload!r} in scenario {name!r}"
        )
    fault_plan = None
    watchdog = None
    if golden.fault_rate > 0.0:
        spec = get_spec(golden.protocol)
        fault_plan = FaultPlan.generate(
            seed=GOLDEN_SEED,
            rate=golden.fault_rate,
            horizon=float(golden.completions + golden.warmup),
            kinds=tuple(sorted(BUS_LEVEL_FAULTS, key=lambda kind: kind.value)),
            num_agents=golden.agents,
            line_span=spec.number_width(golden.agents) if spec.number_width else 4,
        )
        watchdog = WatchdogPolicy()
    settings = SimulationSettings(
        batches=2,
        batch_size=golden.completions // 2,
        warmup=golden.warmup,
        seed=GOLDEN_SEED,
        fault_plan=fault_plan,
        watchdog=watchdog,
        telemetry=TelemetrySettings(events=True),
        engine=golden.engine,
    )
    result = run_simulation(scenario, golden.protocol, settings)
    assert result.events is not None
    return [event.to_json() for event in result.events]

"""Metrics registry: counters and fixed-bucket histograms.

The registry is the aggregate face of the telemetry layer: where the
event stream answers *what happened, in order*, the registry answers
*how much of it happened* — arbitration counts, rounds-per-grant and
settle-round distributions, per-agent waiting times, watchdog retry
totals.  It is designed around the sweep executor's determinism
contract:

- every structure is pure Python and picklable, so a registry rides a
  :class:`~repro.stats.summary.RunResult` across process boundaries
  and through the result cache unchanged;
- histograms use *fixed* bucket bounds declared at first use, so two
  registries built from the same events are identical whatever order
  cells executed in, and :func:`merge_metrics` over cells in grid
  order is deterministic;
- merging is associative: per-cell registries from a parallel sweep
  merge to the same totals the serial sweep produces.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.observability.events import ArbitrationEvent
from repro.observability.sinks import EventSink

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "ROUNDS_BUCKETS",
    "COMPETITOR_BUCKETS",
    "WAIT_BUCKETS",
    "merge_metrics",
    "render_metrics",
]

#: Rounds per granted arbitration: 1 everywhere except RR impl 3's
#: occasional second pass, so the tail buckets witness §3.1's cost.
ROUNDS_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0)

#: Competitors per arbitration pass (N is rarely above a few dozen).
COMPETITOR_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)

#: Waiting times in transaction-time units (the paper's W is ≥ 1).
WAIT_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = value

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Counter)
            and other.name == self.name
            and other.value == self.value
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A fixed-bucket histogram: counts of observations per bound.

    Parameters
    ----------
    name:
        Registry key.
    bounds:
        Strictly increasing inclusive upper bounds.  Observations above
        the last bound land in an implicit overflow bucket, so
        ``counts`` has ``len(bounds) + 1`` entries and every
        observation is counted exactly once.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total")

    def __init__(self, name: str, bounds: Tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name!r} needs strictly increasing bounds, got {bounds}"
            )
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Count one observation into its bucket."""
        for slot, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[slot] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> Optional[float]:
        """Mean of all observations, or ``None`` when empty."""
        if self.count == 0:
            return None
        return self.total / self.count

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the q-quantile observation.

        A bucketed quantile is an upper bound, not an estimate: the
        true order statistic is <= the returned bound (``inf`` when it
        falls in the overflow bucket).  Coarse but merge-safe — the
        per-class latency percentiles of merged grid registries come
        from here.  ``None`` when the histogram is empty.
        """
        if not 0.0 < q <= 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for slot, bound in enumerate(self.bounds):
            cumulative += self.counts[slot]
            if cumulative >= rank:
                return bound
        return float("inf")

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's counts into this one."""
        if other.bounds != self.bounds:
            raise ConfigurationError(
                f"histogram {self.name!r} bounds {self.bounds} do not match "
                f"{other.bounds}; merging needs identical buckets"
            )
        for slot, count in enumerate(other.counts):
            self.counts[slot] += count
        self.count += other.count
        self.total += other.total

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Histogram)
            and other.name == self.name
            and other.bounds == self.bounds
            and other.counts == self.counts
            and other.total == self.total
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """A named set of counters and histograms with get-or-create access."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name``, created at zero if new."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str, bounds: Tuple[float, ...]) -> Histogram:
        """The histogram under ``name``; bounds must match on reuse."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        elif histogram.bounds != tuple(float(bound) for bound in bounds):
            raise ConfigurationError(
                f"histogram {name!r} already registered with bounds "
                f"{histogram.bounds}, requested {tuple(bounds)}"
            )
        return histogram

    def counters(self) -> Dict[str, Counter]:
        """Name-sorted snapshot of the counters."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    def histograms(self) -> Dict[str, Histogram]:
        """Name-sorted snapshot of the histograms."""
        return {name: self._histograms[name] for name in sorted(self._histograms)}

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (union of names)."""
        for name in sorted(other._counters):
            self.counter(name).increment(other._counters[name].value)
        for name in sorted(other._histograms):
            theirs = other._histograms[name]
            self.histogram(name, theirs.bounds).merge(theirs)

    def as_dict(self) -> dict:
        """Deterministic plain-data snapshot (sorted names)."""
        return {
            "counters": {
                name: counter.value for name, counter in self.counters().items()
            },
            "histograms": {
                name: {
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "total": histogram.total,
                }
                for name, histogram in self.histograms().items()
            },
        }

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MetricsRegistry) and other.as_dict() == self.as_dict()

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)})"
        )


def merge_metrics(
    registries: Iterable[Optional[MetricsRegistry]],
) -> MetricsRegistry:
    """Merge per-cell registries, in iteration order, skipping ``None``.

    Iteration order only affects nothing observable — counter addition
    and bucket-count addition commute — but taking cells in grid order
    keeps the reduction reproducible by construction.
    """
    merged = MetricsRegistry()
    for registry in registries:
        if registry is not None:
            merged.merge(registry)
    return merged


class MetricsSink(EventSink):
    """Feeds a registry from the arbitration-event stream.

    The bus-level series (per-agent waiting times, completions) are fed
    directly by :class:`~repro.bus.model.BusSystem` at transaction end;
    this sink owns everything derivable from events alone.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def emit(self, event: ArbitrationEvent) -> None:
        registry = self.registry
        registry.counter("arbitrations").increment()
        registry.counter("settle_rounds").increment(event.rounds)
        registry.histogram("competitors", COMPETITOR_BUCKETS).observe(
            len(event.competitors)
        )
        if event.watchdog_attempt > 0:
            registry.counter("watchdog_retries").increment()
        if "deviated" in event.fault_tags:
            registry.counter("deviations").increment()
        if event.anomaly is not None:
            registry.counter(f"anomaly.{event.anomaly}").increment()
            return
        registry.counter("grants").increment()
        registry.histogram("rounds_per_grant", ROUNDS_BUCKETS).observe(event.rounds)


def render_metrics(registry: MetricsRegistry) -> str:
    """A readable fixed-width dump of a registry (the CLI's output)."""
    lines: List[str] = []
    counters = registry.counters()
    histograms = registry.histograms()
    if counters:
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name, counter in counters.items():
            lines.append(f"  {name:<{width}s}  {counter.value}")
    if histograms:
        if lines:
            lines.append("")
        lines.append("histograms")
        for name, histogram in histograms.items():
            mean = histogram.mean
            mean_text = "—" if mean is None else f"{mean:.3f}"
            lines.append(f"  {name}  count={histogram.count}  mean={mean_text}")
            buckets = [
                f"≤{bound:g}:{count}"
                for bound, count in zip(histogram.bounds, histogram.counts)
            ]
            buckets.append(f">{histogram.bounds[-1]:g}:{histogram.counts[-1]}")
            lines.append("    " + "  ".join(buckets))
    if not lines:
        return "(empty registry)"
    return "\n".join(lines)

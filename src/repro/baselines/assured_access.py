"""The two assured-access protocols of §2.2.

Both protocols batch requests so that every request in a batch is served
before any *new* request can compete; within a batch, service falls back
to static-priority order, which is exactly the residual unfairness the
paper quantifies (agents with high identities are always served first in
their batch — up to 2x the throughput of low-identity agents at
saturation, reproduced in Table 4.1(b)).

**Protocol 1** (Fastbus, NuBus, Multibus II): requests that arrive to an
idle bus assert the request line and form a batch; a request generated
while a batch is in progress waits for the batch to end.  The batch ends
when the request line drops — each member releases the line at the start
of its tenure, so the line drops when the *last* member is granted — at
which point all waiting requests form the next batch.

**Protocol 2** (Futurebus): an agent competes in successive arbitrations
until it wins; at the end of its tenure it marks itself *inhibited* and
stops asserting the request line until a *fairness release* — an
arbitration interval in which no agent asserts the request line (either
no outstanding requests, or all of them inhibited).  A new request may
join the current batch if its agent has not yet been served in it.

Urgent (priority) requests ignore the batching rules and compete in every
arbitration with the priority line asserted (§2.4).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.base import ArbitrationOutcome, Request, SingleOutstandingArbiter
from repro.errors import ArbitrationError, ProtocolError

__all__ = ["BatchingAssuredAccess", "FuturebusAssuredAccess"]


class _AssuredAccessBase(SingleOutstandingArbiter):
    """Shared static-priority selection among the eligible set."""

    def _eligible(self) -> Dict[int, Request]:
        """The agents allowed to compete in the next arbitration."""
        raise NotImplementedError

    def has_waiting(self) -> bool:
        return bool(self._eligible())

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        eligible = self._eligible()
        if not eligible:
            raise ArbitrationError(
                f"{self.name} arbitration started with no eligible requests"
            )
        self.arbitrations += 1
        k = self.static_bits
        keys = {
            agent: ((1 if record.priority else 0) << k) | agent
            for agent, record in eligible.items()
        }
        winner = self.max_finder.find_max(keys)
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(keys),
            keys=keys,
        )

    @property
    def identity_width(self) -> int:
        return self.static_bits + 1


class BatchingAssuredAccess(_AssuredAccessBase):
    """Assured-access protocol 1: Fastbus / NuBus / Multibus II batching.

    State: the current batch (members not yet served) and a waiting room
    of requests generated while the batch was in progress.  Requests
    arriving at the same instant the batch forms join it — this matters
    for deterministic (CV = 0) workloads where simultaneous requests are
    common.
    """

    name = "assured-access-1"
    requires_winner_identity = False
    extra_lines = 0
    paper_section = "§2.2"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._batch: Set[int] = set()
        self._waiting_room: Set[int] = set()
        self._batch_formed_at: float = -1.0
        #: Diagnostics: batches formed since construction / reset.
        self.batches_formed = 0

    def _on_request(self, record: Request, now: float) -> None:
        if record.priority:
            return  # urgent requests bypass batching entirely
        if self._batch:
            if now == self._batch_formed_at:
                # Simultaneous with batch formation: same request-line
                # edge, so part of the same batch.
                self._batch.add(record.agent_id)
            else:
                self._waiting_room.add(record.agent_id)
        else:
            self._form_batch({record.agent_id}, now)

    def _form_batch(self, members: Set[int], now: float) -> None:
        self._batch = set(members)
        self._batch_formed_at = now
        self.batches_formed += 1

    def _eligible(self) -> Dict[int, Request]:
        eligible = {
            agent: record
            for agent, record in self._pending.items()
            if record.priority or agent in self._batch
        }
        return eligible

    def _on_grant(self, record: Request, now: float) -> None:
        # The member releases the request line at the start of its tenure;
        # when the last member does, the line drops and every waiting
        # request asserts it, forming the next batch.
        self._batch.discard(record.agent_id)
        self._waiting_room.discard(record.agent_id)  # priority-served early
        if not self._batch and self._waiting_room:
            members, self._waiting_room = self._waiting_room, set()
            self._form_batch(members, now)

    def batch_members(self) -> Set[int]:
        """Unserved members of the current batch (diagnostic)."""
        return set(self._batch)

    def reset(self) -> None:
        super().reset()
        self._batch.clear()
        self._waiting_room.clear()
        self._batch_formed_at = -1.0
        self.batches_formed = 0


class FuturebusAssuredAccess(_AssuredAccessBase):
    """Assured-access protocol 2: Futurebus inhibit + fairness release.

    Each agent carries an *inhibited* flag set at the end of its bus
    tenure.  Inhibited agents hold their requests without asserting the
    request line.  Whenever no agent asserts the line — no outstanding
    requests, or every outstanding request inhibited — a fairness release
    occurs and all flags clear.
    """

    name = "assured-access-2"
    requires_winner_identity = False
    extra_lines = 0
    paper_section = "§2.2"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._inhibited: Set[int] = set()
        self._tenure_was_priority: Dict[int, bool] = {}
        #: Diagnostics: fairness release cycles observed.
        self.fairness_releases = 0

    def _asserting(self) -> Dict[int, Request]:
        return {
            agent: record
            for agent, record in self._pending.items()
            if record.priority or agent not in self._inhibited
        }

    def _maybe_release(self) -> None:
        """Fairness release: the request line is observed low."""
        if self._inhibited and not self._asserting():
            self._inhibited.clear()
            self.fairness_releases += 1

    def _on_request(self, record: Request, now: float) -> None:
        self._maybe_release()

    def _eligible(self) -> Dict[int, Request]:
        self._maybe_release()
        return self._asserting()

    def _on_grant(self, record: Request, now: float) -> None:
        self._tenure_was_priority[record.agent_id] = record.priority

    def release(self, agent_id: int, now: float) -> None:
        if not 1 <= agent_id <= self.num_agents:
            raise ProtocolError(f"agent id {agent_id} outside 1..{self.num_agents}")
        # A tenure obtained through the urgent-request path bypasses the
        # fairness protocol and does not inhibit the agent (§2.4).
        if not self._tenure_was_priority.pop(agent_id, False):
            self._inhibited.add(agent_id)
        self._maybe_release()

    def inhibited_agents(self) -> Set[int]:
        """Agents currently inhibited (diagnostic)."""
        return set(self._inhibited)

    def reset(self) -> None:
        super().reset()
        self._inhibited.clear()
        self.fairness_releases = 0

"""Idealised central arbiters: the scheduling oracles.

The paper's claims are stated against these references: the distributed
RR protocol "implements true round-robin scheduling, identical to the
central round-robin arbiter", and the distributed FCFS protocol
implements "scheduling that is very close to true first-come first-serve
scheduling".  The test suite drives the distributed arbiters and these
oracles through identical request sequences and checks the winner
sequences coincide (exactly for RR; for FCFS, exactly except within
coincident-arrival cohorts).

Both oracles are *central*: they see global state (a service pointer, the
exact arrival times) that no real bus agent could observe — which is
precisely why the paper's distributed constructions are interesting.
"""

from __future__ import annotations

from repro.core.base import ArbitrationOutcome, SingleOutstandingArbiter
from repro.errors import ArbitrationError, ConfigurationError

__all__ = ["CentralRoundRobin", "CentralFCFS"]


class CentralRoundRobin(SingleOutstandingArbiter):
    """True round-robin with a central service pointer.

    After serving agent ``j``, the scan order for the next grant is
    ``j-1, j-2, …, 1, N, N-1, …, j`` — the *descending* scan realised by
    maximum finding (§3.1).  An ``ascending`` direction is provided for
    completeness (the classical token-passing scan ``j+1, j+2, …``); the
    distributed protocol matches the descending oracle.
    """

    name = "central-rr"
    requires_winner_identity = False
    paper_section = "oracle"

    def __init__(
        self,
        num_agents: int,
        direction: str = "descending",
        **kwargs,
    ) -> None:
        super().__init__(num_agents, **kwargs)
        if direction not in ("descending", "ascending"):
            raise ConfigurationError(
                f"direction must be 'descending' or 'ascending', got {direction!r}"
            )
        self.direction = direction
        self.pointer = 0 if direction == "descending" else num_agents + 1

    def has_waiting(self) -> bool:
        return bool(self._pending)

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        if not self._pending:
            raise ArbitrationError("central RR arbitration started with no requests")
        self.arbitrations += 1
        waiting = self._pending.keys()
        if self.direction == "descending":
            below = [a for a in waiting if a < self.pointer]
            winner = max(below) if below else max(waiting)
        else:
            above = [a for a in waiting if a > self.pointer]
            winner = min(above) if above else min(waiting)
        self.pointer = winner
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(waiting),
            keys={agent: agent for agent in waiting},
        )

    def reset(self) -> None:
        super().reset()
        self.pointer = 0 if self.direction == "descending" else self.num_agents + 1


class CentralFCFS(SingleOutstandingArbiter):
    """True first-come first-serve from exact arrival timestamps.

    Ties (identical arrival instants) are broken by the higher static
    identity, matching what the distributed protocol's static part does
    for coincident arrivals.
    """

    name = "central-fcfs"
    requires_winner_identity = False
    paper_section = "oracle"

    def has_waiting(self) -> bool:
        return bool(self._pending)

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        if not self._pending:
            raise ArbitrationError("central FCFS arbitration started with no requests")
        self.arbitrations += 1
        winner = min(
            self._pending,
            key=lambda agent: (
                not self._pending[agent].priority,  # urgent requests first
                self._pending[agent].issue_time,
                -agent,
            ),
        )
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(self._pending),
            keys={agent: agent for agent in self._pending},
        )

"""Ticket-assignment FCFS arbiter [ShAh81].

Sharma and Ahuja's Bell System Technical Journal scheme is the prior
FCFS proposal the paper cites (and improves on): a central ticket
dispenser hands each arriving request the next ticket number; the bus
serves the lowest outstanding ticket.  Tickets are drawn from a modular
counter sized like the paper's waiting-time counters, and simultaneous
arrivals receive *distinct* tickets in arbitrary (here: identity) order
— the dispenser serialises them, which is exactly what a distributed
arbiter cannot cheaply do and why the paper calls its own §3.2 design
"the first practical proposal for a FCFS arbiter".

Kept as a baseline: the equivalence tests show the paper's a-incr
arbiter matches this oracle's schedule except within coincident-arrival
cohorts (where the dispenser's serialisation is the only difference).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.core.base import ArbitrationOutcome, Request, SingleOutstandingArbiter
from repro.errors import ArbitrationError

__all__ = ["TicketFCFS"]


class TicketFCFS(SingleOutstandingArbiter):
    """Central ticket-dispenser FCFS (the [ShAh81] baseline)."""

    name = "ticket-fcfs"
    requires_winner_identity = False
    extra_lines = 0
    paper_section = "[ShAh81]"

    def __init__(self, num_agents: int, **kwargs) -> None:
        super().__init__(num_agents, **kwargs)
        #: Modular ticket space, sized like the §3.2 counters: with one
        #: outstanding request per agent at most N tickets are live.
        self.ticket_bits = max(1, math.ceil(math.log2(num_agents + 1)))
        self.ticket_modulus = 1 << self.ticket_bits
        self._next_ticket = 0
        self._tickets: Dict[int, int] = {}
        self._issued_order = 0
        self._orders: Dict[int, int] = {}

    def _on_request(self, record: Request, now: float) -> None:
        self._tickets[record.agent_id] = self._next_ticket % self.ticket_modulus
        self._next_ticket += 1
        # Total issue order, kept alongside the modular ticket so the
        # arbiter can resolve wrap-around exactly the way the hardware
        # does (at most N live tickets, so modular distance is unique).
        self._orders[record.agent_id] = self._issued_order
        self._issued_order += 1

    def has_waiting(self) -> bool:
        return bool(self._pending)

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        if not self._pending:
            raise ArbitrationError("ticket arbitration started with no requests")
        self.arbitrations += 1
        # Lowest live ticket wins; modular comparison is safe because at
        # most num_agents < modulus tickets are outstanding.
        oldest = min(self._orders, key=self._orders.get)
        keys = {
            agent: self.ticket_modulus - 1 - self._tickets[agent]
            for agent in self._pending
        }
        return ArbitrationOutcome(
            winner=oldest,
            rounds=1,
            competitors=frozenset(self._pending),
            keys=keys,
        )

    def _on_grant(self, record: Request, now: float) -> None:
        self._tickets.pop(record.agent_id, None)
        self._orders.pop(record.agent_id, None)

    def live_tickets(self) -> Dict[int, int]:
        """Outstanding agent → ticket assignments (diagnostic)."""
        return dict(self._tickets)

    def reset(self) -> None:
        super().reset()
        self._next_ticket = 0
        self._issued_order = 0
        self._tickets.clear()
        self._orders.clear()

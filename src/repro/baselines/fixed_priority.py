"""The raw parallel contention arbiter: fixed-priority scheduling (§2.1).

Every requester competes in every arbitration using its static identity;
the highest identity always wins.  This is what the bus does with *no*
fairness protocol layered on top, and it starves low-identity agents
under contention — the problem every other arbiter in this library
exists to fix.  Kept as the degenerate baseline for fairness studies.
"""

from __future__ import annotations

from repro.core.base import ArbitrationOutcome, SingleOutstandingArbiter
from repro.errors import ArbitrationError

__all__ = ["FixedPriorityArbiter"]


class FixedPriorityArbiter(SingleOutstandingArbiter):
    """Highest static identity wins, unconditionally."""

    name = "fixed-priority"
    requires_winner_identity = False
    extra_lines = 0
    paper_section = "§2.1"

    def has_waiting(self) -> bool:
        return bool(self._pending)

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        if not self._pending:
            raise ArbitrationError(
                "fixed-priority arbitration started with no requests"
            )
        self.arbitrations += 1
        k = self.static_bits
        keys = {
            agent: ((1 if record.priority else 0) << k) | agent
            for agent, record in self._pending.items()
        }
        winner = self.max_finder.find_max(keys)
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(keys),
            keys=keys,
        )

    @property
    def identity_width(self) -> int:
        return self.static_bits + 1

"""Baseline arbiters the paper compares against.

- :class:`~repro.baselines.fixed_priority.FixedPriorityArbiter` — the raw
  parallel contention arbiter of §2.1 (no fairness protocol);
- :class:`~repro.baselines.assured_access.BatchingAssuredAccess` — the
  first assured-access protocol of §2.2 (Fastbus / NuBus / Multibus II);
- :class:`~repro.baselines.assured_access.FuturebusAssuredAccess` — the
  second assured-access protocol of §2.2 (Futurebus inhibit +
  fairness-release);
- :class:`~repro.baselines.central.CentralRoundRobin` and
  :class:`~repro.baselines.central.CentralFCFS` — idealised central
  arbiters, used as the oracles that define "true RR" and "true FCFS"
  scheduling in the equivalence tests;
- :class:`~repro.baselines.rotating.RotatingPriorityRR` — the
  rotating-arbitration-number RR prior art the paper rejects as fragile
  (§2.2/§3.1), with the fault hooks that make the fragility observable;
- :class:`~repro.baselines.ticket.TicketFCFS` — Sharma & Ahuja's
  ticket-assignment FCFS [ShAh81], the prior FCFS proposal the paper
  cites.
"""

from repro.baselines.assured_access import BatchingAssuredAccess, FuturebusAssuredAccess
from repro.baselines.central import CentralFCFS, CentralRoundRobin
from repro.baselines.fixed_priority import FixedPriorityArbiter
from repro.baselines.rotating import RotatingPriorityRR
from repro.baselines.ticket import TicketFCFS

__all__ = [
    "FixedPriorityArbiter",
    "BatchingAssuredAccess",
    "FuturebusAssuredAccess",
    "CentralRoundRobin",
    "CentralFCFS",
    "RotatingPriorityRR",
    "TicketFCFS",
]

"""Rotating-priority round-robin: the prior art the paper rejects.

§2.2/§3.1: "Round-robin scheduling, implemented using a dynamic
assignment of arbitration numbers, has been proposed.  However, this
scheme is less robust and more complex to implement than schemes that
are based on static identities."

In the rotating scheme every agent re-derives its *current* arbitration
number after each arbitration: if agent ``j`` just won, the next
arbitration ranks agents by distance below ``j`` in cyclic order, i.e.

    number(agent) = (j - agent) mod N     (larger = served sooner? no —)
    number(agent) = N - ((agent - j) mod N)   so j-1 maps to N-1 … j to 0

Scheduling-wise this is the same round-robin scan as the paper's
protocol — the equivalence tests prove it — but the number each agent
applies is a *function of shared mutable state replicated at every
agent*.  If one agent ever misses a winner broadcast, its notion of the
rotation disagrees with everyone else's forever after: duplicate
arbitration numbers appear on the lines and the maximum-finding result
no longer identifies a unique winner.  The static-identity protocol
also replicates the last winner, but a disagreement there heals the
moment the next arbitration ends, because the *identity* on the lines
is still globally unique.  :mod:`repro.faults` makes both behaviours
observable, which is the substance of the paper's robustness claim.
"""

from __future__ import annotations

from typing import Dict

from repro.core.base import ArbitrationOutcome, Request, SingleOutstandingArbiter
from repro.errors import ArbitrationError, NoUniqueWinnerError

__all__ = ["RotatingPriorityRR"]


class RotatingPriorityRR(SingleOutstandingArbiter):
    """Distributed RR via dynamically rotated arbitration numbers.

    Each agent keeps a private ``rotation`` origin (the last winner it
    *observed*).  In a fault-free run all origins agree and the protocol
    is exactly round-robin; the per-agent origins exist so fault
    injection can desynchronise one agent the way a glitched winner
    broadcast would on real hardware.
    """

    name = "rotating-rr"
    requires_winner_identity = True
    extra_lines = 0
    paper_section = "§2.2"

    def __init__(self, num_agents: int, **kwargs) -> None:
        super().__init__(num_agents, **kwargs)
        #: Per-agent view of the rotation origin (last observed winner).
        #: Origin 1 makes the first arbitration rank agents by static
        #: identity, matching the static protocol's reset behaviour.
        self.origin: Dict[int, int] = {
            agent: 1 for agent in range(1, num_agents + 1)
        }
        self._drops: Dict[int, int] = {}
        #: Diagnostics: winner observations dropped by fault injection.
        self.observations_dropped = 0

    def _current_number(self, agent_id: int) -> int:
        """The dynamic arbitration number this agent would apply now.

        With origin ``j`` (the last winner), agent ``j-1`` gets the
        highest number N, ``j-2`` gets N−1, …, and ``j`` itself gets 1 —
        the descending RR scan realised by maximum finding.
        """
        origin = self.origin[agent_id]
        distance = ((origin - agent_id - 1) % self.num_agents) + 1
        return self.num_agents + 1 - distance

    def has_waiting(self) -> bool:
        return bool(self._pending)

    def start_arbitration(self, now: float) -> ArbitrationOutcome:
        if not self._pending:
            raise ArbitrationError(
                "rotating-priority arbitration started with no requests"
            )
        self.arbitrations += 1
        keys: Dict[int, int] = {}
        numbers_seen: Dict[int, int] = {}
        for agent in self._pending:
            number = self._current_number(agent)
            if number in numbers_seen:
                # Two agents applied the same dynamic number: their
                # rotation views have diverged.  On the wire the OR of
                # the two patterns is taken for a single winner and the
                # bus grants the wrong agent or two at once — the
                # failure mode the paper's static scheme avoids.
                raise NoUniqueWinnerError(
                    f"rotation desynchronised: agents {numbers_seen[number]} "
                    f"and {agent} both applied arbitration number {number}"
                )
            numbers_seen[number] = agent
            keys[agent] = number
        winner = self.max_finder.find_max(keys)
        self._broadcast_winner(winner)
        return ArbitrationOutcome(
            winner=winner,
            rounds=1,
            competitors=frozenset(keys),
            keys=keys,
        )

    def drop_winner_observations(self, agent_id: int, count: int = 1) -> None:
        """Fault injection: ``agent_id`` misses its next ``count`` winners.

        With rotating priorities this is the unrecoverable fault the
        paper's §3.1 alludes to — see :mod:`repro.faults`.
        """
        self._validate_agent(agent_id)
        self._drops[agent_id] = self._drops.get(agent_id, 0) + count

    def _broadcast_winner(self, winner: int) -> None:
        """Every non-faulted agent observes the winner and rotates."""
        for agent in self.origin:
            pending_drops = self._drops.get(agent, 0)
            if pending_drops:
                self._drops[agent] = pending_drops - 1
                self.observations_dropped += 1
                continue
            self.origin[agent] = winner

    def desynchronised_agents(self) -> frozenset:
        """Agents whose rotation origin disagrees with the majority."""
        from collections import Counter

        majority, __ = Counter(self.origin.values()).most_common(1)[0]
        return frozenset(
            agent for agent, origin in self.origin.items() if origin != majority
        )

    def reset(self) -> None:
        super().reset()
        self.origin = {agent: 1 for agent in range(1, self.num_agents + 1)}
        self._drops.clear()
        self.observations_dropped = 0

"""Plain-text rendering of experiment results.

The harness prints tables shaped like the paper's, so a reproduction run
can be eyeballed against the original side by side.  Everything renders
to monospace text (no plotting dependency); Figure 4.1 gets an ASCII
line plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.stats.batch_means import BatchMeansEstimate

__all__ = ["ExperimentTable", "fmt_estimate", "ascii_plot"]


def fmt_estimate(estimate: BatchMeansEstimate, digits: int = 2) -> str:
    """Render ``mean ± halfwidth`` the way the paper's tables do."""
    return f"{estimate.mean:.{digits}f} ± {estimate.halfwidth:.{digits}f}"


@dataclass
class ExperimentTable:
    """One reproduced table (or table panel) with provenance.

    Attributes
    ----------
    title:
        e.g. ``"Table 4.1(a): ... (10 agents)"``.
    headers:
        Column names.
    rows:
        Cell values, already formatted to strings.
    data:
        Machine-readable row dictionaries, for tests and EXPERIMENTS.md.
    notes:
        Free-form provenance (scale used, seed, caveats).
    """

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    data: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, cells: Sequence[str], record: Dict[str, object]) -> None:
        """Append one formatted row plus its machine-readable record."""
        self.rows.append([str(cell) for cell in cells])
        self.data.append(dict(record))

    def render(self) -> str:
        """The table as monospace text."""
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for column, cell in enumerate(row):
                widths[column] = max(widths[column], len(cell))
        lines = [self.title]
        header = "  ".join(
            header.ljust(widths[i]) for i, header in enumerate(self.headers)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def ascii_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 68,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "F(x)",
) -> str:
    """A rough monospace line plot of one or more (x, y) series.

    Good enough to see Figure 4.1's shape: the FCFS CDF rising sharply
    near the mean while the RR CDF spreads out.
    """
    if not series:
        return "(no data)"
    markers = "*o+x#@"
    points = [p for pts in series.values() for p in pts]
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in pts:
            column = int((x - x_min) / x_span * (width - 1))
            row = height - 1 - int((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker
    lines = []
    for row_index, row in enumerate(grid):
        y_value = y_max - row_index * y_span / (height - 1)
        lines.append(f"{y_value:6.2f} |" + "".join(row))
    lines.append(" " * 7 + "+" + "-" * width)
    lines.append(f"{'':7}{x_min:<10.2f}{x_label:^{max(0, width - 20)}}{x_max:>10.2f}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':7}{legend}   ({y_label} vs {x_label})")
    return "\n".join(lines)

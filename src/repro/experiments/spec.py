"""Declarative experiment grids: specs the table modules compile to.

The paper's evaluation is one grid of independent ``(scenario, protocol,
settings)`` cells.  Instead of each experiment module hand-rolling
headers, settings construction, sweep submission and row assembly, a
module declares its grid as data —

- :class:`CellSpec` — one simulation, validated against the protocol
  registry at construction time;
- :class:`RowSpec` — the cells one table row consumes, keyed for lookup;
- :class:`PanelSpec` — a titled table: header row, row specs, and a
  ``build_row`` callback holding the table's (irreducibly specific)
  row arithmetic;
- :class:`ExperimentSpec` — the panels of one table/figure.

— and :func:`build_table` / :func:`build_tables` do the rest: flatten
the grid, submit it as one batch of session-layer
:class:`~repro.session.request.RunRequest`\\ s (parallel- and
cache-friendly), and assemble the rendered
:class:`~repro.experiments.formatting.ExperimentTable`.  Cells are
submitted in row-major declaration order, so results are byte-identical
to the historical per-module loops at the same scale and seed.

Any :data:`RunExecutor` can back a grid: a
:class:`~repro.experiments.sweep.SweepExecutor` (the default) or a
:class:`~repro.session.session.Session` — both expose
``run_requests(requests) -> [RunOutcome]`` and ``simulate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError
from repro.experiments.formatting import ExperimentTable
from repro.experiments.runner import SimulationSettings
from repro.experiments.scale import Scale
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.protocols.registry import get_spec
from repro.session.request import RunRequest
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.session import Session

__all__ = [
    "CellSpec",
    "RowSpec",
    "PanelSpec",
    "ExperimentSpec",
    "RowBuilder",
    "RunExecutor",
    "settings_for",
    "grid_rows",
    "run_cells",
    "build_table",
    "build_tables",
]

#: Anything that can back an experiment grid: duck-typed on
#: ``run_requests(requests) -> [RunOutcome]`` plus ``simulate``.
RunExecutor = Union[SweepExecutor, "Session"]

#: ``build_row(label, results_by_key) -> (formatted_cells, record)``.
RowBuilder = Callable[
    [object, Mapping[str, RunResult]],
    Tuple[Sequence[str], Dict[str, object]],
]


def settings_for(scale: Scale, seed: int, **overrides) -> SimulationSettings:
    """Run-length settings for one grid: scale knobs plus overrides."""
    return SimulationSettings(
        batches=scale.batches,
        batch_size=scale.batch_size,
        warmup=scale.warmup,
        seed=seed,
        **overrides,
    )


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation of a declared grid.

    Construction validates the cell against the protocol registry: the
    protocol must be registered, and the scenario's outstanding-request
    needs must be within the protocol's declared capabilities — config
    time, not mid-run.
    """

    key: str
    scenario: ScenarioSpec
    protocol: str
    settings: SimulationSettings
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        spec = get_spec(self.protocol)
        spec.check_outstanding(
            max(agent.max_outstanding for agent in self.scenario.agents)
        )

    def sweep_cell(self) -> SweepCell:
        """The executable form submitted to a sweep executor."""
        return SweepCell(self.scenario, self.protocol, self.settings, tag=self.tag)

    def run_request(self) -> RunRequest:
        """The session-layer form of the cell."""
        return RunRequest(self.scenario, self.protocol, self.settings, tag=self.tag)


@dataclass(frozen=True)
class RowSpec:
    """The cells one table row consumes, plus the label passed to build_row."""

    label: object
    cells: Tuple[CellSpec, ...]

    def __post_init__(self) -> None:
        keys = [cell.key for cell in self.cells]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(
                f"row {self.label!r} declares duplicate cell keys: {keys}"
            )


@dataclass(frozen=True)
class PanelSpec:
    """One titled table panel: headers, row grid, and row arithmetic."""

    title: str
    headers: Tuple[str, ...]
    rows: Tuple[RowSpec, ...]
    build_row: RowBuilder
    notes: str = ""

    def cells(self) -> Tuple[CellSpec, ...]:
        """All cells of the panel, flattened in row-major order."""
        return tuple(cell for row in self.rows for cell in row.cells)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment (table or figure): a named sequence of panels."""

    name: str
    panels: Tuple[PanelSpec, ...]

    def cells(self) -> Tuple[CellSpec, ...]:
        """All cells of the experiment, flattened in panel order."""
        return tuple(cell for panel in self.panels for cell in panel.cells())


def grid_rows(
    labels: Iterable[object],
    protocols: Sequence[str],
    scenario_for: Callable[[object], ScenarioSpec],
    settings: SimulationSettings,
    tag: Callable[[object, str], str],
) -> Tuple[RowSpec, ...]:
    """The common grid shape: one row per label, one cell per protocol.

    The scenario is built once per label and shared by that row's cells
    (each cell still simulates against a private copy — the sweep layer
    guarantees that), and cells are keyed by protocol name.
    """
    rows = []
    for label in labels:
        scenario = scenario_for(label)
        rows.append(
            RowSpec(
                label=label,
                cells=tuple(
                    CellSpec(
                        key=protocol,
                        scenario=scenario,
                        protocol=protocol,
                        settings=settings,
                        tag=tag(label, protocol),
                    )
                    for protocol in protocols
                ),
            )
        )
    return tuple(rows)


def run_cells(
    cells: Sequence[CellSpec],
    executor: Optional[RunExecutor] = None,
) -> List[RunResult]:
    """Execute declared cells as one session batch; results in cell order."""
    executor = executor or SweepExecutor()
    outcomes = executor.run_requests([cell.run_request() for cell in cells])
    return [outcome.result for outcome in outcomes]


def build_table(
    panel: PanelSpec,
    executor: Optional[RunExecutor] = None,
) -> ExperimentTable:
    """Compile one panel: run its grid, assemble the rendered table."""
    results = iter(run_cells(panel.cells(), executor))
    table = ExperimentTable(
        title=panel.title, headers=list(panel.headers), notes=panel.notes
    )
    for row in panel.rows:
        by_key = {cell.key: next(results) for cell in row.cells}
        formatted, record = panel.build_row(row.label, by_key)
        table.add_row(formatted, record)
    return table


def build_tables(
    experiment: ExperimentSpec,
    executor: Optional[RunExecutor] = None,
) -> Tuple[ExperimentTable, ...]:
    """Compile every panel of an experiment, sharing one executor."""
    executor = executor or SweepExecutor()
    return tuple(build_table(panel, executor) for panel in experiment.panels)

"""Figure 4.1: CDF of the bus waiting time for RR and FCFS.

30 agents, total offered load 1.5 — the paper's "typical" saturated
operating point.  The FCFS CDF rises sharply near the (shared) mean
waiting time; the RR CDF spreads both ways, the visual signature of its
higher variance.  Rendered as an ASCII plot plus the underlying series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.formatting import ascii_plot
from repro.experiments.params import DEFAULT_SEED
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import CellSpec, run_cells, settings_for
from repro.experiments.spec import RunExecutor
from repro.experiments.sweep import SweepExecutor
from repro.stats.cdf import EmpiricalCDF
from repro.workload.scenarios import equal_load

__all__ = ["run", "FigureResult"]


@dataclass
class FigureResult:
    """The two CDFs plus plot-ready series."""

    num_agents: int
    load: float
    rr_cdf: EmpiricalCDF
    fcfs_cdf: EmpiricalCDF
    series: Dict[str, List[Tuple[float, float]]]
    notes: str

    def series_csv(self) -> str:
        """The plotted series as CSV (``x,fcfs,rr`` per row).

        For users who want to regenerate the figure in a real plotting
        tool: both CDFs are evaluated on the same x grid.
        """
        lines = ["x,fcfs,rr"]
        rr_by_x = dict(self.series["RR"])
        for x, fcfs_value in self.series["FCFS"]:
            lines.append(f"{x:.6g},{fcfs_value:.6g},{rr_by_x[x]:.6g}")
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        """ASCII rendering of the figure with summary statistics."""
        plot = ascii_plot(self.series, x_label="waiting time W", y_label="CDF")
        summary = (
            f"mean W: RR {self.rr_cdf.mean:.2f}, FCFS {self.fcfs_cdf.mean:.2f}; "
            f"std W: RR {self.rr_cdf.std:.2f}, FCFS {self.fcfs_cdf.std:.2f}"
        )
        title = (
            f"Figure 4.1: CDF of the bus waiting time for RR and FCFS "
            f"({self.num_agents} agents; load = {self.load:g})"
        )
        return "\n".join([title, plot, summary, self.notes])

    def __str__(self) -> str:
        return self.render()


def run(
    num_agents: int = 30,
    load: float = 1.5,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    points: int = 60,
    executor: Optional[RunExecutor] = None,
) -> FigureResult:
    """Reproduce Figure 4.1 (defaults: the paper's 30 agents, load 1.5)."""
    scale = scale or current_scale()
    settings = settings_for(scale, seed, keep_samples=True)
    scenario = equal_load(num_agents, load)
    rr, fcfs = run_cells(
        [
            CellSpec("rr", scenario, "rr", settings, tag=f"fig4.1/n{num_agents}/rr"),
            CellSpec("fcfs", scenario, "fcfs", settings, tag=f"fig4.1/n{num_agents}/fcfs"),
        ],
        executor,
    )
    rr_cdf = rr.waiting_cdf()
    fcfs_cdf = fcfs.waiting_cdf()
    upper = math.ceil(max(rr_cdf.quantile(0.999), fcfs_cdf.quantile(0.999)))
    xs = [upper * i / (points - 1) for i in range(points)]
    series = {
        "FCFS": fcfs_cdf.series(xs),
        "RR": rr_cdf.series(xs),
    }
    return FigureResult(
        num_agents=num_agents,
        load=load,
        rr_cdf=rr_cdf,
        fcfs_cdf=fcfs_cdf,
        series=series,
        notes=f"scale={scale.name}, seed={seed}",
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    print(run().render())

"""The paper's published numbers, transcribed for comparison.

Every value below is transcribed from the ISCA'88 text of Vernon &
Manber.  They are used by ``scripts/generate_experiments.py`` (to print
paper-vs-measured tables) and by the anchored regression tests, which
hold the simulator to the legible cells within statistical tolerance.

``None`` marks cells that are illegible in our source scan (the paper
PDF is a 1988 scan with OCR damage in a few columns); those are shown
as "—" in EXPERIMENTS.md and skipped by the tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "LOADS",
    "TABLE_4_1",
    "TABLE_4_2",
    "TABLE_4_3_OVERLAP",
    "TABLE_4_4",
    "TABLE_4_5_RR_RATIO",
    "waiting_anchor",
]

#: Total offered loads of the 8-row tables (the paper prints 7.52 for
#: the 10-agent system; see docs/methodology.md).
LOADS: Tuple[float, ...] = (0.25, 0.50, 1.00, 1.50, 2.00, 2.50, 5.00, 7.50)

#: Table 4.1 — throughput ratio t_N/t_1 per protocol, rows = LOADS.
TABLE_4_1: Dict[int, Dict[str, Optional[Sequence[float]]]] = {
    10: {
        "rr": (0.99, 0.96, 1.02, 0.98, 1.00, 1.00, 1.00, 1.00),
        "fcfs": (1.00, 1.03, 1.04, 1.08, 1.09, 1.09, 1.05, 1.01),
        "aap": None,
    },
    30: {
        "rr": None,  # column illegible in our source scan
        "fcfs": (1.00, 0.98, 1.05, 1.06, 1.06, 1.03, 1.04, 1.03),
        "aap": (0.98, 0.99, 1.07, 1.27, 1.53, 1.68, 1.96, 1.99),
    },
    64: {
        "rr": (1.00, 1.05, 0.97, 0.99, 0.99, 0.98, 1.00, 1.00),
        "fcfs": (1.05, 1.01, 1.07, 1.01, 1.00, 1.02, 1.01, 1.01),
        "aap": None,
    },
}

#: Table 4.2 — mean waiting time W and σ_W per protocol, rows = LOADS.
TABLE_4_2: Dict[int, Dict[str, Sequence[float]]] = {
    10: {
        "w": (1.64, 1.85, 2.77, 4.47, 6.00, 7.00, 9.00, 9.67),
        "std_fcfs": (0.33, 0.56, 1.18, 1.54, 1.43, 1.25, 0.71, 0.32),
        "std_rr": (0.33, 0.58, 1.30, 1.94, 2.09, 2.02, 0.99, 0.33),
    },
    30: {
        "w": (1.66, 1.94, 4.11, 11.02, 16.00, 19.00, 25.00, 27.00),
        "std_fcfs": (0.36, 0.68, 2.18, 3.06, 2.67, 2.35, 1.60, 1.25),
        "std_rr": (0.36, 0.71, 2.63, 5.39, 6.42, 6.62, 4.71, 2.99),
    },
    64: {
        "w": (1.66, 1.96, 5.52, 22.32, 32.99, 39.39, 52.20, 56.46),
        "std_fcfs": (0.37, 0.72, 3.23, 4.54, 3.93, 3.51, 2.44, 1.95),
        "std_rr": (0.37, 0.76, 4.06, 10.99, 13.78, 14.45, 10.89, 7.46),
    },
}

#: Table 4.3 — the execution-overlap values v, rows = LOADS.  Only the
#: 10-agent column is fully legible in our source; see
#: docs/methodology.md for the crossing-rule discussion.
TABLE_4_3_OVERLAP: Dict[int, Optional[Sequence[Optional[float]]]] = {
    10: (None, 4.0, 5.0, 6.0, 7.0, 7.0, 9.0, 9.0),
    30: (4.0, 4.0, 9.0, 23.0, 33.0, 39.0, 52.0, 56.0),
    64: None,
}

#: Table 4.4 — t1/t2 ratios for the double- and quadruple-rate agent;
#: rows = the first seven LOADS (the paper omits 7.5 here).
TABLE_4_4: Dict[float, Dict[str, Sequence[float]]] = {
    2.0: {
        "rr": (2.00, 1.99, 1.85, 1.42, 1.22, 1.10, 1.01),
        "fcfs": (1.95, 2.08, 1.80, 1.47, 1.31, 1.26, 1.10),
    },
    4.0: {
        "rr": (3.99, 3.92, 3.03, 1.70, 1.28, 1.10, 1.01),
        "fcfs": (3.85, 3.83, 2.99, 1.94, 1.59, 1.41, 1.16),
    },
}

#: Table 4.5 — t_slow/t_other for the RR protocol, keyed by
#: (num_agents, cv).  The paper sweeps CV only for 10 agents.
TABLE_4_5_RR_RATIO: Dict[Tuple[int, float], float] = {
    (10, 0.0): 0.50,
    (10, 0.25): 0.76,
    (10, 0.33): 0.76,
    (10, 0.5): 0.76,
    (10, 1.0): 0.76,
    (30, 0.0): 0.50,
    (64, 0.0): 0.50,
}


def waiting_anchor(num_agents: int, load: float) -> Optional[float]:
    """The paper's mean waiting time W for one (system size, load) cell."""
    table = TABLE_4_2.get(num_agents)
    if table is None:
        return None
    try:
        index = LOADS.index(load)
    except ValueError:
        return None
    return table["w"][index]

"""Table 4.4: bandwidth allocation among agents with unequal loads.

Agent 1 offers twice (panel a) or four times (panel b) the load of every
other agent; the table tracks the ratio of agent 1's throughput to agent
2's.  At low load both protocols deliver bandwidth in proportion to
demand (ratio ≈ the load ratio); as the bus saturates, waiting times
dominate and the ratios sink toward 1 — but FCFS, which schedules on
arrival times, stays measurably closer to the demand ratio than RR,
which rotates service evenly regardless of demand.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import (
    RunExecutor, ExperimentSpec, PanelSpec, build_table, build_tables, grid_rows, settings_for,
)
from repro.workload.scenarios import unequal_load

__all__ = ["run", "run_panel", "panel_spec", "spec", "BASE_LOADS"]

#: Per-regular-agent total-load bases (the paper's Table 4.1 loads minus
#: the 7.5 row, which Table 4.4 omits).
BASE_LOADS: Tuple[float, ...] = (0.25, 0.50, 1.00, 1.50, 2.00, 2.50, 5.00)


def panel_spec(factor: float, num_agents: int = 30,
               base_loads: Sequence[float] = BASE_LOADS,
               scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> PanelSpec:
    """One panel of Table 4.4 (one rate factor), as a declarative grid."""
    scale = scale or current_scale()

    def build_row(base, results):
        rr, fcfs = results["rr"], results["fcfs"]
        total = rr.scenario.total_offered_load()
        throughput = rr.system_throughput()
        ratio_rr = rr.throughput_ratio(1, 2)
        ratio_fcfs = fcfs.throughput_ratio(1, 2)
        return (
            [
                f"{total:.2f}",
                f"{throughput.mean:.2f}",
                f"{factor:.2f}",
                fmt_estimate(ratio_rr),
                fmt_estimate(ratio_fcfs),
            ],
            {
                "num_agents": num_agents,
                "factor": factor,
                "total_load": total,
                "throughput": throughput,
                "ratio_rr": ratio_rr,
                "ratio_fcfs": ratio_fcfs,
            },
        )

    return PanelSpec(
        title=(
            f"Table 4.4: unequal request rates — agent 1 at {factor:g}x "
            f"({num_agents} agents)"
        ),
        headers=("Load", "λ", "Load1/Load2", "t1/t2 RR", "t1/t2 FCFS"),
        rows=grid_rows(
            base_loads,
            ("rr", "fcfs"),
            lambda base: unequal_load(num_agents, base / num_agents, factor),
            settings_for(scale, seed),
            lambda base, protocol: f"t4.4/f{factor:g}/L{base:g}/{protocol}",
        ),
        build_row=build_row,
        notes=f"scale={scale.name}, seed={seed}",
    )


def spec(factors: Sequence[float] = (2.0, 4.0), num_agents: int = 30,
         base_loads: Sequence[float] = BASE_LOADS,
         scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> ExperimentSpec:
    """Both panels of Table 4.4."""
    return ExperimentSpec(
        name="table-4.4",
        panels=tuple(
            panel_spec(factor, num_agents, base_loads, scale, seed)
            for factor in factors
        ),
    )


def run_panel(factor: float, num_agents: int = 30,
              base_loads: Sequence[float] = BASE_LOADS,
              scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
              executor: Optional[RunExecutor] = None) -> ExperimentTable:
    """One panel of Table 4.4 (one rate factor)."""
    return build_table(panel_spec(factor, num_agents, base_loads, scale, seed), executor)


def run(factors: Sequence[float] = (2.0, 4.0), num_agents: int = 30,
        base_loads: Sequence[float] = BASE_LOADS,
        scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
        executor: Optional[RunExecutor] = None) -> Tuple[ExperimentTable, ...]:
    """Both panels of Table 4.4."""
    return build_tables(spec(factors, num_agents, base_loads, scale, seed), executor)


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

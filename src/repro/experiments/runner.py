"""Protocol registry and the single-run entry point.

:func:`run_simulation` is the one place a scenario, a protocol name and
run-length settings meet; every experiment module and every example goes
through it.  Protocols are registered by name so experiments, the CLI
and the benchmarks share one vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.baselines.assured_access import BatchingAssuredAccess, FuturebusAssuredAccess
from repro.baselines.central import CentralFCFS, CentralRoundRobin
from repro.baselines.fixed_priority import FixedPriorityArbiter
from repro.baselines.rotating import RotatingPriorityRR
from repro.baselines.ticket import TicketFCFS
from repro.bus.model import BusSystem
from repro.bus.timing import BusTiming
from repro.core.adaptive import AdaptiveArbiter
from repro.core.base import Arbiter
from repro.core.fcfs import DistributedFCFS
from repro.core.hybrid import HybridArbiter
from repro.core.round_robin import DistributedRoundRobin
from repro.errors import ConfigurationError
from repro.stats.collector import CompletionCollector
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

__all__ = [
    "PROTOCOLS",
    "make_arbiter",
    "run_simulation",
    "SimulationSettings",
]

#: Registry of protocol factories: name -> callable(num_agents, r) ->
#: Arbiter, where ``r`` is the per-agent outstanding-request capacity the
#: scenario needs.  Only the FCFS arbiter supports r > 1 (§3.2); the
#: other factories reject such scenarios loudly rather than mis-serve
#: them.
PROTOCOLS: Dict[str, Callable[[int, int], Arbiter]] = {
    # the paper's contributions
    "rr": lambda n, r=1: DistributedRoundRobin(n, implementation=1),
    "rr-impl2": lambda n, r=1: DistributedRoundRobin(n, implementation=2),
    "rr-impl3": lambda n, r=1: DistributedRoundRobin(n, implementation=3),
    # the frozen-pointer amendment studied in extension Table E4
    "rr-frozen": lambda n, r=1: DistributedRoundRobin(n, record_priority_winners=False),
    "fcfs": lambda n, r=1: DistributedFCFS(n, strategy=1, max_outstanding=r),
    "fcfs-aincr": lambda n, r=1: DistributedFCFS(n, strategy=2, max_outstanding=r),
    # §5 future-work extensions
    "hybrid": lambda n, r=1: HybridArbiter(n),
    "adaptive": lambda n, r=1: AdaptiveArbiter(n),
    # baselines
    "fixed": lambda n, r=1: FixedPriorityArbiter(n),
    "aap1": lambda n, r=1: BatchingAssuredAccess(n),
    "aap2": lambda n, r=1: FuturebusAssuredAccess(n),
    "central-rr": lambda n, r=1: CentralRoundRobin(n),
    "central-fcfs": lambda n, r=1: CentralFCFS(n),
    "rotating-rr": lambda n, r=1: RotatingPriorityRR(n),
    "ticket-fcfs": lambda n, r=1: TicketFCFS(n),
}


def make_arbiter(protocol: str, num_agents: int, max_outstanding: int = 1) -> Arbiter:
    """Instantiate a registered protocol for ``num_agents`` agents."""
    try:
        factory = PROTOCOLS[protocol]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; choose one of {sorted(PROTOCOLS)}"
        ) from None
    if max_outstanding > 1:
        return factory(num_agents, max_outstanding)
    return factory(num_agents)


@dataclass(frozen=True)
class SimulationSettings:
    """Run-length and instrumentation knobs for one simulation.

    ``timing`` uses a ``default_factory`` so every settings object owns
    its own :class:`~repro.bus.timing.BusTiming` instance — a shared
    class-level default could silently alias timing overrides across
    settings objects if :class:`BusTiming` ever grew mutable state.
    """

    batches: int = 10
    batch_size: int = 2500
    warmup: int = 1000
    keep_samples: bool = False
    keep_order: bool = False
    keep_records: bool = False
    seed: int = 12345
    timing: BusTiming = field(default_factory=BusTiming)
    confidence: float = 0.90
    max_events: Optional[int] = None


def run_simulation(
    scenario: ScenarioSpec,
    protocol: str,
    settings: SimulationSettings = SimulationSettings(),
) -> RunResult:
    """Simulate one (scenario, protocol) pair and return its metrics.

    The random streams depend only on ``settings.seed`` and the agent
    identities, so two protocols run with the same seed see *identical*
    arrival processes — the common-random-numbers discipline behind the
    paper's protocol comparisons.
    """
    needed_capacity = max(spec.max_outstanding for spec in scenario.agents)
    arbiter = make_arbiter(protocol, scenario.num_agents, needed_capacity)
    collector = CompletionCollector(
        batches=settings.batches,
        batch_size=settings.batch_size,
        warmup=settings.warmup,
        keep_samples=settings.keep_samples,
        keep_order=settings.keep_order,
        keep_records=settings.keep_records,
    )
    system = BusSystem(
        scenario=scenario,
        arbiter=arbiter,
        collector=collector,
        timing=settings.timing,
        seed=settings.seed,
    )
    system.run(max_events=settings.max_events)
    return RunResult(
        scenario=scenario,
        protocol=protocol,
        collector=collector,
        utilization=system.utilization(),
        elapsed=system.simulator.now,
        seed=settings.seed,
        confidence=settings.confidence,
    )

"""The single-run entry point of the experiment harness.

:func:`run_simulation` is the one place a scenario, a protocol name and
run-length settings meet; every experiment module and every example goes
through it.  Since the session refactor it is a thin delegate to
:func:`repro.session.single.run_cell` — engine dispatch, the runtime
batch→event fallback and the event-simulation body all live in
:mod:`repro.session` now — kept here so the historical import path (and
the process-pool pickling of sweep payloads) stays stable.

Protocols live in the first-class registry
(:mod:`repro.protocols.registry`): each is a
:class:`~repro.protocols.registry.ProtocolSpec` declaring its factory
and capabilities, so scenario-vs-protocol mismatches (an ``r > 1``
scenario against a single-outstanding arbiter, an unknown name) are
rejected at configuration time with precise errors.  ``PROTOCOLS`` and
:func:`~repro.protocols.registry.make_arbiter` are re-exported here for
backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bus.timing import BusTiming
from repro.bus.watchdog import WatchdogPolicy
from repro.faults.plan import FaultPlan
from repro.observability.events import TelemetrySettings
from repro.protocols.registry import PROTOCOLS, make_arbiter
from repro.session.planner import normalize_engine
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

__all__ = [
    "PROTOCOLS",
    "make_arbiter",
    "run_simulation",
    "SimulationSettings",
]


@dataclass(frozen=True)
class SimulationSettings:
    """Run-length and instrumentation knobs for one simulation.

    ``timing`` uses a ``default_factory`` so every settings object owns
    its own :class:`~repro.bus.timing.BusTiming` instance — a shared
    class-level default could silently alias timing overrides across
    settings objects if :class:`BusTiming` ever grew mutable state.

    ``fault_plan`` injects a deterministic fault schedule
    (:class:`~repro.faults.plan.FaultPlan`) into the run; a non-empty
    plan implies a bus watchdog (``watchdog`` overrides its policy).
    Both are part of the run's identity: the result cache keys on them.

    ``telemetry`` turns on the observability layer for the run
    (:class:`~repro.observability.events.TelemetrySettings`): retained
    :class:`~repro.observability.events.ArbitrationEvent` streams,
    accumulated metrics, or a JSONL trace file.  ``None`` (the
    default) leaves the bus with no sink at all, so every experiment
    output stays byte-identical with telemetry off.

    ``engine`` selects the execution engine: ``"batch"`` (the lockstep
    lane engine of :mod:`repro.engine.batch`, the default) or
    ``"event"`` (the general event-driven simulator).  The batch engine
    produces bit-identical results on its conformance-verified domain —
    which includes bus-level fault plans and watchdog recovery — and is
    a pure performance choice; cells outside that domain (synchronous
    timing, priority classes, open loops, out-of-domain fault kinds,
    protocols without a batch kernel) transparently fall back to the
    event engine, so the default is safe everywhere.
    """

    batches: int = 10
    batch_size: int = 2500
    warmup: int = 1000
    keep_samples: bool = False
    keep_order: bool = False
    keep_records: bool = False
    seed: int = 12345
    timing: BusTiming = field(default_factory=BusTiming)
    confidence: float = 0.90
    max_events: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    watchdog: Optional[WatchdogPolicy] = None
    telemetry: Optional[TelemetrySettings] = None
    engine: str = "batch"

    def __post_init__(self) -> None:
        normalize_engine(self.engine, allow_none=False)


def run_simulation(
    scenario: ScenarioSpec,
    protocol: str,
    settings: Optional[SimulationSettings] = None,
) -> RunResult:
    """Simulate one (scenario, protocol) pair and return its metrics.

    ``settings`` defaults to a fresh :class:`SimulationSettings` built
    per call — a signature-level default instance would be constructed
    once at import time and shared by every defaulted call.

    The random streams depend only on ``settings.seed`` and the agent
    identities, so two protocols run with the same seed see *identical*
    arrival processes — the common-random-numbers discipline behind the
    paper's protocol comparisons.
    """
    from repro.session.single import run_cell

    return run_cell(scenario, protocol, settings)

"""Robustness grid: fault rate × protocol under deterministic injection.

This experiment turns §3.1's structural robustness argument into a
table.  For each protocol a panel sweeps the fault rate; every cell runs
the same saturated workload under a seeded
:class:`~repro.faults.plan.FaultPlan` (kinds limited to what the
protocol's :class:`~repro.protocols.registry.ProtocolSpec` declares
injectable, minus agent dropout so the offered load stays stationary)
with the bus watchdog recovering anomalous arbitrations.  Reported per
cell, against the protocol's own fault-free baseline:

- throughput, anomaly and recovery counts, mean recovery latency;
- service-order deviation (fraction of grant-sequence positions that
  differ from the baseline order);
- fairness deviation (shift of the extreme throughput ratio);
- terminal status: ``ok`` or ``FAIL`` (the watchdog gave up —
  permanent arbitration failure).

The §3.1 claim is the contrast between two rows of this grid: the
static-identity RR variant (``rr-faulty-register``) absorbs dropped
winner broadcasts with at most a bounded service-order wobble, while
rotating-priority RR (``rotating-rr``) reaches a permanent
no-unique-winner failure from a single dropped broadcast.  §3.2's
counter-reset rule shows up as ``fcfs-glitchable`` surviving counter
upsets with small order deviation and no anomalies at all.

Everything is deterministic: plans derive from the experiment seed, so
two invocations at the same scale and seed render byte-identical
tables, serial or parallel.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.bus.watchdog import WatchdogPolicy
from repro.errors import ConfigurationError
from repro.experiments.formatting import ExperimentTable
from repro.experiments.params import DEFAULT_SEED
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import (
    CellSpec, ExperimentSpec, PanelSpec, RowSpec, RunExecutor, build_table, settings_for,
)
from repro.experiments.sweep import SweepExecutor
from repro.session.planner import normalize_engine
from repro.faults.plan import FaultKind, FaultPlan
from repro.observability.events import TelemetrySettings
from repro.protocols.registry import get_spec
from repro.stats.collector import service_order_deviation
from repro.stats.summary import RunResult
from repro.workload.arrivals import bursty_equal_load, two_class_priority_load
from repro.workload.scenarios import equal_load, open_loop_equal_load

__all__ = [
    "ROBUSTNESS_PROTOCOLS",
    "DEFAULT_FAULT_RATES",
    "GRID_WORKLOADS",
    "grid_scenario",
    "fault_plan_for",
    "panel_spec",
    "run",
]

#: Default protocol column set: the §3.1 contrast pair plus the §3.2
#: counter-fault target.
ROBUSTNESS_PROTOCOLS: Tuple[str, ...] = (
    "rr-faulty-register",
    "rotating-rr",
    "fcfs-glitchable",
)

#: Faults per unit of simulated time (the transaction time is the unit).
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.002, 0.01, 0.05)

#: Agents and per-agent offered load of the grid's workload.  The load
#: saturates the bus, so every arbitration is contested — the regime
#: where replica divergence actually collides (§3.1) and where service
#: order is most sensitive to perturbation.
NUM_AGENTS = 10
LOAD = 2.0

#: Total arrival-rate load of the open-loop grid workloads.  Open-loop
#: sources need load < 1 for stability (the arrival clock never stops),
#: so the grid runs them hot but stable rather than saturated.
OPEN_LOAD = 0.9

#: Workload families the grid can sweep.  ``closed`` is the original
#: saturated §4.1 population and stays the default, so pre-existing grid
#: outputs (and their cache keys) are untouched; the rest exercise the
#: open-loop arrival layer: Poisson arrivals, on-off bursty (MMPP)
#: sources, and the §5 two-class priority overlay.
GRID_WORKLOADS: Tuple[str, ...] = ("closed", "poisson", "bursty", "two-class")


def grid_scenario(workload: str = "closed"):
    """The robustness grid's agent population for one workload family."""
    if workload == "closed":
        return equal_load(NUM_AGENTS, LOAD)
    if workload == "poisson":
        return open_loop_equal_load(NUM_AGENTS, OPEN_LOAD, max_outstanding=1)
    if workload == "bursty":
        return bursty_equal_load(NUM_AGENTS, OPEN_LOAD)
    if workload == "two-class":
        return two_class_priority_load(NUM_AGENTS, LOAD, urgent_fraction=0.2)
    raise ConfigurationError(
        f"unknown robustness workload {workload!r}; pick one of {GRID_WORKLOADS}"
    )


def _injectable_kinds(protocol: str) -> Tuple[FaultKind, ...]:
    """The grid's fault menu for one protocol: its declared capabilities
    minus agent dropout (which would change the offered load)."""
    kinds = get_spec(protocol).injectable_faults - {FaultKind.AGENT_DROPOUT}
    return tuple(sorted(kinds, key=lambda kind: kind.value))


def fault_plan_for(
    protocol: str,
    rate: float,
    scale: Scale,
    seed: int,
) -> FaultPlan:
    """The deterministic fault plan for one grid cell.

    Injection starts after the warmup completions (≈ ``warmup`` time
    units on the saturated bus, where throughput ≈ 1 completion per
    transaction time) and spans the measured portion of the run.  The
    plan depends only on its arguments, so the cell — and its cache
    key — is reproducible anywhere.
    """
    spec = get_spec(protocol)
    if not _injectable_kinds(protocol):
        raise ConfigurationError(
            f"protocol {protocol!r} declares no fault kinds the robustness "
            "grid can inject (agent dropout alone is excluded to keep the "
            "offered load stationary)"
        )
    return FaultPlan.generate(
        seed=seed,
        rate=rate,
        horizon=float(scale.total_completions),
        kinds=_injectable_kinds(protocol),
        num_agents=NUM_AGENTS,
        start=float(scale.warmup),
        line_span=spec.number_width(NUM_AGENTS) if spec.number_width else 4,
    )


def _fmt(value: Optional[float], precision: int = 3) -> str:
    return "—" if value is None else f"{value:.{precision}f}"


def panel_spec(
    protocol: str,
    baseline: RunResult,
    rates: Sequence[float] = DEFAULT_FAULT_RATES,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    telemetry: Optional[TelemetrySettings] = None,
    workload: str = "closed",
) -> PanelSpec:
    """One protocol's robustness panel: fault-rate rows vs its baseline.

    With ``telemetry`` set, every fault cell runs under it and each
    row's machine-readable record carries the cell's metrics snapshot
    (``record["metrics"]``) — the rendered table is unchanged either
    way.  ``workload`` picks the grid population (see
    :data:`GRID_WORKLOADS`); the baseline must have run the same one.
    """
    scale = scale or current_scale()
    scenario = grid_scenario(workload)
    baseline_order = list(baseline.collector.completion_order)
    baseline_ratio = baseline.extreme_throughput_ratio().mean

    rows = []
    for rate in rates:
        plan = fault_plan_for(protocol, rate, scale, seed)
        settings = settings_for(
            scale,
            seed,
            keep_order=True,
            fault_plan=plan,
            watchdog=WatchdogPolicy(),
            telemetry=telemetry,
        )
        rows.append(
            RowSpec(
                label=(rate, len(plan)),
                cells=(
                    CellSpec(
                        key="run",
                        scenario=scenario,
                        protocol=protocol,
                        settings=settings,
                        tag=f"robustness/{protocol}/r{rate:g}",
                    ),
                ),
            )
        )

    def build_row(label, results):
        rate, planned = label
        result = results["run"]
        anomalies = sum(result.anomaly_counts().values())
        recoveries = len(result.recovery_latencies())
        order_dev = service_order_deviation(
            baseline_order, list(result.collector.completion_order)
        )
        if result.failed:
            throughput = None
            fairness_delta = None
            status = "FAIL"
        else:
            throughput = result.system_throughput().mean
            fairness_delta = abs(
                result.extreme_throughput_ratio().mean - baseline_ratio
            )
            status = "ok"
        mean_recovery = result.mean_recovery_latency()
        cells = [
            f"{rate:g}",
            str(planned),
            _fmt(throughput),
            str(anomalies),
            str(recoveries),
            _fmt(mean_recovery, 2),
            _fmt(order_dev),
            _fmt(fairness_delta),
            status,
        ]
        record = {
            "protocol": protocol,
            "rate": rate,
            "planned_faults": planned,
            "throughput": throughput,
            "anomalies": anomalies,
            "recoveries": recoveries,
            "mean_recovery_latency": mean_recovery,
            "order_deviation": order_dev,
            "fairness_delta": fairness_delta,
            "failed": result.failed,
            "metrics": (
                result.metrics.as_dict() if result.metrics is not None else None
            ),
        }
        return cells, record

    spec = get_spec(protocol)
    kinds = ", ".join(kind.value for kind in _injectable_kinds(protocol))
    return PanelSpec(
        title=(
            f"Robustness: {protocol} ({spec.paper_section}) under "
            f"deterministic fault injection"
        ),
        headers=(
            "Rate", "Faults", "λ", "Anoms", "Recov",
            "Rec. time", "Order dev", "Fair Δ", "Status",
        ),
        rows=tuple(rows),
        build_row=build_row,
        notes=(
            f"kinds: {kinds}; {NUM_AGENTS} agents, load {LOAD}; "
            f"scale={scale.name}, seed={seed}; watchdog "
            f"{WatchdogPolicy().max_attempts} attempts"
            + ("" if workload == "closed" else f"; workload={workload}")
        ),
    )


def run(
    protocols: Sequence[str] = ROBUSTNESS_PROTOCOLS,
    rates: Sequence[float] = DEFAULT_FAULT_RATES,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[RunExecutor] = None,
    telemetry: Optional[TelemetrySettings] = None,
    engine: str = "batch",
    workload: str = "closed",
) -> Tuple[ExperimentTable, ...]:
    """The full robustness grid: one panel per protocol.

    Each protocol's fault-free baseline runs first (through the same
    executor, so it caches and parallelises like any cell) and anchors
    that panel's order-deviation and fairness columns.  ``telemetry``
    is threaded into every fault cell (see :func:`panel_spec`).
    ``workload`` selects the grid population (see
    :data:`GRID_WORKLOADS`); the open-loop families are outside the
    batch lane domain and demote to the event engine per cell.

    ``engine`` selects the execution engine for the fault-free
    baselines — the grid's replication-heavy, batch-eligible cells.
    The grid's *fault* cells run the fault-specialised protocol
    variants (faulty-register RR, rotating RR, glitchable FCFS), none
    of which has a batch kernel, so they fall back to the event engine
    transparently whatever ``engine`` says — the batch engine's fault
    domain covers bus-level plans on the six core kernels only.
    """
    executor = executor or SweepExecutor()
    scale = scale or current_scale()
    scenario = grid_scenario(workload)
    baseline_settings = settings_for(
        scale, seed, keep_order=True, engine=normalize_engine(engine, allow_none=False)
    )
    tables = []
    for protocol in protocols:
        baseline = executor.simulate(scenario, protocol, baseline_settings)
        tables.append(
            build_table(
                panel_spec(
                    protocol, baseline, rates, scale, seed, telemetry,
                    workload=workload,
                ),
                executor,
            )
        )
    return tuple(tables)


def spec(
    protocols: Sequence[str] = ROBUSTNESS_PROTOCOLS,
    rates: Sequence[float] = DEFAULT_FAULT_RATES,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[RunExecutor] = None,
) -> ExperimentSpec:
    """Declarative form of the grid (baselines run eagerly to anchor rows)."""
    executor = executor or SweepExecutor()
    scale = scale or current_scale()
    scenario = equal_load(NUM_AGENTS, LOAD)
    baseline_settings = settings_for(scale, seed, keep_order=True)
    panels = []
    for protocol in protocols:
        baseline = executor.simulate(scenario, protocol, baseline_settings)
        panels.append(panel_spec(protocol, baseline, rates, scale, seed))
    return ExperimentSpec(name="robustness", panels=tuple(panels))


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

"""Run-length scaling for the experiment harness.

The paper's runs are 10 batches x 8000 samples plus transient; that is
minutes of CPU per table on a pure-Python simulator, so the harness
defaults to a reduced scale that preserves every qualitative shape and
lets the full benchmark suite finish quickly.  Select with the
``REPRO_SCALE`` environment variable:

========  =========  ==========  ======
name      batches    batch size  warmup
========  =========  ==========  ======
smoke     4          300         100
quick     6          1200        400
default   10         2500        1000
paper     10         8000        2000
========  =========  ==========  ======
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["Scale", "SCALES", "current_scale"]

_ENV_VAR = "REPRO_SCALE"


@dataclass(frozen=True)
class Scale:
    """Output-analysis run length."""

    name: str
    batches: int
    batch_size: int
    warmup: int

    @property
    def total_completions(self) -> int:
        """Completions one run must produce."""
        return self.warmup + self.batches * self.batch_size


SCALES: Dict[str, Scale] = {
    "smoke": Scale("smoke", batches=4, batch_size=300, warmup=100),
    "quick": Scale("quick", batches=6, batch_size=1200, warmup=400),
    "default": Scale("default", batches=10, batch_size=2500, warmup=1000),
    "paper": Scale("paper", batches=10, batch_size=8000, warmup=2000),
}


def current_scale(override: Optional[str] = None) -> Scale:
    """The active scale: explicit override, else ``$REPRO_SCALE``, else quick."""
    name = override or os.environ.get(_ENV_VAR, "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; choose one of {sorted(SCALES)}"
        ) from None

"""Table 4.5: worst-case bus allocation for the RR protocol.

The §4.5 contrived scenario: one "slow" agent has a deterministic
inter-request time of n − 0.5 while the other n − 1 agents use n − 3.6,
saturating the bus.  With CV = 0 the slow agent phase-locks into "just
missing" its round-robin turn every cycle and waits a full extra round:
its throughput drops to ~0.50 of a regular agent's, far below its
offered-load ratio.  The slightest inter-request variability
(CV ≥ 0.25) breaks the phase lock and restores the ratio to ≈ the load
ratio.  The FCFS column (our addition, the paper reports RR only here)
shows FCFS does not suffer the pathology.
"""

from __future__ import annotations

from statistics import mean as _mean
from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED, PAPER_CVS, PAPER_SIZES
from repro.experiments.runner import SimulationSettings
from repro.experiments.scale import Scale, current_scale
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.stats.batch_means import BatchMeansEstimate, batch_means
from repro.stats.summary import RunResult
from repro.workload.scenarios import worst_case_rr

__all__ = ["run", "run_panel", "slow_to_other_ratio"]


def slow_to_other_ratio(result: RunResult, slow_agent: int = 1) -> BatchMeansEstimate:
    """t[slow] / t[other]: slow agent vs the average regular agent.

    Averaging the regular agents removes their (RR-fair) statistical
    noise from the denominator.
    """
    others = [
        spec.agent_id for spec in result.scenario.agents if spec.agent_id != slow_agent
    ]
    ratios = []
    for batch in result.collector.completed_batches():
        other_mean = _mean(batch.agent_counts.get(agent, 0) for agent in others)
        slow = batch.agent_counts.get(slow_agent, 0)
        ratios.append(slow / other_mean if other_mean > 0 else float("nan"))
    return batch_means(ratios, result.confidence)


def run_panel(
    num_agents: int,
    cvs: Sequence[float] = PAPER_CVS,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentTable:
    """One panel of Table 4.5 (one system size)."""
    scale = scale or current_scale()
    executor = executor or SweepExecutor()
    table = ExperimentTable(
        title=f"Table 4.5: worst-case bus allocation for RR ({num_agents} agents)",
        headers=["CV", "Load_s/Load_o", "t_s/t_o RR", "t_s/t_o FCFS"],
        notes=(
            f"scale={scale.name}, seed={seed}; slow agent inter-request "
            f"{num_agents - 0.5:g}, others {num_agents - 3.6:g}"
        ),
    )
    settings = SimulationSettings(
        batches=scale.batches,
        batch_size=scale.batch_size,
        warmup=scale.warmup,
        seed=seed,
    )
    scenarios = [worst_case_rr(num_agents, cv=cv) for cv in cvs]
    cells = [
        SweepCell(
            scenario,
            protocol,
            settings,
            tag=f"t4.5/n{num_agents}/cv{cv:g}/{protocol}",
        )
        for scenario, cv in zip(scenarios, cvs)
        for protocol in ("rr", "fcfs")
    ]
    outcomes = iter(executor.run(cells))
    for scenario, cv in zip(scenarios, cvs):
        load_ratio = scenario.agent(1).offered_load() / scenario.agent(2).offered_load()
        rr = next(outcomes)
        fcfs = next(outcomes)
        ratio_rr = slow_to_other_ratio(rr)
        ratio_fcfs = slow_to_other_ratio(fcfs)
        table.add_row(
            [
                f"{cv:.2f}",
                f"{load_ratio:.2f}",
                fmt_estimate(ratio_rr),
                fmt_estimate(ratio_fcfs),
            ],
            {
                "num_agents": num_agents,
                "cv": cv,
                "load_ratio": load_ratio,
                "ratio_rr": ratio_rr,
                "ratio_fcfs": ratio_fcfs,
            },
        )
    return table


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    cvs: Optional[Sequence[float]] = None,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[SweepExecutor] = None,
) -> Tuple[ExperimentTable, ...]:
    """All panels of Table 4.5.

    The paper sweeps all CVs for 10 agents and reports only CV = 0 for
    30 and 64; we sweep all CVs everywhere unless ``cvs`` is given.
    """
    executor = executor or SweepExecutor()
    return tuple(
        run_panel(num_agents, cvs=cvs or PAPER_CVS, scale=scale, seed=seed, executor=executor)
        for num_agents in sizes
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

"""Table 4.5: worst-case bus allocation for the RR protocol.

The §4.5 contrived scenario: one "slow" agent has a deterministic
inter-request time of n − 0.5 while the other n − 1 agents use n − 3.6,
saturating the bus.  With CV = 0 the slow agent phase-locks into "just
missing" its round-robin turn every cycle and waits a full extra round:
its throughput drops to ~0.50 of a regular agent's, far below its
offered-load ratio.  The slightest inter-request variability
(CV ≥ 0.25) breaks the phase lock and restores the ratio to ≈ the load
ratio.  The FCFS column (our addition, the paper reports RR only here)
shows FCFS does not suffer the pathology.
"""

from __future__ import annotations

from statistics import mean as _mean
from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED, PAPER_CVS, PAPER_SIZES
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import (
    RunExecutor, ExperimentSpec, PanelSpec, build_table, build_tables, grid_rows, settings_for,
)
from repro.stats.batch_means import BatchMeansEstimate, batch_means
from repro.stats.summary import RunResult
from repro.workload.scenarios import worst_case_rr

__all__ = ["run", "run_panel", "panel_spec", "spec", "slow_to_other_ratio"]


def slow_to_other_ratio(result: RunResult, slow_agent: int = 1) -> BatchMeansEstimate:
    """t[slow] / t[other]: slow agent vs the average regular agent.

    Averaging the regular agents removes their (RR-fair) statistical
    noise from the denominator.
    """
    others = [
        spec.agent_id for spec in result.scenario.agents if spec.agent_id != slow_agent
    ]
    ratios = []
    for batch in result.collector.completed_batches():
        other_mean = _mean(batch.agent_counts.get(agent, 0) for agent in others)
        slow = batch.agent_counts.get(slow_agent, 0)
        ratios.append(slow / other_mean if other_mean > 0 else float("nan"))
    return batch_means(ratios, result.confidence)


def panel_spec(num_agents: int, cvs: Sequence[float] = PAPER_CVS,
               scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> PanelSpec:
    """One panel of Table 4.5 (one system size), as a declarative grid."""
    scale = scale or current_scale()

    def build_row(cv, results):
        rr, fcfs = results["rr"], results["fcfs"]
        scenario = rr.scenario
        load_ratio = scenario.agent(1).offered_load() / scenario.agent(2).offered_load()
        ratio_rr = slow_to_other_ratio(rr)
        ratio_fcfs = slow_to_other_ratio(fcfs)
        return (
            [
                f"{cv:.2f}",
                f"{load_ratio:.2f}",
                fmt_estimate(ratio_rr),
                fmt_estimate(ratio_fcfs),
            ],
            {
                "num_agents": num_agents,
                "cv": cv,
                "load_ratio": load_ratio,
                "ratio_rr": ratio_rr,
                "ratio_fcfs": ratio_fcfs,
            },
        )

    return PanelSpec(
        title=f"Table 4.5: worst-case bus allocation for RR ({num_agents} agents)",
        headers=("CV", "Load_s/Load_o", "t_s/t_o RR", "t_s/t_o FCFS"),
        rows=grid_rows(
            cvs,
            ("rr", "fcfs"),
            lambda cv: worst_case_rr(num_agents, cv=cv),
            settings_for(scale, seed),
            lambda cv, protocol: f"t4.5/n{num_agents}/cv{cv:g}/{protocol}",
        ),
        build_row=build_row,
        notes=(
            f"scale={scale.name}, seed={seed}; slow agent inter-request "
            f"{num_agents - 0.5:g}, others {num_agents - 3.6:g}"
        ),
    )


def spec(sizes: Sequence[int] = PAPER_SIZES, cvs: Optional[Sequence[float]] = None,
         scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> ExperimentSpec:
    """All panels of Table 4.5.

    The paper sweeps all CVs for 10 agents and reports only CV = 0 for
    30 and 64; we sweep all CVs everywhere unless ``cvs`` is given.
    """
    return ExperimentSpec(
        name="table-4.5",
        panels=tuple(panel_spec(n, cvs or PAPER_CVS, scale, seed) for n in sizes),
    )


def run_panel(num_agents: int, cvs: Sequence[float] = PAPER_CVS,
              scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
              executor: Optional[RunExecutor] = None) -> ExperimentTable:
    """One panel of Table 4.5 (one system size)."""
    return build_table(panel_spec(num_agents, cvs, scale, seed), executor)


def run(sizes: Sequence[int] = PAPER_SIZES, cvs: Optional[Sequence[float]] = None,
        scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
        executor: Optional[RunExecutor] = None) -> Tuple[ExperimentTable, ...]:
    """All panels of Table 4.5."""
    return build_tables(spec(sizes, cvs, scale, seed), executor)


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

"""Experiment harness: one module per table/figure of the paper's §4.

Every experiment module declares its grid as an
:class:`~repro.experiments.spec.ExperimentSpec` (``spec()`` /
``panel_spec()``) and exposes a ``run(...)`` function that compiles it
via :func:`~repro.experiments.spec.build_tables`, returning
:class:`~repro.experiments.formatting.ExperimentTable` objects whose
``render()`` prints the same rows the paper reports.  Fidelity is
controlled by :mod:`~repro.experiments.scale` (set ``REPRO_SCALE=paper``
for the full 10 x 8000-sample runs of §4.1).
"""

from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.formatting import ExperimentTable, ascii_plot, fmt_estimate
from repro.experiments.runner import (
    PROTOCOLS,
    SimulationSettings,
    make_arbiter,
    run_simulation,
)
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import (
    CellSpec,
    ExperimentSpec,
    PanelSpec,
    RowSpec,
    build_table,
    build_tables,
    grid_rows,
    run_cells,
    settings_for,
)
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.observability import TelemetrySettings, merge_metrics

__all__ = [
    "PROTOCOLS",
    "make_arbiter",
    "run_simulation",
    "SimulationSettings",
    "TelemetrySettings",
    "merge_metrics",
    "Scale",
    "current_scale",
    "ExperimentTable",
    "ascii_plot",
    "fmt_estimate",
    "ResultCache",
    "cache_key",
    "SweepCell",
    "SweepExecutor",
    "CellSpec",
    "RowSpec",
    "PanelSpec",
    "ExperimentSpec",
    "settings_for",
    "grid_rows",
    "run_cells",
    "build_table",
    "build_tables",
]

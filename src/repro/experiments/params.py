"""Shared workload parameters of the paper's evaluation (§4.1).

The paper sweeps total offered load over 0.25–7.5 (values above ~1.5–2.0
saturate the bus and probe asymptotic behaviour) for systems of 10, 30
and 64 agents.  The 10-agent tables print 7.52 where we print 7.5: the
authors evidently rounded the mean inter-request time (0.33 at a
per-agent load of 0.75) and report the resulting realised load; we
configure the requested load exactly.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["PAPER_LOADS", "PAPER_SIZES", "PAPER_CVS", "DEFAULT_SEED"]

#: Total offered loads of Tables 4.1–4.3.
PAPER_LOADS: Tuple[float, ...] = (0.25, 0.50, 1.00, 1.50, 2.00, 2.50, 5.00, 7.50)

#: System sizes of Tables 4.1–4.3 and 4.5.
PAPER_SIZES: Tuple[int, ...] = (10, 30, 64)

#: Inter-request time CVs swept in Table 4.5.
PAPER_CVS: Tuple[float, ...] = (0.0, 0.25, 0.33, 0.50, 1.00)

#: Master seed used by the experiment harness unless overridden.
DEFAULT_SEED = 19880530  # ISCA'88, Honolulu

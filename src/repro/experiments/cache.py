"""Content-addressed on-disk cache for simulation results.

A simulation is a pure function of ``(scenario, protocol, settings)``
(see ``docs/architecture.md`` — every random stream derives from
``settings.seed``), so its :class:`~repro.stats.summary.RunResult` can be
cached on disk and replayed on any later invocation with the same
inputs.  Regenerating a table, or re-running a benchmark ablation after
an unrelated code change, then costs one pickle load per cell instead of
one simulation.

Keys are SHA-256 digests of a canonical description of the cell:

- the scenario: every agent's identity, workload distribution
  (:meth:`~repro.workload.distributions.Distribution.spec_key`), loop
  mode and priority mix;
- the protocol name;
- every :class:`~repro.experiments.runner.SimulationSettings` field
  that can influence the result, including the nested bus timing but
  *not* the engine selector (the engines are bit-identical wherever
  both apply, so a cell keys the same however it was executed);
- a cache-format epoch (:data:`CACHE_EPOCH`) plus the package version,
  so results produced by older engine revisions are never replayed
  against newer code.

The description deliberately excludes cosmetic fields (scenario
``notes``) and anything derivable from the above.  One caveat: a cell
whose telemetry asks for a JSONL trace file caches on the *path*, and a
cache hit replays the stored result without re-writing the file — the
trace is a side effect, not part of the result object.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Optional, Union

import repro
from repro.errors import ConfigurationError
from repro.experiments.runner import SimulationSettings
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

__all__ = ["CACHE_EPOCH", "cache_key", "ResultCache", "default_cache_dir"]

#: Bump when a change anywhere in the engine, protocols, workload or
#: statistics layers alters simulation output for identical inputs.
#: Stale entries are then simply never looked up again.
#: Epoch 2: protocol registry refactor (uniform factory convention).
#: Epoch 3: fault injection + watchdog (new settings fields in the key).
#: Epoch 4: observability layer (telemetry block in the key; RunResult
#: grew events/metrics payloads).
#: Epoch 5: lockstep batch engine (the engine selector joins the key —
#: engines are contractually identical, but a cached payload must name
#: the execution path that produced it so differential checks can
#: exercise both).
#: Epoch 6: heterogeneous lane engine (the engine selector *leaves* the
#: key: the engines are conformance-verified bit-identical on the whole
#: batch domain — faults included — so one payload serves both, and a
#: grid hits the cache regardless of which engine, or which lane
#: packing, produced it; lane packing cannot influence a result, so it
#: never enters the key).
CACHE_EPOCH = 6

_ENV_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-arb``."""
    override = os.environ.get(_ENV_DIR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-arb"


def _describe_scenario(scenario: ScenarioSpec) -> list:
    return [
        [
            spec.agent_id,
            list(spec.interrequest.spec_key()),
            spec.priority_fraction,
            spec.open_loop,
            spec.max_outstanding,
        ]
        for spec in scenario.agents
    ]


def _describe_settings(settings: SimulationSettings) -> list:
    timing = settings.timing
    return [
        settings.batches,
        settings.batch_size,
        settings.warmup,
        settings.keep_samples,
        settings.keep_order,
        settings.keep_records,
        settings.seed,
        [timing.transaction_time, timing.arbitration_time, timing.clock_period],
        settings.confidence,
        settings.max_events,
        settings.fault_plan.spec_key() if settings.fault_plan is not None else None,
        settings.watchdog.spec_key() if settings.watchdog is not None else None,
        settings.telemetry.spec_key() if settings.telemetry is not None else None,
        # settings.engine is deliberately absent: the engines are
        # bit-identical on the batch domain and fall back identically
        # outside it, so the selector is not part of a cell's identity.
    ]


def cache_key(
    scenario: ScenarioSpec,
    protocol: str,
    settings: SimulationSettings,
) -> str:
    """Stable hex digest identifying one simulation cell."""
    payload = {
        "epoch": CACHE_EPOCH,
        "version": repro.__version__,
        "protocol": protocol,
        "scenario": _describe_scenario(scenario),
        "settings": _describe_settings(settings),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of pickled :class:`RunResult`s, one file per cell key.

    Parameters
    ----------
    directory:
        Where entries live; created on first store.  Defaults to
        :func:`default_cache_dir`.

    Writes are atomic (temp file + rename) so a crashed run can never
    leave a half-written entry for a later run to load.  Unreadable
    (corrupt, truncated or version-incompatible) entries are treated as
    misses: the offending file is *quarantined* — renamed aside with a
    ``.corrupt`` suffix so it can be inspected rather than silently lost
    — and a warning names it.
    """

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        if self.directory.exists() and not self.directory.is_dir():
            raise ConfigurationError(
                f"cache path {self.directory} exists and is not a directory"
            )
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or ``None`` on a miss.

        The read path never propagates an entry's failure to the
        caller: an ``OSError`` mid-read (EIO, a permissions change, a
        truncated file on a full disk), an unpicklable or truncated
        payload, and even a *successfully* unpickled payload of the
        wrong type (a foreign file dropped into the cache directory)
        are all quarantined as misses, so one bad entry can never fail
        the whole gather that touched it.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception as exc:
            # OSError while opening/reading, truncated pickles
            # (EOFError), cross-version payloads (UnpicklingError,
            # AttributeError, ImportError): everything the entry alone
            # can cause quarantines as a miss and the cell re-runs.
            self._quarantine(path, exc)
            self.misses += 1
            return None
        if not isinstance(result, RunResult):
            self._quarantine(
                path,
                TypeError(
                    f"cached payload is {type(result).__name__}, not RunResult"
                ),
            )
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path, exc: Exception) -> None:
        """Move a corrupt entry aside and warn, instead of raising.

        The quarantined file keeps its content under ``<key>.corrupt``
        so a damaged cache can be diagnosed (truncation from a full
        disk, a partial copy, a cross-version pickle); the lookup is a
        plain miss and the cell re-runs.
        """
        quarantine = path.with_suffix(".corrupt")
        try:
            os.replace(path, quarantine)
            moved = True
        except OSError:
            # Renaming failed (e.g. the file vanished); nothing to keep.
            moved = False
        self.quarantined += 1
        location = f"; entry moved to {quarantine}" if moved else ""
        warnings.warn(
            f"corrupt cache entry {path.name} treated as a miss "
            f"({type(exc).__name__}: {exc}){location}",
            RuntimeWarning,
            stacklevel=3,
        )

    def put(self, key: str, result: RunResult) -> None:
        """Store ``result`` under ``key`` atomically."""
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            prefix=f".{key[:16]}-", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for __ in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({str(self.directory)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )

"""Table 4.2: standard deviation of the waiting time, FCFS vs RR.

FCFS is the minimum-waiting-time-variance discipline [ShAh81]; both
protocols share the same *mean* waiting time (the conservation law for
work-conserving non-preemptive disciplines, the paper's footnote 4), but
σ_W for RR grows well past σ_W for FCFS under load — up to ~1.6x for 10
agents, ~2.9x for 30, ~4.5x for 64 in the paper.  W is the paper's
waiting time: request issue to transaction completion.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED, PAPER_LOADS, PAPER_SIZES
from repro.experiments.runner import SimulationSettings
from repro.experiments.scale import Scale, current_scale
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.workload.scenarios import equal_load

__all__ = ["run", "run_panel"]


def run_panel(
    num_agents: int,
    loads: Sequence[float] = PAPER_LOADS,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentTable:
    """One panel of Table 4.2 (one system size)."""
    scale = scale or current_scale()
    executor = executor or SweepExecutor()
    table = ExperimentTable(
        title=f"Table 4.2: waiting-time standard deviation ({num_agents} agents)",
        headers=["Load", "λ", "W", "σ_W FCFS", "σ_W RR", "σ_RR/σ_FCFS"],
        notes=f"scale={scale.name}, seed={seed}; W = issue → transaction completion",
    )
    settings = SimulationSettings(
        batches=scale.batches,
        batch_size=scale.batch_size,
        warmup=scale.warmup,
        seed=seed,
    )
    cells = [
        SweepCell(
            equal_load(num_agents, load),
            protocol,
            settings,
            tag=f"t4.2/n{num_agents}/L{load:g}/{protocol}",
        )
        for load in loads
        for protocol in ("rr", "fcfs")
    ]
    outcomes = iter(executor.run(cells))
    for load in loads:
        rr = next(outcomes)
        fcfs = next(outcomes)
        throughput = rr.system_throughput()
        mean_w = rr.mean_waiting()
        mean_w_fcfs = fcfs.mean_waiting()
        std_rr = rr.std_waiting()
        std_fcfs = fcfs.std_waiting()
        ratio = std_rr.mean / std_fcfs.mean if std_fcfs.mean > 0 else float("nan")
        table.add_row(
            [
                f"{load:.2f}",
                f"{throughput.mean:.2f}",
                f"{(mean_w.mean + mean_w_fcfs.mean) / 2:.2f}",
                fmt_estimate(std_fcfs),
                fmt_estimate(std_rr),
                f"{ratio:.2f}",
            ],
            {
                "num_agents": num_agents,
                "load": load,
                "throughput": throughput,
                "mean_w_rr": mean_w,
                "mean_w_fcfs": mean_w_fcfs,
                "std_rr": std_rr,
                "std_fcfs": std_fcfs,
                "std_ratio": ratio,
            },
        )
    return table


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    loads: Sequence[float] = PAPER_LOADS,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[SweepExecutor] = None,
) -> Tuple[ExperimentTable, ...]:
    """All panels of Table 4.2."""
    executor = executor or SweepExecutor()
    return tuple(
        run_panel(num_agents, loads=loads, scale=scale, seed=seed, executor=executor)
        for num_agents in sizes
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

"""Table 4.2: standard deviation of the waiting time, FCFS vs RR.

FCFS is the minimum-waiting-time-variance discipline [ShAh81]; both
protocols share the same *mean* waiting time (the conservation law for
work-conserving non-preemptive disciplines, the paper's footnote 4), but
σ_W for RR grows well past σ_W for FCFS under load — up to ~1.6x for 10
agents, ~2.9x for 30, ~4.5x for 64 in the paper.  W is the paper's
waiting time: request issue to transaction completion.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED, PAPER_LOADS, PAPER_SIZES
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import (
    RunExecutor, ExperimentSpec, PanelSpec, build_table, build_tables, grid_rows, settings_for,
)
from repro.workload.scenarios import equal_load

__all__ = ["run", "run_panel", "panel_spec", "spec"]


def panel_spec(num_agents: int, loads: Sequence[float] = PAPER_LOADS,
               scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> PanelSpec:
    """One panel of Table 4.2 (one system size), as a declarative grid."""
    scale = scale or current_scale()

    def build_row(load, results):
        rr, fcfs = results["rr"], results["fcfs"]
        throughput = rr.system_throughput()
        mean_w = rr.mean_waiting()
        mean_w_fcfs = fcfs.mean_waiting()
        std_rr = rr.std_waiting()
        std_fcfs = fcfs.std_waiting()
        ratio = std_rr.mean / std_fcfs.mean if std_fcfs.mean > 0 else float("nan")
        return (
            [
                f"{load:.2f}",
                f"{throughput.mean:.2f}",
                f"{(mean_w.mean + mean_w_fcfs.mean) / 2:.2f}",
                fmt_estimate(std_fcfs),
                fmt_estimate(std_rr),
                f"{ratio:.2f}",
            ],
            {
                "num_agents": num_agents,
                "load": load,
                "throughput": throughput,
                "mean_w_rr": mean_w,
                "mean_w_fcfs": mean_w_fcfs,
                "std_rr": std_rr,
                "std_fcfs": std_fcfs,
                "std_ratio": ratio,
            },
        )

    return PanelSpec(
        title=f"Table 4.2: waiting-time standard deviation ({num_agents} agents)",
        headers=("Load", "λ", "W", "σ_W FCFS", "σ_W RR", "σ_RR/σ_FCFS"),
        rows=grid_rows(
            loads,
            ("rr", "fcfs"),
            lambda load: equal_load(num_agents, load),
            settings_for(scale, seed),
            lambda load, protocol: f"t4.2/n{num_agents}/L{load:g}/{protocol}",
        ),
        build_row=build_row,
        notes=f"scale={scale.name}, seed={seed}; W = issue → transaction completion",
    )


def spec(sizes: Sequence[int] = PAPER_SIZES, loads: Sequence[float] = PAPER_LOADS,
         scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> ExperimentSpec:
    """All panels of Table 4.2."""
    return ExperimentSpec(
        name="table-4.2",
        panels=tuple(panel_spec(n, loads, scale, seed) for n in sizes),
    )


def run_panel(num_agents: int, loads: Sequence[float] = PAPER_LOADS,
              scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
              executor: Optional[RunExecutor] = None) -> ExperimentTable:
    """One panel of Table 4.2 (one system size)."""
    return build_table(panel_spec(num_agents, loads, scale, seed), executor)


def run(sizes: Sequence[int] = PAPER_SIZES, loads: Sequence[float] = PAPER_LOADS,
        scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
        executor: Optional[RunExecutor] = None) -> Tuple[ExperimentTable, ...]:
    """All panels of Table 4.2."""
    return build_tables(spec(sizes, loads, scale, seed), executor)


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

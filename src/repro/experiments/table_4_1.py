"""Table 4.1: allocation of bus bandwidth among agents with equal rates.

For each system size and offered load, the table reports the ratio of
the highest-identity agent's throughput to the lowest-identity agent's,
for the RR protocol (should be statistically 1.0 — it is perfectly fair)
and the simple (strategy 1) FCFS implementation (up to ~6–9% unfair near
saturation, where requests pile up between arbitrations and fall back to
static-priority order).  For the 30-agent system the paper adds the
first assured-access protocol, whose ratio approaches 2.0 — the
unfairness the new protocols eliminate.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED, PAPER_LOADS, PAPER_SIZES
from repro.experiments.runner import SimulationSettings
from repro.experiments.scale import Scale, current_scale
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.workload.scenarios import equal_load

__all__ = ["run", "run_panel"]


def run_panel(
    num_agents: int,
    loads: Sequence[float] = PAPER_LOADS,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    include_aap: bool = False,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentTable:
    """One panel of Table 4.1 (one system size).

    All (load, protocol) cells are independent simulations; they are
    submitted to the ``executor`` as one sweep, so a parallel executor
    runs the whole panel concurrently and a cache-backed one replays
    previously computed cells.
    """
    scale = scale or current_scale()
    executor = executor or SweepExecutor()
    headers = ["Load", "λ", "t_N/t_1 RR", "t_N/t_1 FCFS"]
    if include_aap:
        headers.append("t_N/t_1 AAP")
    table = ExperimentTable(
        title=f"Table 4.1: bandwidth allocation, equal request rates ({num_agents} agents)",
        headers=headers,
        notes=f"scale={scale.name} ({scale.batches}x{scale.batch_size} samples), seed={seed}",
    )
    settings = SimulationSettings(
        batches=scale.batches,
        batch_size=scale.batch_size,
        warmup=scale.warmup,
        seed=seed,
    )
    protocols = ["rr", "fcfs"] + (["aap1"] if include_aap else [])
    cells = [
        SweepCell(
            equal_load(num_agents, load),
            protocol,
            settings,
            tag=f"t4.1/n{num_agents}/L{load:g}/{protocol}",
        )
        for load in loads
        for protocol in protocols
    ]
    outcomes = iter(executor.run(cells))
    for load in loads:
        results = {protocol: next(outcomes) for protocol in protocols}
        throughput = results["rr"].system_throughput()
        ratios = {
            protocol: result.extreme_throughput_ratio()
            for protocol, result in results.items()
        }
        cells = [
            f"{load:.2f}",
            f"{throughput.mean:.2f}",
            fmt_estimate(ratios["rr"]),
            fmt_estimate(ratios["fcfs"]),
        ]
        record = {
            "num_agents": num_agents,
            "load": load,
            "throughput": throughput,
            "ratio_rr": ratios["rr"],
            "ratio_fcfs": ratios["fcfs"],
        }
        if include_aap:
            cells.append(fmt_estimate(ratios["aap1"]))
            record["ratio_aap1"] = ratios["aap1"]
        table.add_row(cells, record)
    return table


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    loads: Sequence[float] = PAPER_LOADS,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[SweepExecutor] = None,
) -> Tuple[ExperimentTable, ...]:
    """All panels of Table 4.1 (the AAP column appears for 30 agents)."""
    executor = executor or SweepExecutor()
    return tuple(
        run_panel(
            num_agents,
            loads=loads,
            scale=scale,
            seed=seed,
            include_aap=(num_agents == 30),
            executor=executor,
        )
        for num_agents in sizes
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

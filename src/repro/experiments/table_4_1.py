"""Table 4.1: allocation of bus bandwidth among agents with equal rates.

For each system size and offered load, the table reports the ratio of
the highest-identity agent's throughput to the lowest-identity agent's,
for the RR protocol (should be statistically 1.0 — it is perfectly fair)
and the simple (strategy 1) FCFS implementation (up to ~6–9% unfair near
saturation, where requests pile up between arbitrations and fall back to
static-priority order).  For the 30-agent system the paper adds the
first assured-access protocol, whose ratio approaches 2.0 — the
unfairness the new protocols eliminate.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED, PAPER_LOADS, PAPER_SIZES
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import (
    RunExecutor, ExperimentSpec, PanelSpec, build_table, build_tables, grid_rows, settings_for,
)
from repro.workload.scenarios import equal_load

__all__ = ["run", "run_panel", "panel_spec", "spec"]


def panel_spec(num_agents: int, loads: Sequence[float] = PAPER_LOADS,
               scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
               include_aap: bool = False) -> PanelSpec:
    """One panel of Table 4.1 (one system size), as a declarative grid."""
    scale = scale or current_scale()
    protocols = ["rr", "fcfs"] + (["aap1"] if include_aap else [])
    headers = ["Load", "λ", "t_N/t_1 RR", "t_N/t_1 FCFS"]
    if include_aap:
        headers.append("t_N/t_1 AAP")

    def build_row(load, results):
        throughput = results["rr"].system_throughput()
        ratios = {
            protocol: result.extreme_throughput_ratio()
            for protocol, result in results.items()
        }
        cells = [
            f"{load:.2f}",
            f"{throughput.mean:.2f}",
            fmt_estimate(ratios["rr"]),
            fmt_estimate(ratios["fcfs"]),
        ]
        record = {
            "num_agents": num_agents,
            "load": load,
            "throughput": throughput,
            "ratio_rr": ratios["rr"],
            "ratio_fcfs": ratios["fcfs"],
        }
        if include_aap:
            cells.append(fmt_estimate(ratios["aap1"]))
            record["ratio_aap1"] = ratios["aap1"]
        return cells, record

    return PanelSpec(
        title=f"Table 4.1: bandwidth allocation, equal request rates ({num_agents} agents)",
        headers=tuple(headers),
        rows=grid_rows(
            loads,
            protocols,
            lambda load: equal_load(num_agents, load),
            settings_for(scale, seed),
            lambda load, protocol: f"t4.1/n{num_agents}/L{load:g}/{protocol}",
        ),
        build_row=build_row,
        notes=f"scale={scale.name} ({scale.batches}x{scale.batch_size} samples), seed={seed}",
    )


def spec(sizes: Sequence[int] = PAPER_SIZES, loads: Sequence[float] = PAPER_LOADS,
         scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> ExperimentSpec:
    """All panels of Table 4.1 (the AAP column appears for 30 agents)."""
    return ExperimentSpec(
        name="table-4.1",
        panels=tuple(
            panel_spec(n, loads, scale, seed, include_aap=(n == 30)) for n in sizes
        ),
    )


def run_panel(num_agents: int, loads: Sequence[float] = PAPER_LOADS,
              scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
              include_aap: bool = False,
              executor: Optional[RunExecutor] = None) -> ExperimentTable:
    """One panel of Table 4.1 (one system size)."""
    return build_table(panel_spec(num_agents, loads, scale, seed, include_aap), executor)


def run(sizes: Sequence[int] = PAPER_SIZES, loads: Sequence[float] = PAPER_LOADS,
        scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
        executor: Optional[RunExecutor] = None) -> Tuple[ExperimentTable, ...]:
    """All panels of Table 4.1."""
    return build_tables(spec(sizes, loads, scale, seed), executor)


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

"""Parallel sweep execution over independent simulation cells.

The paper's evaluation is a grid: every table cell is one independent
``(scenario, protocol, settings)`` simulation, and nothing couples the
cells — each derives all of its randomness from its own settings seed.
This module fans such grids out over a :class:`concurrent.futures.
ProcessPoolExecutor`, with a serial fallback, and consults the
content-addressed :class:`~repro.experiments.cache.ResultCache` before
executing anything.

Determinism guarantees (the common-random-numbers discipline the paper's
protocol comparisons depend on):

- every cell's random streams derive from ``settings.seed`` and the
  agent identities only, so execution order and worker placement cannot
  perturb results: serial and parallel sweeps return bit-identical
  :class:`~repro.stats.summary.RunResult` metrics;
- each cell executes against a private copy of its scenario (the process
  boundary provides one for workers; the serial path deep-copies), so
  stateful workload distributions — trace replay — start every cell from
  the same position regardless of how many cells share a spec;
- results are returned in cell order, whatever order workers finish in.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

__all__ = ["SweepCell", "SweepExecutor", "default_jobs"]

_ENV_JOBS = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` (0 = all cores), else 1 (serial)."""
    raw = os.environ.get(_ENV_JOBS)
    if raw is None:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigurationError(f"${_ENV_JOBS} must be an integer, got {raw!r}")
    return resolve_jobs(jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a jobs request: None -> default, 0 -> cpu count."""
    if jobs is None:
        return default_jobs()
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation in a sweep grid."""

    scenario: ScenarioSpec
    protocol: str
    settings: SimulationSettings
    #: Caller's label for the cell (e.g. ``"load=1.50/rr"``); carried
    #: through untouched for diagnostics.
    tag: Optional[str] = None


def _execute_payload(payload: Tuple[ScenarioSpec, str, SimulationSettings]) -> RunResult:
    """Worker entry point: must be module-level so it pickles."""
    scenario, protocol, settings = payload
    return run_simulation(scenario, protocol, settings)


@dataclass
class SweepStats:
    """Execution accounting for one executor, across all its sweeps."""

    executed: int = 0
    cache_hits: int = 0
    parallel_batches: int = 0
    serial_batches: int = 0

    def snapshot(self) -> "SweepStats":
        return SweepStats(
            self.executed, self.cache_hits, self.parallel_batches, self.serial_batches
        )


class SweepExecutor:
    """Runs sweep cells, caching results and fanning out over processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default via ``$REPRO_JOBS``) runs
        serially in-process; ``0`` means one per CPU core.  The executor
        silently falls back to serial execution where process pools are
        unavailable (restricted environments, missing ``fork``/spawn
        support), so callers never need two code paths.
    cache:
        Optional :class:`ResultCache`.  When set, every cell is looked
        up before execution and every executed cell is stored after.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.stats = SweepStats()

    # -- public API -----------------------------------------------------------

    def run(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        """Execute (or replay) every cell; results in cell order."""
        results: List[Optional[RunResult]] = [None] * len(cells)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(cells)
        for index, cell in enumerate(cells):
            if self.cache is not None:
                key = cache_key(cell.scenario, cell.protocol, cell.settings)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    results[index] = cached
                    continue
            pending.append(index)

        if pending:
            fresh = self._execute([cells[i] for i in pending])
            for index, result in zip(pending, fresh):
                results[index] = result
                if self.cache is not None:
                    key = keys[index]
                    assert key is not None
                    self.cache.put(key, result)
            self.stats.executed += len(pending)
        return [result for result in results if result is not None]

    def simulate(
        self,
        scenario: ScenarioSpec,
        protocol: str,
        settings: SimulationSettings,
    ) -> RunResult:
        """Single-cell convenience wrapper around :meth:`run`."""
        return self.run([SweepCell(scenario, protocol, settings)])[0]

    # -- execution backends ---------------------------------------------------

    def _execute(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        if self.jobs > 1 and len(cells) > 1:
            try:
                return self._execute_parallel(cells)
            except (OSError, ImportError, PermissionError, BrokenExecutor):
                # No usable process pool here (sandbox, exotic platform):
                # the serial path produces identical results, just slower.
                pass
        return self._execute_serial(cells)

    def _execute_serial(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        self.stats.serial_batches += 1
        results = []
        for cell in cells:
            # Private scenario copy: mirrors the process-boundary pickling
            # of the parallel path, so stateful distributions (trace
            # replay) start every cell from the same position either way.
            scenario = copy.deepcopy(cell.scenario)
            results.append(run_simulation(scenario, cell.protocol, cell.settings))
        return results

    def _execute_parallel(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        payloads = [(cell.scenario, cell.protocol, cell.settings) for cell in cells]
        workers = min(self.jobs, len(cells))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_execute_payload, payloads))
        self.stats.parallel_batches += 1
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cache = "on" if self.cache is not None else "off"
        return (
            f"SweepExecutor(jobs={self.jobs}, cache={cache}, "
            f"executed={self.stats.executed}, hits={self.stats.cache_hits})"
        )

"""Parallel sweep execution over independent simulation cells.

The paper's evaluation is a grid: every table cell is one independent
``(scenario, protocol, settings)`` simulation, and nothing couples the
cells — each derives all of its randomness from its own settings seed.
Since the session refactor, *what* to run is decided by the session
layer — :func:`repro.session.planner.plan_runs` resolves engine choice,
lane packing and cache lookup; :func:`repro.session.execute.execute_plan`
drives the plan — and this module supplies the execution backends: the
lane super-batch hook (:func:`repro.engine.batch.run_lanes` advances
every batch-capable cell of a grid together, however heterogeneous) and
the per-cell fan-out over a
:class:`concurrent.futures.ProcessPoolExecutor` with a serial fallback
and one in-process retry.

Determinism guarantees (the common-random-numbers discipline the paper's
protocol comparisons depend on):

- every cell's random streams derive from ``settings.seed`` and the
  agent identities only, so execution order and worker placement cannot
  perturb results: serial and parallel sweeps return bit-identical
  :class:`~repro.stats.summary.RunResult` metrics;
- each cell executes against a private copy of its scenario (the process
  boundary provides one for workers; the serial path deep-copies), so
  stateful workload distributions — trace replay — start every cell from
  the same position regardless of how many cells share a spec;
- results are returned in cell order, whatever order workers finish in.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import BrokenExecutor, CancelledError, Future, ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine.batch import run_lanes
from repro.errors import ConfigurationError, SweepExecutionError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.observability.metrics import MetricsRegistry, merge_metrics
from repro.service.backoff import BackoffPolicy
from repro.session.control import RunControl
from repro.session.execute import execute_plan
from repro.session.outcome import CellFailure, RunOutcome, SessionStats
from repro.session.planner import normalize_engine, plan_runs
from repro.session.request import RunRequest
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

__all__ = ["SweepCell", "CellFailure", "SweepExecutor", "default_jobs", "RETRY_BACKOFF"]

#: Default retry pacing: a deterministic, seeded, capped exponential
#: with jitter (see :mod:`repro.service.backoff`) shared with the
#: service's crash-respawn policy.  The first (and, for sweeps, only)
#: retry waits ~25-50ms — long enough for a torn process pool or an
#: OOM-killed worker's memory to clear, short enough to be invisible in
#: grid wall-clock.
RETRY_BACKOFF = BackoffPolicy(base=0.05, cap=1.0, multiplier=2.0, jitter=0.5, seed=0)

#: Historical name for the shared orchestration accounting
#: (:class:`repro.session.outcome.SessionStats`).
SweepStats = SessionStats

_ENV_JOBS = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` (0 = all cores), else 1 (serial)."""
    raw = os.environ.get(_ENV_JOBS)
    if raw is None:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigurationError(f"${_ENV_JOBS} must be an integer, got {raw!r}")
    return resolve_jobs(jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a jobs request: None -> default, 0 -> cpu count."""
    if jobs is None:
        return default_jobs()
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation in a sweep grid."""

    scenario: ScenarioSpec
    protocol: str
    settings: SimulationSettings
    #: Caller's label for the cell (e.g. ``"load=1.50/rr"``); carried
    #: through untouched for diagnostics.
    tag: Optional[str] = None


def _execute_payload(payload: Tuple[ScenarioSpec, str, SimulationSettings]) -> RunResult:
    """Worker entry point: must be module-level so it pickles."""
    scenario, protocol, settings = payload
    return run_simulation(scenario, protocol, settings)


def _call_run_lanes(cells):
    """Lane backend handed to the session layer.

    A function (not a bare reference) so ``run_lanes`` resolves through
    this module's globals at call time — the differential and fault
    suites monkeypatch ``sweep.run_lanes`` to probe the fallback path.
    """
    return run_lanes(cells)


class SweepExecutor:
    """Runs sweep cells, caching results and fanning out over processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default via ``$REPRO_JOBS``) runs
        serially in-process; ``0`` means one per CPU core.  The executor
        silently falls back to serial execution where process pools are
        unavailable (restricted environments, missing ``fork``/spawn
        support), so callers never need two code paths.
    cache:
        Optional :class:`ResultCache`.  When set, every cell is looked
        up before execution and every executed cell is stored after.
    engine:
        Optional engine override applied to every cell's settings (the
        CLI's ``--engine`` reaches experiment grids that build their
        settings internally this way).  ``None`` leaves each cell's own
        declaration alone.  The override never changes cache keys — the
        engine selector is not part of a cell's identity (epoch 6) —
        and cells outside the batch domain still fall back to the event
        engine per cell.
    backoff:
        Retry pacing for failed cells: the deterministic jittered
        exponential of :data:`RETRY_BACKOFF` by default.  Tests (and
        callers that must never sleep) pass
        :meth:`BackoffPolicy.none() <repro.service.backoff.
        BackoffPolicy.none>`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        engine: Optional[str] = None,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.engine = normalize_engine(engine)
        self.backoff = backoff if backoff is not None else RETRY_BACKOFF
        self.stats = SweepStats()

    # -- public API -----------------------------------------------------------

    def run(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        """Execute (or replay) every cell; results in cell order."""
        outcomes = self.run_requests(
            [
                RunRequest(cell.scenario, cell.protocol, cell.settings, tag=cell.tag)
                for cell in cells
            ]
        )
        return [outcome.result for outcome in outcomes]

    def run_requests(
        self,
        requests: Sequence[RunRequest],
        control: Optional[RunControl] = None,
    ) -> List[RunOutcome]:
        """Plan and execute a request batch; outcomes in request order.

        The session layer decides everything (engine override, lane
        packing, cache lookup — see :func:`repro.session.planner.
        plan_runs`); this executor contributes its backends: the lane
        super-batch hook and the per-cell process-pool/serial path with
        retries.  ``control`` adds cooperative cancellation/deadline
        checks at the session layer's stage boundaries.
        """
        plan = plan_runs(requests, cache=self.cache, engine=self.engine)
        return execute_plan(
            plan,
            cache=self.cache,
            stats=self.stats,
            lane_runner=_call_run_lanes,
            direct_runner=self._execute_requests,
            control=control,
        )

    def _execute_requests(self, requests: Sequence[RunRequest]) -> List[RunResult]:
        """Direct backend handed to the session layer (per-cell path)."""
        return self._execute(
            [
                SweepCell(req.scenario, req.protocol, req.settings, tag=req.tag)
                for req in requests
            ]
        )

    def simulate(
        self,
        scenario: ScenarioSpec,
        protocol: str,
        settings: SimulationSettings,
    ) -> RunResult:
        """Single-cell convenience wrapper around :meth:`run`."""
        return self.run([SweepCell(scenario, protocol, settings)])[0]

    @staticmethod
    def merged_metrics(results: Sequence[RunResult]) -> MetricsRegistry:
        """One registry folding every telemetry-enabled cell's metrics.

        Cells are merged in result (= grid declaration) order, so the
        reduction is deterministic; cells run without
        ``telemetry.metrics`` contribute nothing.  Parallel and serial
        sweeps merge to identical registries because each cell's
        registry depends only on that cell's inputs.
        """
        return merge_metrics(result.metrics for result in results)

    # -- execution backends ---------------------------------------------------

    def _execute(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        if self.jobs > 1 and len(cells) > 1:
            try:
                return self._execute_parallel(cells)
            except (OSError, ImportError, PermissionError, BrokenExecutor):
                # No usable process pool here (sandbox, exotic platform):
                # the serial path produces identical results, just slower.
                pass
        return self._execute_serial(cells)

    def _run_cell(self, cell: SweepCell) -> RunResult:
        # Private scenario copy: mirrors the process-boundary pickling
        # of the parallel path, so stateful distributions (trace
        # replay) start every cell from the same position either way.
        scenario = copy.deepcopy(cell.scenario)
        return run_simulation(scenario, cell.protocol, cell.settings)

    def _retry_cell(
        self,
        cell: SweepCell,
        index: int,
        first_error: str,
        failures: List[CellFailure],
    ) -> Optional[RunResult]:
        """One in-process retry of a failed cell; records diagnostics.

        The retry runs serially whatever backend failed: a crashed
        worker cannot crash it again, and the cell's determinism means
        a retry either reproduces a genuine error or heals a transient
        one (OOM-killed worker, torn pool).  It waits the backoff
        policy's first-attempt delay — deterministic for a given cell
        tag/index, so the same failing grid always paces the same way.
        """
        self.stats.retries += 1
        self.backoff.sleep(0, token=cell.tag if cell.tag is not None else str(index))
        try:
            return self._run_cell(cell)
        except Exception as exc:
            failure = CellFailure(
                index=index,
                tag=cell.tag,
                protocol=cell.protocol,
                scenario=cell.scenario.name,
                error=f"{type(exc).__name__}: {exc}",
                first_error=first_error,
            )
            failures.append(failure)
            self.stats.failures.append(failure)
            return None

    @staticmethod
    def _raise_failures(failures: List[CellFailure]) -> None:
        if not failures:
            return
        details = "; ".join(str(failure) for failure in failures)
        raise SweepExecutionError(
            f"{len(failures)} sweep cell(s) failed after retry: {details}"
        )

    def _execute_serial(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        self.stats.serial_batches += 1
        results: List[Optional[RunResult]] = []
        failures: List[CellFailure] = []
        for index, cell in enumerate(cells):
            try:
                results.append(self._run_cell(cell))
            except Exception as exc:
                first = f"{type(exc).__name__}: {exc}"
                results.append(self._retry_cell(cell, index, first, failures))
        self._raise_failures(failures)
        return results  # type: ignore[return-value]  # no None once failures raise

    def _execute_parallel(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        workers = min(self.jobs, len(cells))
        results: List[Optional[RunResult]] = [None] * len(cells)
        errors: dict = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: List[Optional[Future]] = []
            try:
                for cell in cells:
                    futures.append(
                        pool.submit(
                            _execute_payload,
                            (cell.scenario, cell.protocol, cell.settings),
                        )
                    )
            except (BrokenExecutor, RuntimeError) as exc:
                # Pool broke mid-submission; remaining cells never made
                # it in and will be re-run serially below.
                while len(futures) < len(cells):
                    errors[len(futures)] = f"{type(exc).__name__}: {exc}"
                    futures.append(None)
            for index, future in enumerate(futures):
                if future is None:
                    continue
                try:
                    results[index] = future.result()
                except (Exception, CancelledError) as exc:
                    # Covers a cell's own exception, a worker crash
                    # (BrokenExecutor) and cancellation after a crash —
                    # all degrade to an in-process retry of that cell.
                    errors[index] = f"{type(exc).__name__}: {exc}"
        self.stats.parallel_batches += 1
        if errors:
            self.stats.serial_batches += 1
            failures: List[CellFailure] = []
            for index in sorted(errors):
                results[index] = self._retry_cell(
                    cells[index], index, errors[index], failures
                )
            self._raise_failures(failures)
        return results  # type: ignore[return-value]  # no None once failures raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cache = "on" if self.cache is not None else "off"
        return (
            f"SweepExecutor(jobs={self.jobs}, cache={cache}, "
            f"executed={self.stats.executed}, hits={self.stats.cache_hits})"
        )

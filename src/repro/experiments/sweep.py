"""Parallel sweep execution over independent simulation cells.

The paper's evaluation is a grid: every table cell is one independent
``(scenario, protocol, settings)`` simulation, and nothing couples the
cells — each derives all of its randomness from its own settings seed.
This module compiles such grids into lane-packed super-batches for the
lockstep batch engine (:func:`repro.engine.batch.run_lanes` advances
every batch-capable cell of a grid together, however heterogeneous),
fans the remainder out over a
:class:`concurrent.futures.ProcessPoolExecutor` with a serial fallback,
and consults the content-addressed
:class:`~repro.experiments.cache.ResultCache` before executing
anything.

Determinism guarantees (the common-random-numbers discipline the paper's
protocol comparisons depend on):

- every cell's random streams derive from ``settings.seed`` and the
  agent identities only, so execution order and worker placement cannot
  perturb results: serial and parallel sweeps return bit-identical
  :class:`~repro.stats.summary.RunResult` metrics;
- each cell executes against a private copy of its scenario (the process
  boundary provides one for workers; the serial path deep-copies), so
  stateful workload distributions — trace replay — start every cell from
  the same position regardless of how many cells share a spec;
- results are returned in cell order, whatever order workers finish in.
"""

from __future__ import annotations

import copy
import os
import warnings
from concurrent.futures import BrokenExecutor, CancelledError, Future, ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.engine.batch import batch_capable, kernel_family, run_lanes
from repro.errors import ConfigurationError, SweepExecutionError
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import SimulationSettings, run_simulation
from repro.observability.metrics import MetricsRegistry, merge_metrics
from repro.stats.summary import RunResult
from repro.workload.scenarios import ScenarioSpec

__all__ = ["SweepCell", "CellFailure", "SweepExecutor", "default_jobs"]

_ENV_JOBS = "REPRO_JOBS"


def default_jobs() -> int:
    """Worker count: ``$REPRO_JOBS`` (0 = all cores), else 1 (serial)."""
    raw = os.environ.get(_ENV_JOBS)
    if raw is None:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigurationError(f"${_ENV_JOBS} must be an integer, got {raw!r}")
    return resolve_jobs(jobs)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a jobs request: None -> default, 0 -> cpu count."""
    if jobs is None:
        return default_jobs()
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation in a sweep grid."""

    scenario: ScenarioSpec
    protocol: str
    settings: SimulationSettings
    #: Caller's label for the cell (e.g. ``"load=1.50/rr"``); carried
    #: through untouched for diagnostics.
    tag: Optional[str] = None


def _execute_payload(payload: Tuple[ScenarioSpec, str, SimulationSettings]) -> RunResult:
    """Worker entry point: must be module-level so it pickles."""
    scenario, protocol, settings = payload
    return run_simulation(scenario, protocol, settings)


@dataclass(frozen=True)
class CellFailure:
    """Diagnostics for one sweep cell that failed even after a retry.

    Attributes
    ----------
    index:
        Position of the cell within the executed batch.
    tag:
        The cell's caller-supplied label, if any.
    protocol:
        The cell's protocol name.
    scenario:
        The cell's scenario name.
    error:
        ``TypeName: message`` of the final (retry) failure.
    first_error:
        ``TypeName: message`` of the original failure that triggered
        the retry.
    """

    index: int
    tag: Optional[str]
    protocol: str
    scenario: str
    error: str
    first_error: str

    def __str__(self) -> str:
        label = self.tag if self.tag is not None else f"cell {self.index}"
        return (
            f"{label} ({self.protocol} on {self.scenario}): {self.error} "
            f"(first attempt: {self.first_error})"
        )


@dataclass
class SweepStats:
    """Execution accounting for one executor, across all its sweeps."""

    executed: int = 0
    cache_hits: int = 0
    parallel_batches: int = 0
    serial_batches: int = 0
    #: Cells re-run after their first attempt raised.
    retries: int = 0
    #: Per-cell diagnostics for cells whose retry failed too.
    failures: List[CellFailure] = field(default_factory=list)
    #: Lockstep kernel-family groups executed by the lane-packed batch
    #: engine, and the lanes (cells) they covered.
    batch_groups: int = 0
    batch_replications: int = 0
    #: Batch-capable cells that *silently degraded* to the per-cell
    #: event path because the lane pack failed at runtime.  Statically
    #: out-of-domain cells (no kernel, JSONL telemetry, event cells) are
    #: not counted — they were never promised the batch engine.  The
    #: fault-free differential suite asserts this stays zero.
    fallback_cells: int = 0

    def snapshot(self) -> "SweepStats":
        return SweepStats(
            self.executed,
            self.cache_hits,
            self.parallel_batches,
            self.serial_batches,
            self.retries,
            list(self.failures),
            self.batch_groups,
            self.batch_replications,
            self.fallback_cells,
        )


class SweepExecutor:
    """Runs sweep cells, caching results and fanning out over processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default via ``$REPRO_JOBS``) runs
        serially in-process; ``0`` means one per CPU core.  The executor
        silently falls back to serial execution where process pools are
        unavailable (restricted environments, missing ``fork``/spawn
        support), so callers never need two code paths.
    cache:
        Optional :class:`ResultCache`.  When set, every cell is looked
        up before execution and every executed cell is stored after.
    engine:
        Optional engine override applied to every cell's settings (the
        CLI's ``--engine`` reaches experiment grids that build their
        settings internally this way).  ``None`` leaves each cell's own
        declaration alone.  The override never changes cache keys — the
        engine selector is not part of a cell's identity (epoch 6) —
        and cells outside the batch domain still fall back to the event
        engine per cell.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        engine: Optional[str] = None,
    ) -> None:
        if engine is not None and engine not in ("event", "batch"):
            raise ConfigurationError(
                f"engine must be 'event' or 'batch', got {engine!r}"
            )
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.engine = engine
        self.stats = SweepStats()

    # -- public API -----------------------------------------------------------

    def _with_engine(self, cell: SweepCell) -> SweepCell:
        if self.engine is None or cell.settings.engine == self.engine:
            return cell
        return replace(cell, settings=replace(cell.settings, engine=self.engine))

    def run(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        """Execute (or replay) every cell; results in cell order."""
        cells = [self._with_engine(cell) for cell in cells]
        results: List[Optional[RunResult]] = [None] * len(cells)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(cells)
        for index, cell in enumerate(cells):
            if self.cache is not None:
                key = cache_key(cell.scenario, cell.protocol, cell.settings)
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    self.stats.cache_hits += 1
                    results[index] = cached
                    continue
            pending.append(index)

        if pending:
            pending = self._run_lane_batches(cells, pending, results, keys)
        if pending:
            fresh = self._execute([cells[i] for i in pending])
            for index, result in zip(pending, fresh):
                results[index] = result
                if self.cache is not None:
                    key = keys[index]
                    assert key is not None
                    self.cache.put(key, result)
            self.stats.executed += len(pending)
        return [result for result in results if result is not None]

    def simulate(
        self,
        scenario: ScenarioSpec,
        protocol: str,
        settings: SimulationSettings,
    ) -> RunResult:
        """Single-cell convenience wrapper around :meth:`run`."""
        return self.run([SweepCell(scenario, protocol, settings)])[0]

    @staticmethod
    def merged_metrics(results: Sequence[RunResult]) -> MetricsRegistry:
        """One registry folding every telemetry-enabled cell's metrics.

        Cells are merged in result (= grid declaration) order, so the
        reduction is deterministic; cells run without
        ``telemetry.metrics`` contribute nothing.  Parallel and serial
        sweeps merge to identical registries because each cell's
        registry depends only on that cell's inputs.
        """
        return merge_metrics(result.metrics for result in results)

    # -- execution backends ---------------------------------------------------

    def _run_lane_batches(
        self,
        cells: Sequence[SweepCell],
        pending: List[int],
        results: List[Optional[RunResult]],
        keys: List[Optional[str]],
    ) -> List[int]:
        """Run batch-capable cells as one super-batch; returns leftovers.

        Every pending cell that requests ``engine="batch"`` and fits the
        batch domain becomes a lane of a single
        :func:`repro.engine.batch.run_lanes` super-batch — agent counts,
        loads, seeds, protocols and fault plans may all differ; the lane
        engine groups them by kernel family internally.  Statically
        out-of-domain cells (no kernel, an ``engine="event"``
        declaration, JSONL telemetry, out-of-domain fault kinds) flow
        straight to the ordinary per-cell backends.

        A lane pack that fails *at runtime* is different: those cells
        were promised the batch engine, and the per-cell path would
        quietly mask whatever broke, so the degradation emits a
        ``RuntimeWarning`` and is tallied in ``stats.fallback_cells``
        before the cells are handed back to the backends (whose
        retry/diagnostic machinery reports real per-cell errors).
        """
        lane_indices: List[int] = []
        rest: List[int] = []
        for index in pending:
            cell = cells[index]
            settings = cell.settings
            telemetry = settings.telemetry
            if (
                settings.engine != "batch"
                or (telemetry is not None and telemetry.jsonl_path is not None)
                or not batch_capable(cell.scenario, cell.protocol, settings)[0]
            ):
                rest.append(index)
                continue
            lane_indices.append(index)
        if lane_indices:
            try:
                fresh = run_lanes(
                    [
                        (cells[i].scenario, cells[i].protocol, cells[i].settings)
                        for i in lane_indices
                    ]
                )
            except Exception as exc:
                self.stats.fallback_cells += len(lane_indices)
                warnings.warn(
                    f"{len(lane_indices)} batch-capable sweep cell(s) fell "
                    f"back to the event engine "
                    f"({type(exc).__name__}: {exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                rest.extend(lane_indices)
            else:
                self.stats.batch_groups += len(
                    {kernel_family(cells[i].protocol) for i in lane_indices}
                )
                self.stats.batch_replications += len(lane_indices)
                self.stats.executed += len(lane_indices)
                for index, result in zip(lane_indices, fresh):
                    results[index] = result
                    if self.cache is not None:
                        key = keys[index]
                        assert key is not None
                        self.cache.put(key, result)
        rest.sort()
        return rest

    def _execute(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        if self.jobs > 1 and len(cells) > 1:
            try:
                return self._execute_parallel(cells)
            except (OSError, ImportError, PermissionError, BrokenExecutor):
                # No usable process pool here (sandbox, exotic platform):
                # the serial path produces identical results, just slower.
                pass
        return self._execute_serial(cells)

    def _run_cell(self, cell: SweepCell) -> RunResult:
        # Private scenario copy: mirrors the process-boundary pickling
        # of the parallel path, so stateful distributions (trace
        # replay) start every cell from the same position either way.
        scenario = copy.deepcopy(cell.scenario)
        return run_simulation(scenario, cell.protocol, cell.settings)

    def _retry_cell(
        self,
        cell: SweepCell,
        index: int,
        first_error: str,
        failures: List[CellFailure],
    ) -> Optional[RunResult]:
        """One in-process retry of a failed cell; records diagnostics.

        The retry runs serially whatever backend failed: a crashed
        worker cannot crash it again, and the cell's determinism means
        a retry either reproduces a genuine error or heals a transient
        one (OOM-killed worker, torn pool).
        """
        self.stats.retries += 1
        try:
            return self._run_cell(cell)
        except Exception as exc:
            failure = CellFailure(
                index=index,
                tag=cell.tag,
                protocol=cell.protocol,
                scenario=cell.scenario.name,
                error=f"{type(exc).__name__}: {exc}",
                first_error=first_error,
            )
            failures.append(failure)
            self.stats.failures.append(failure)
            return None

    @staticmethod
    def _raise_failures(failures: List[CellFailure]) -> None:
        if not failures:
            return
        details = "; ".join(str(failure) for failure in failures)
        raise SweepExecutionError(
            f"{len(failures)} sweep cell(s) failed after retry: {details}"
        )

    def _execute_serial(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        self.stats.serial_batches += 1
        results: List[Optional[RunResult]] = []
        failures: List[CellFailure] = []
        for index, cell in enumerate(cells):
            try:
                results.append(self._run_cell(cell))
            except Exception as exc:
                first = f"{type(exc).__name__}: {exc}"
                results.append(self._retry_cell(cell, index, first, failures))
        self._raise_failures(failures)
        return results  # type: ignore[return-value]  # no None once failures raise

    def _execute_parallel(self, cells: Sequence[SweepCell]) -> List[RunResult]:
        workers = min(self.jobs, len(cells))
        results: List[Optional[RunResult]] = [None] * len(cells)
        errors: dict = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: List[Optional[Future]] = []
            try:
                for cell in cells:
                    futures.append(
                        pool.submit(
                            _execute_payload,
                            (cell.scenario, cell.protocol, cell.settings),
                        )
                    )
            except (BrokenExecutor, RuntimeError) as exc:
                # Pool broke mid-submission; remaining cells never made
                # it in and will be re-run serially below.
                while len(futures) < len(cells):
                    errors[len(futures)] = f"{type(exc).__name__}: {exc}"
                    futures.append(None)
            for index, future in enumerate(futures):
                if future is None:
                    continue
                try:
                    results[index] = future.result()
                except (Exception, CancelledError) as exc:
                    # Covers a cell's own exception, a worker crash
                    # (BrokenExecutor) and cancellation after a crash —
                    # all degrade to an in-process retry of that cell.
                    errors[index] = f"{type(exc).__name__}: {exc}"
        self.stats.parallel_batches += 1
        if errors:
            self.stats.serial_batches += 1
            failures: List[CellFailure] = []
            for index in sorted(errors):
                results[index] = self._retry_cell(
                    cells[index], index, errors[index], failures
                )
            self._raise_failures(failures)
        return results  # type: ignore[return-value]  # no None once failures raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cache = "on" if self.cache is not None else "off"
        return (
            f"SweepExecutor(jobs={self.jobs}, cache={cache}, "
            f"executed={self.stats.executed}, hits={self.stats.cache_hits})"
        )

"""Table 4.3: execution overlapped with bus waiting times.

The §4.3 hypothetical: an agent performs a fixed amount v of "extra"
useful work while its request is outstanding, where v is the minimum
integer at which the RR waiting-time CDF falls below the FCFS CDF (just
past the shared mean).  Because FCFS concentrates waits near the mean,
it overlaps almost every wait completely, while RR's long tail leaves
more residual stall time — slightly higher productivity for FCFS, the
paper's one quantitative argument for FCFS over RR (and, as the paper
stresses, a contrived best case for it).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED, PAPER_LOADS, PAPER_SIZES
from repro.experiments.runner import SimulationSettings
from repro.experiments.scale import Scale, current_scale
from repro.experiments.sweep import SweepCell, SweepExecutor
from repro.stats.cdf import min_integer_crossing
from repro.workload.scenarios import equal_load

__all__ = ["run", "run_panel"]


def run_panel(
    num_agents: int,
    loads: Sequence[float] = PAPER_LOADS,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[SweepExecutor] = None,
) -> ExperimentTable:
    """One panel of Table 4.3 (one system size)."""
    scale = scale or current_scale()
    executor = executor or SweepExecutor()
    table = ExperimentTable(
        title=f"Table 4.3: execution overlapped with bus waits ({num_agents} agents)",
        headers=[
            "Load",
            "W",
            "W-v resid RR",
            "W-v resid FCFS",
            "Prod RR",
            "Prod FCFS",
            "Overlap v",
        ],
        notes=(
            f"scale={scale.name}, seed={seed}; v = min integer with "
            f"CDF_RR(v) < CDF_FCFS(v); resid = E[(W - v)+]"
        ),
    )
    settings = SimulationSettings(
        batches=scale.batches,
        batch_size=scale.batch_size,
        warmup=scale.warmup,
        seed=seed,
        keep_samples=True,
    )
    cells = [
        SweepCell(
            equal_load(num_agents, load),
            protocol,
            settings,
            tag=f"t4.3/n{num_agents}/L{load:g}/{protocol}",
        )
        for load in loads
        for protocol in ("rr", "fcfs")
    ]
    outcomes = iter(executor.run(cells))
    for load in loads:
        rr = next(outcomes)
        fcfs = next(outcomes)
        rr_cdf = rr.waiting_cdf()
        fcfs_cdf = fcfs.waiting_cdf()
        overlap = min_integer_crossing(rr_cdf, fcfs_cdf)
        if overlap is None:
            # The CDFs never cross below the sample maximum (essentially
            # identical distributions); overlap everything.
            overlap = int(max(rr_cdf.max, fcfs_cdf.max)) + 1
        rr_metrics = rr.overlap_metrics(overlap)
        fcfs_metrics = fcfs.overlap_metrics(overlap)
        table.add_row(
            [
                f"{load:.2f}",
                f"{rr_metrics.total_waiting.mean:.2f}",
                fmt_estimate(rr_metrics.residual_waiting),
                fmt_estimate(fcfs_metrics.residual_waiting),
                f"{rr_metrics.productivity.mean:.3f}",
                f"{fcfs_metrics.productivity.mean:.3f}",
                f"{overlap:.1f}",
            ],
            {
                "num_agents": num_agents,
                "load": load,
                "overlap": overlap,
                "rr": rr_metrics,
                "fcfs": fcfs_metrics,
            },
        )
    return table


def run(
    sizes: Sequence[int] = PAPER_SIZES,
    loads: Sequence[float] = PAPER_LOADS,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[SweepExecutor] = None,
) -> Tuple[ExperimentTable, ...]:
    """All panels of Table 4.3."""
    executor = executor or SweepExecutor()
    return tuple(
        run_panel(num_agents, loads=loads, scale=scale, seed=seed, executor=executor)
        for num_agents in sizes
    )


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

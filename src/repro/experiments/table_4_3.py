"""Table 4.3: execution overlapped with bus waiting times.

The §4.3 hypothetical: an agent performs a fixed amount v of "extra"
useful work while its request is outstanding, where v is the minimum
integer at which the RR waiting-time CDF falls below the FCFS CDF (just
past the shared mean).  Because FCFS concentrates waits near the mean,
it overlaps almost every wait completely, while RR's long tail leaves
more residual stall time — slightly higher productivity for FCFS, the
paper's one quantitative argument for FCFS over RR (and, as the paper
stresses, a contrived best case for it).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED, PAPER_LOADS, PAPER_SIZES
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import (
    RunExecutor, ExperimentSpec, PanelSpec, build_table, build_tables, grid_rows, settings_for,
)
from repro.stats.cdf import min_integer_crossing
from repro.workload.scenarios import equal_load

__all__ = ["run", "run_panel", "panel_spec", "spec"]


def panel_spec(num_agents: int, loads: Sequence[float] = PAPER_LOADS,
               scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> PanelSpec:
    """One panel of Table 4.3 (one system size), as a declarative grid."""
    scale = scale or current_scale()

    def build_row(load, results):
        rr, fcfs = results["rr"], results["fcfs"]
        rr_cdf = rr.waiting_cdf()
        fcfs_cdf = fcfs.waiting_cdf()
        overlap = min_integer_crossing(rr_cdf, fcfs_cdf)
        if overlap is None:
            # The CDFs never cross below the sample maximum (essentially
            # identical distributions); overlap everything.
            overlap = int(max(rr_cdf.max, fcfs_cdf.max)) + 1
        rr_metrics = rr.overlap_metrics(overlap)
        fcfs_metrics = fcfs.overlap_metrics(overlap)
        return (
            [
                f"{load:.2f}",
                f"{rr_metrics.total_waiting.mean:.2f}",
                fmt_estimate(rr_metrics.residual_waiting),
                fmt_estimate(fcfs_metrics.residual_waiting),
                f"{rr_metrics.productivity.mean:.3f}",
                f"{fcfs_metrics.productivity.mean:.3f}",
                f"{overlap:.1f}",
            ],
            {
                "num_agents": num_agents,
                "load": load,
                "overlap": overlap,
                "rr": rr_metrics,
                "fcfs": fcfs_metrics,
            },
        )

    return PanelSpec(
        title=f"Table 4.3: execution overlapped with bus waits ({num_agents} agents)",
        headers=(
            "Load",
            "W",
            "W-v resid RR",
            "W-v resid FCFS",
            "Prod RR",
            "Prod FCFS",
            "Overlap v",
        ),
        rows=grid_rows(
            loads,
            ("rr", "fcfs"),
            lambda load: equal_load(num_agents, load),
            settings_for(scale, seed, keep_samples=True),
            lambda load, protocol: f"t4.3/n{num_agents}/L{load:g}/{protocol}",
        ),
        build_row=build_row,
        notes=(
            f"scale={scale.name}, seed={seed}; v = min integer with "
            f"CDF_RR(v) < CDF_FCFS(v); resid = E[(W - v)+]"
        ),
    )


def spec(sizes: Sequence[int] = PAPER_SIZES, loads: Sequence[float] = PAPER_LOADS,
         scale: Optional[Scale] = None, seed: int = DEFAULT_SEED) -> ExperimentSpec:
    """All panels of Table 4.3."""
    return ExperimentSpec(
        name="table-4.3",
        panels=tuple(panel_spec(n, loads, scale, seed) for n in sizes),
    )


def run_panel(num_agents: int, loads: Sequence[float] = PAPER_LOADS,
              scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
              executor: Optional[RunExecutor] = None) -> ExperimentTable:
    """One panel of Table 4.3 (one system size)."""
    return build_table(panel_spec(num_agents, loads, scale, seed), executor)


def run(sizes: Sequence[int] = PAPER_SIZES, loads: Sequence[float] = PAPER_LOADS,
        scale: Optional[Scale] = None, seed: int = DEFAULT_SEED,
        executor: Optional[RunExecutor] = None) -> Tuple[ExperimentTable, ...]:
    """All panels of Table 4.3."""
    return build_tables(spec(sizes, loads, scale, seed), executor)


if __name__ == "__main__":  # pragma: no cover - manual harness
    for panel in run():
        print(panel.render())
        print()

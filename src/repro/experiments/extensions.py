"""Extension experiments: tables beyond the paper's §4.

Four tables the paper argues in prose but never tabulates, produced
with the same harness conventions as Tables 4.1–4.5 (available from the
CLI as ``repro-arb table E1|E2|E3|E4``):

- **Table E1** — resource cost of every arbiter: extra control lines,
  effective identity width on the arbitration lines, and whether the
  winner's identity must be observable (the §3 cost discussion);
- **Table E2** — robustness under winner-broadcast faults: survival
  rates of the static-identity RR protocol vs the rotating-priority
  prior art (the §3.1 robustness claim);
- **Table E3** — fairness under trace-driven (bursty, phase-correlated)
  workloads, the [EgGi87] corroboration angle;
- **Table E4** — a reproduction finding: §3.1's "record the winner of
  every arbitration" rule lets steady urgent traffic from high
  identities reset the RR scan pointer each urgent win, decaying the
  normal class toward static priority.  The table sweeps the urgent
  traffic share and compares the paper-faithful rule with the
  frozen-pointer amendment
  (``DistributedRoundRobin(record_priority_winners=False)``);
- **Table E5** — per-flow fairness under the open-loop arrival layer:
  Poisson, on-off bursty (MMPP) and two-class priority workloads per
  protocol, reporting the Jain index over (agent, class) flow shares
  and the two-class waiting-time percentiles (the §5
  priority-integration options exercised under traffic that can
  actually expose them).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.baselines.rotating import RotatingPriorityRR
from repro.errors import ArbitrationError
from repro.experiments.formatting import ExperimentTable, fmt_estimate
from repro.experiments.params import DEFAULT_SEED
from repro.experiments.scale import Scale, current_scale
from repro.experiments.spec import (
    CellSpec,
    PanelSpec,
    RowSpec,
    build_table,
    settings_for,
)
from repro.experiments.spec import RunExecutor
from repro.experiments.sweep import SweepExecutor
from repro.faults import FaultyWinnerRegisterRR
from repro.protocols.registry import get_spec, protocol_names
from repro.workload.scenarios import AgentSpec, ScenarioSpec
from repro.workload.traces import TraceDistribution, synthesize_program_trace

__all__ = [
    "run_table_e1",
    "run_table_e2",
    "run_table_e3",
    "run_table_e4",
    "run_table_e5",
]


def run_table_e1(num_agents: int = 30) -> ExperimentTable:
    """Table E1: per-protocol bus-resource costs (no simulation needed)."""
    table = ExperimentTable(
        title=f"Table E1: arbiter resource costs ({num_agents} agents)",
        headers=["protocol", "identity bits", "extra lines", "winner broadcast"],
        notes=(
            "identity bits = width of the effective arbitration number; "
            "extra lines beyond the k arbitration lines + shared request line"
        ),
    )
    for name in protocol_names():
        spec = get_spec(name)
        if not spec.common_random_numbers:
            continue  # central oracles have no distributed line cost
        arbiter = spec.build(num_agents)
        table.add_row(
            [
                name,
                str(arbiter.identity_width),
                str(arbiter.extra_lines),
                "yes" if arbiter.requires_winner_identity else "no",
            ],
            {
                "protocol": name,
                "identity_width": arbiter.identity_width,
                "extra_lines": arbiter.extra_lines,
                "requires_winner_identity": arbiter.requires_winner_identity,
            },
        )
    return table


def _run_with_faults(arbiter, fault_rate: float, seed: int, rounds: int) -> int:
    rng = random.Random(seed)
    n = arbiter.num_agents
    for agent in range(1, n + 1):
        arbiter.request(agent, 0.0)
    completed = 0
    for __ in range(rounds):
        if rng.random() < fault_rate:
            arbiter.drop_winner_observations(rng.randint(1, n))
        try:
            winner = arbiter.start_arbitration(0.0).winner
        except ArbitrationError:
            break
        arbiter.grant(winner, 0.0)
        arbiter.request(winner, 0.0)
        completed += 1
    return completed


def run_table_e2(
    num_agents: int = 8,
    fault_rates: Sequence[float] = (0.002, 0.01, 0.05, 0.2),
    trials: int = 25,
    rounds: int = 400,
    seed: int = DEFAULT_SEED,
) -> ExperimentTable:
    """Table E2: survival under winner-broadcast faults (§3.1)."""
    table = ExperimentTable(
        title=f"Table E2: robustness to winner-broadcast faults ({num_agents} agents)",
        headers=[
            "fault rate",
            "static RR survival",
            "rotating RR survival",
            "rotating mean grants",
        ],
        notes=(
            f"{trials} trials x {rounds} grants each; a run survives if it "
            f"completes every grant; faults drop one agent's winner observation"
        ),
    )
    for rate in fault_rates:
        static_ok = 0
        rotating_ok = 0
        rotating_grants = 0
        for trial in range(trials):
            trial_seed = seed + trial
            if (
                _run_with_faults(
                    FaultyWinnerRegisterRR(num_agents), rate, trial_seed, rounds
                )
                == rounds
            ):
                static_ok += 1
            grants = _run_with_faults(
                RotatingPriorityRR(num_agents), rate, trial_seed, rounds
            )
            rotating_grants += grants
            if grants == rounds:
                rotating_ok += 1
        table.add_row(
            [
                f"{rate:.3f}",
                f"{static_ok / trials:.0%}",
                f"{rotating_ok / trials:.0%}",
                f"{rotating_grants / trials:.0f}/{rounds}",
            ],
            {
                "fault_rate": rate,
                "static_survival": static_ok / trials,
                "rotating_survival": rotating_ok / trials,
                "rotating_mean_grants": rotating_grants / trials,
            },
        )
    return table


def run_table_e3(
    num_agents: int = 12,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[RunExecutor] = None,
) -> ExperimentTable:
    """Table E3: fairness under trace-driven workloads ([EgGi87] angle)."""
    scale = scale or current_scale()
    trace = synthesize_program_trace(
        4000, seed=seed, compute_mean=16.0, communicate_mean=1.0
    )
    agents = tuple(
        AgentSpec(
            agent_id=i, interrequest=TraceDistribution(trace, offset=i * 311)
        )
        for i in range(1, num_agents + 1)
    )
    scenario = ScenarioSpec(name=f"trace-n{num_agents}", agents=agents)
    settings = settings_for(scale, seed)
    protocols = ("rr", "fcfs", "fcfs-aincr", "aap1", "aap2")

    def build_row(protocol, results):
        result = results[protocol]
        return (
            [
                protocol,
                fmt_estimate(result.extreme_throughput_ratio()),
                f"{result.mean_waiting().mean:.2f}",
                f"{result.std_waiting().mean:.2f}",
            ],
            {
                "protocol": protocol,
                "ratio": result.extreme_throughput_ratio(),
                "mean_w": result.mean_waiting(),
                "std_w": result.std_waiting(),
            },
        )

    panel = PanelSpec(
        title=f"Table E3: fairness under program-trace workloads ({num_agents} agents)",
        headers=("protocol", "t_N/t_1", "mean W", "σ_W"),
        rows=tuple(
            RowSpec(
                label=protocol,
                cells=(
                    CellSpec(
                        key=protocol,
                        scenario=scenario,
                        protocol=protocol,
                        settings=settings,
                        tag=f"E3/n{num_agents}/{protocol}",
                    ),
                ),
            )
            for protocol in protocols
        ),
        build_row=build_row,
        notes=(
            f"scale={scale.name}, seed={seed}; synthetic compute/communicate "
            f"phase trace (CV > 1, autocorrelated), one phase offset per agent"
        ),
    )
    return build_table(panel, executor)


def run_table_e4(
    num_agents: int = 10,
    urgent_agents: Sequence[int] = (9, 10),
    load: float = 2.5,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[RunExecutor] = None,
) -> ExperimentTable:
    """Table E4: the urgent-traffic pointer-reset finding (§3.1).

    ``urgent_agents`` issue only priority requests; the remaining agents
    issue only normal ones.  The table reports the throughput spread
    (max/min completions) across the *normal* agents for the
    paper-faithful RR rule vs the frozen-pointer amendment vs FCFS,
    which is immune by construction.
    """
    from repro.workload.distributions import Exponential

    scale = scale or current_scale()
    think = num_agents / load - 1.0
    agents = tuple(
        AgentSpec(
            agent_id=i,
            interrequest=Exponential(think),
            priority_fraction=1.0 if i in urgent_agents else 0.0,
        )
        for i in range(1, num_agents + 1)
    )
    scenario = ScenarioSpec(name=f"urgent-mix-n{num_agents}", agents=agents)
    # display label -> registered protocol name
    variants = {
        "rr (paper rule)": "rr",
        "rr (frozen pointer)": "rr-frozen",
        "fcfs": "fcfs",
        "fcfs-aincr": "fcfs-aincr",
    }
    settings = settings_for(scale, seed, keep_records=True)

    def build_row(name, results):
        result = next(iter(results.values()))
        counts = {}
        urgent_waits = []
        normal_waits = []
        for record in result.collector.records:
            if record.priority:
                urgent_waits.append(record.waiting_time)
            else:
                normal_waits.append(record.waiting_time)
                counts[record.agent_id] = counts.get(record.agent_id, 0) + 1
        spread = max(counts.values()) / max(1, min(counts.values()))
        return (
            [
                name,
                f"{spread:.2f}",
                f"{sum(urgent_waits) / len(urgent_waits):.2f}",
                f"{sum(normal_waits) / len(normal_waits):.2f}",
            ],
            {
                "arbiter": name,
                "normal_spread": spread,
                "urgent_w": sum(urgent_waits) / len(urgent_waits),
                "normal_w": sum(normal_waits) / len(normal_waits),
            },
        )

    panel = PanelSpec(
        title=(
            f"Table E4: normal-class fairness under urgent traffic "
            f"({num_agents} agents, {len(urgent_agents)} urgent)"
        ),
        headers=("arbiter", "normal max/min", "urgent W", "normal W"),
        rows=tuple(
            RowSpec(
                label=name,
                cells=(
                    CellSpec(
                        key=protocol,
                        scenario=scenario,
                        protocol=protocol,
                        settings=settings,
                        tag=f"E4/{protocol}",
                    ),
                ),
            )
            for name, protocol in variants.items()
        ),
        build_row=build_row,
        notes=(
            f"scale={scale.name}, seed={seed}; urgent agents "
            f"{tuple(urgent_agents)} issue only priority requests"
        ),
    )
    return build_table(panel, executor)


def run_table_e5(
    num_agents: int = 8,
    open_load: float = 0.85,
    closed_load: float = 2.0,
    urgent_fraction: float = 0.25,
    scale: Optional[Scale] = None,
    seed: int = DEFAULT_SEED,
    executor: Optional[RunExecutor] = None,
) -> ExperimentTable:
    """Table E5: per-flow fairness under the open-loop arrival layer.

    Every protocol row runs three workloads with common random numbers:
    open-loop Poisson arrivals, on-off bursty (MMPP) sources at the same
    average load, and the closed-loop §5 two-class priority overlay.
    Reported per row: the Jain index over (agent, class) flow shares for
    each workload, and the two-class run's p95 waiting time per class —
    the number a fixed-priority overlay actually moves.
    """
    from repro.analysis.fairness import fairness_report
    from repro.workload.arrivals import bursty_equal_load, two_class_priority_load
    from repro.workload.scenarios import open_loop_equal_load

    scale = scale or current_scale()
    workloads = {
        "poisson": open_loop_equal_load(num_agents, open_load, max_outstanding=1),
        "bursty": bursty_equal_load(num_agents, open_load),
        "two-class": two_class_priority_load(
            num_agents, closed_load, urgent_fraction=urgent_fraction
        ),
    }
    settings = settings_for(scale, seed, keep_records=True)
    protocols = ("rr", "rr-frozen", "fcfs", "fcfs-aincr")

    def build_row(protocol, results):
        reports = {key: fairness_report(results[key]) for key in workloads}
        two_class = reports["two-class"]["class_percentiles"]
        cells = [protocol]
        record = {"protocol": protocol}
        for key in workloads:
            jain = reports[key]["jain_flows"]
            cells.append(f"{jain:.4f}")
            record[f"jain_{key}"] = jain
        for label in ("urgent", "normal"):
            p95 = two_class.get(label, {}).get(95.0)
            cells.append("—" if p95 is None else f"{p95:.2f}")
            record[f"p95_{label}"] = p95
        return cells, record

    panel = PanelSpec(
        title=(
            f"Table E5: per-flow fairness under open-loop and two-class "
            f"workloads ({num_agents} agents)"
        ),
        headers=(
            "protocol", "jain poisson", "jain bursty", "jain 2-class",
            "p95 W urgent", "p95 W normal",
        ),
        rows=tuple(
            RowSpec(
                label=protocol,
                cells=tuple(
                    CellSpec(
                        key=key,
                        scenario=scenario,
                        protocol=protocol,
                        settings=settings,
                        tag=f"E5/{key}/{protocol}",
                    )
                    for key, scenario in workloads.items()
                ),
            )
            for protocol in protocols
        ),
        build_row=build_row,
        notes=(
            f"scale={scale.name}, seed={seed}; open-loop load {open_load:g}, "
            f"two-class load {closed_load:g} with urgent fraction "
            f"{urgent_fraction:g}; Jain index over (agent, class) flow shares"
        ),
    )
    return build_table(panel, executor)

"""Confidence intervals by the method of batch means [Lave83].

A long run is divided into ``b`` consecutive batches; each batch yields
one (approximately independent) estimate of the steady-state quantity,
and the sample mean of the batch estimates carries a Student-t
confidence interval with ``b - 1`` degrees of freedom.  The paper uses
10 batches of 8000 samples and 90% confidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import StatisticsError

__all__ = ["BatchMeansEstimate", "batch_means", "t_quantile"]

# Two-sided Student-t critical values, indexed by degrees of freedom.
# Row p = 0.95 serves 90% confidence; p = 0.975 serves 95% confidence.
_T_TABLE = {
    0.95: {
        1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015, 6: 1.943,
        7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812, 11: 1.796, 12: 1.782,
        13: 1.771, 14: 1.761, 15: 1.753, 16: 1.746, 17: 1.740, 18: 1.734,
        19: 1.729, 20: 1.725, 25: 1.708, 30: 1.697, 40: 1.684, 60: 1.671,
        120: 1.658,
    },
    0.975: {
        1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
        13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
        19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000,
        120: 1.980,
    },
}
_T_INFINITY = {0.95: 1.645, 0.975: 1.960}


def t_quantile(p: float, df: int) -> float:
    """Student-t quantile ``t_{p, df}``.

    Uses :mod:`scipy` when importable (exact), otherwise a standard table
    for the two confidence levels the library reports (90% and 95%),
    interpolating between tabulated degrees of freedom.
    """
    if df < 1:
        raise StatisticsError(f"degrees of freedom must be >= 1, got {df}")
    try:
        from scipy.stats import t as student_t  # type: ignore

        return float(student_t.ppf(p, df))
    except ImportError:
        pass
    if p not in _T_TABLE:
        raise StatisticsError(
            f"without scipy, only p in {sorted(_T_TABLE)} is tabulated; got {p}"
        )
    table = _T_TABLE[p]
    if df in table:
        return table[df]
    keys = sorted(table)
    if df > keys[-1]:
        return _T_INFINITY[p]
    below = max(key for key in keys if key < df)
    above = min(key for key in keys if key > df)
    weight = (df - below) / (above - below)
    return table[below] * (1.0 - weight) + table[above] * weight


@dataclass(frozen=True)
class BatchMeansEstimate:
    """A point estimate with its batch-means confidence interval.

    Attributes
    ----------
    mean:
        Sample mean of the per-batch estimates.
    halfwidth:
        Confidence-interval half width; the interval is
        ``mean ± halfwidth``.
    std_between:
        Sample standard deviation of the per-batch estimates.
    batches:
        Number of batches contributing.
    confidence:
        Two-sided confidence level of the interval.
    """

    mean: float
    halfwidth: float
    std_between: float
    batches: int
    confidence: float = 0.90

    @property
    def relative_halfwidth(self) -> float:
        """Half width as a fraction of the mean (inf for mean 0)."""
        if self.mean == 0.0:
            return math.inf
        return abs(self.halfwidth / self.mean)

    def covers(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        return abs(value - self.mean) <= self.halfwidth

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.halfwidth:.3f}"


def batch_means(
    values: Sequence[float],
    confidence: float = 0.90,
) -> BatchMeansEstimate:
    """Confidence interval for the mean of per-batch estimates.

    Parameters
    ----------
    values:
        One estimate per batch (at least two).
    confidence:
        Two-sided confidence level (the paper uses 0.90).
    """
    clean = [value for value in values if not math.isnan(value)]
    if len(clean) < 2:
        raise StatisticsError(
            f"batch means needs >= 2 usable batch values, got {len(clean)}"
        )
    if not 0.0 < confidence < 1.0:
        raise StatisticsError(f"confidence must be in (0, 1), got {confidence}")
    count = len(clean)
    mean = sum(clean) / count
    variance = sum((value - mean) ** 2 for value in clean) / (count - 1)
    std = math.sqrt(variance)
    critical = t_quantile(0.5 + confidence / 2.0, count - 1)
    halfwidth = critical * std / math.sqrt(count)
    return BatchMeansEstimate(
        mean=mean,
        halfwidth=halfwidth,
        std_between=std,
        batches=count,
        confidence=confidence,
    )

"""Run-level result object with the derived metrics the tables report.

A :class:`RunResult` wraps one simulation's collector output and exposes
every quantity appearing in the paper's Tables 4.1–4.5 and Figure 4.1 as
a batch-means estimate with its 90% confidence interval:

- system throughput (= bus utilisation, since the transaction time is the
  unit of time) — the tables' λ column;
- throughput ratios between chosen agents — Tables 4.1, 4.4, 4.5;
- mean and standard deviation of the waiting time W (request issue to
  transaction completion, the paper's W) — Table 4.2;
- the waiting-time CDF — Figure 4.1;
- overlap/productivity metrics for a given execution-overlap value —
  Table 4.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.errors import StatisticsError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observability.events import ArbitrationEvent
    from repro.observability.metrics import MetricsRegistry
from repro.stats.batch_means import BatchMeansEstimate, batch_means
from repro.stats.cdf import EmpiricalCDF
from repro.stats.collector import CompletionCollector
from repro.workload.scenarios import ScenarioSpec

__all__ = ["RunResult", "OverlapMetrics"]


@dataclass(frozen=True)
class OverlapMetrics:
    """§4.3 metrics for one protocol at one execution-overlap value v.

    The agent performs up to ``v`` units of "extra" useful work while a
    request is outstanding; the work actually overlapped with a wait W is
    min(v, W).  Productivity is productive time over total time between
    requests: (R̄ + E[min(v, W)]) / (R̄ + E[W]), with R̄ the mean
    inter-request (think) time — think time is always productive, and of
    the request's wall-clock W only the overlapped part is.
    """

    overlap_value: float
    total_waiting: BatchMeansEstimate
    residual_waiting: BatchMeansEstimate
    overlapped: BatchMeansEstimate
    productivity: BatchMeansEstimate


class RunResult:
    """Metrics of one finished simulation run."""

    def __init__(
        self,
        scenario: ScenarioSpec,
        protocol: str,
        collector: CompletionCollector,
        utilization: float,
        elapsed: float,
        seed: int,
        confidence: float = 0.90,
        failed: bool = False,
        events: Optional[List["ArbitrationEvent"]] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.scenario = scenario
        self.protocol = protocol
        self.collector = collector
        self.utilization = utilization
        self.elapsed = elapsed
        self.seed = seed
        self.confidence = confidence
        #: The run ended in a permanent arbitration failure (the bus
        #: watchdog gave up).  Whatever batches completed before the
        #: failure are kept; a failed run is allowed to have none.
        self.failed = failed
        #: The run's full :class:`~repro.observability.events.
        #: ArbitrationEvent` stream when ``telemetry.events`` was on,
        #: else ``None``.
        self.events = events
        #: The run's :class:`~repro.observability.metrics.
        #: MetricsRegistry` when ``telemetry.metrics`` was on, else
        #: ``None``.
        self.metrics = metrics
        self._batches = collector.completed_batches()
        if len(self._batches) < 2 and not failed:
            raise StatisticsError(
                f"run produced {len(self._batches)} complete batches; need >= 2"
            )

    # -- headline estimates ---------------------------------------------------

    def system_throughput(self) -> BatchMeansEstimate:
        """Completions per unit time — the tables' λ column."""
        return batch_means(
            [batch.throughput() for batch in self._batches], self.confidence
        )

    def mean_waiting(self) -> BatchMeansEstimate:
        """Mean of the paper's W (issue to transaction completion)."""
        return batch_means(
            [batch.mean_waiting for batch in self._batches], self.confidence
        )

    def std_waiting(self) -> BatchMeansEstimate:
        """Standard deviation of W (the σ_W of Table 4.2)."""
        return batch_means(
            [batch.std_waiting for batch in self._batches], self.confidence
        )

    def mean_queueing(self) -> BatchMeansEstimate:
        """Mean issue-to-grant delay (W minus the transaction)."""
        return batch_means(
            [batch.mean_queueing for batch in self._batches], self.confidence
        )

    # -- fairness ---------------------------------------------------------------

    def throughput_ratio(self, numerator: int, denominator: int) -> BatchMeansEstimate:
        """Ratio of two agents' throughputs, batch by batch.

        Batches in which the denominator agent completed nothing are
        dropped (they indicate the batch size is too small for the load).
        """
        ratios: List[float] = []
        for batch in self._batches:
            bottom = batch.agent_counts.get(denominator, 0)
            if bottom == 0:
                ratios.append(math.nan)
                continue
            ratios.append(batch.agent_counts.get(numerator, 0) / bottom)
        return batch_means(ratios, self.confidence)

    def extreme_throughput_ratio(self) -> BatchMeansEstimate:
        """Highest static identity over lowest — Tables 4.1's t_N / t_1."""
        ids = sorted(spec.agent_id for spec in self.scenario.agents)
        return self.throughput_ratio(ids[-1], ids[0])

    def bandwidth_shares(self) -> Dict[int, float]:
        """Each agent's fraction of all post-warmup completions."""
        total = sum(self.collector.agent_totals.values())
        if total == 0:
            raise StatisticsError("no completions recorded after warmup")
        return {
            agent: count / total
            for agent, count in sorted(self.collector.agent_totals.items())
        }

    def agent_throughput(self, agent_id: int) -> BatchMeansEstimate:
        """One agent's completions per unit time."""
        return batch_means(
            [batch.agent_throughput(agent_id) for batch in self._batches],
            self.confidence,
        )

    # -- robustness ------------------------------------------------------------

    def anomaly_counts(self) -> Dict[str, int]:
        """Anomalous arbitrations seen by the watchdog, per kind."""
        return dict(self.collector.anomalies)

    def recovery_latencies(self) -> List[float]:
        """Recovery latency of each closed anomaly episode (sim time)."""
        return list(self.collector.recovery_latencies)

    def mean_recovery_latency(self) -> Optional[float]:
        """Mean recovery latency, or ``None`` when nothing recovered."""
        latencies = self.collector.recovery_latencies
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    # -- distributional --------------------------------------------------------

    def waiting_cdf(self) -> EmpiricalCDF:
        """Empirical CDF of W over every retained sample (Figure 4.1)."""
        return EmpiricalCDF(self.collector.all_samples())

    def overlap_metrics(self, overlap_value: float) -> OverlapMetrics:
        """§4.3 overlap-experiment metrics for a fixed overlap value.

        Requires the run to have retained samples, and assumes a
        homogeneous agent population (all experiments in Table 4.3 are),
        since productivity uses the scenario's mean think time.
        """
        if overlap_value < 0.0:
            raise StatisticsError(f"overlap value must be >= 0, got {overlap_value}")
        think_means = {spec.interrequest.mean for spec in self.scenario.agents}
        if len(think_means) != 1:
            raise StatisticsError(
                "overlap metrics assume a homogeneous population; scenario "
                f"{self.scenario.name!r} has think means {sorted(think_means)}"
            )
        think_mean = think_means.pop()
        per_batch_w: List[float] = []
        per_batch_residual: List[float] = []
        per_batch_overlapped: List[float] = []
        per_batch_productivity: List[float] = []
        for batch in self._batches:
            if batch.samples is None:
                raise StatisticsError(
                    "overlap metrics need keep_samples=True on the collector"
                )
            count = len(batch.samples)
            total = sum(batch.samples)
            overlapped = sum(min(overlap_value, w) for w in batch.samples)
            residual = total - overlapped
            per_batch_w.append(total / count)
            per_batch_residual.append(residual / count)
            per_batch_overlapped.append(overlapped / count)
            cycle = think_mean + total / count
            per_batch_productivity.append((think_mean + overlapped / count) / cycle)
        return OverlapMetrics(
            overlap_value=overlap_value,
            total_waiting=batch_means(per_batch_w, self.confidence),
            residual_waiting=batch_means(per_batch_residual, self.confidence),
            overlapped=batch_means(per_batch_overlapped, self.confidence),
            productivity=batch_means(per_batch_productivity, self.confidence),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunResult(protocol={self.protocol!r}, "
            f"scenario={self.scenario.name!r}, "
            f"batches={len(self._batches)})"
        )

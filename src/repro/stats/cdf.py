"""Empirical cumulative distribution functions.

Backs Figure 4.1 (the waiting-time CDFs of RR vs FCFS) and the §4.3 rule
for choosing the execution-overlap value: the minimum integer at which
the RR CDF lies strictly below the FCFS CDF.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import StatisticsError

__all__ = ["EmpiricalCDF", "min_integer_crossing", "ks_distance"]


class EmpiricalCDF:
    """Right-continuous empirical CDF over a sample."""

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted: List[float] = sorted(samples)
        if not self._sorted:
            raise StatisticsError("cannot build a CDF from an empty sample")
        self._n = len(self._sorted)

    def __len__(self) -> int:
        return self._n

    @property
    def min(self) -> float:
        """Smallest sample."""
        return self._sorted[0]

    @property
    def max(self) -> float:
        """Largest sample."""
        return self._sorted[-1]

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self._sorted) / self._n

    @property
    def std(self) -> float:
        """Sample standard deviation (population convention)."""
        mean = self.mean
        return math.sqrt(sum((x - mean) ** 2 for x in self._sorted) / self._n)

    def evaluate(self, x: float) -> float:
        """F(x) = fraction of samples <= x."""
        return bisect.bisect_right(self._sorted, x) / self._n

    def quantile(self, q: float) -> float:
        """Smallest sample value v with F(v) >= q."""
        if not 0.0 < q <= 1.0:
            raise StatisticsError(f"quantile level must be in (0, 1], got {q}")
        index = max(0, math.ceil(q * self._n) - 1)
        return self._sorted[index]

    def series(self, points: Sequence[float]) -> List[Tuple[float, float]]:
        """(x, F(x)) pairs for plotting or table output."""
        return [(float(x), self.evaluate(x)) for x in points]


def ks_distance(first: EmpiricalCDF, second: EmpiricalCDF) -> float:
    """Kolmogorov–Smirnov distance: sup_x |F1(x) − F2(x)|.

    Used to quantify how far apart two protocols' waiting-time
    distributions are (Figure 4.1 in one number): RR-vs-FCFS at a
    saturated load scores well above the same protocol re-run on a
    different seed.
    """
    supremum = 0.0
    for x in first._sorted:  # evaluation only needs the jump points
        supremum = max(supremum, abs(first.evaluate(x) - second.evaluate(x)))
    for x in second._sorted:
        supremum = max(supremum, abs(first.evaluate(x) - second.evaluate(x)))
    return supremum


def min_integer_crossing(
    rr_cdf: EmpiricalCDF,
    fcfs_cdf: EmpiricalCDF,
    upper: Optional[int] = None,
    margin: Optional[float] = None,
) -> Optional[int]:
    """The §4.3 overlap value: min integer v with CDF_RR(v) < CDF_FCFS(v).

    The paper sets the fixed execution overlap to "the minimum integer
    value at which the CDF for RR is less than the CDF for FCFS" — just
    past the point where FCFS's concentrated waiting-time distribution
    overtakes RR's long-tailed one.  Returns ``None`` when no crossing
    exists below ``upper`` (default: the larger sample maximum).

    On *empirical* CDFs the strict inequality can fire spuriously deep
    in the left tail, where both CDFs are near zero and differ only by
    sampling noise; ``margin`` demands the FCFS CDF lead by a
    statistically meaningful amount.  The default is three binomial
    standard errors at the smaller sample size, which suppresses the
    noise crossings without moving genuine ones.
    """
    if upper is None:
        upper = int(math.ceil(max(rr_cdf.max, fcfs_cdf.max)))
    if margin is None:
        margin = 3.0 / math.sqrt(min(len(rr_cdf), len(fcfs_cdf)))
    for v in range(1, upper + 1):
        if rr_cdf.evaluate(v) + margin < fcfs_cdf.evaluate(v):
            return v
    return None

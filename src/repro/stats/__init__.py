"""Output analysis: batch means, confidence intervals, empirical CDFs.

The paper's methodology (§4.1): every simulation runs 10 batches of 8000
sample outputs and reports 90% confidence intervals computed by the
method of batch means [Lave83].  This subpackage reproduces exactly that,
plus the empirical waiting-time CDFs behind Figure 4.1 and the
overlap-productivity metrics of §4.3.
"""

from repro.stats.batch_means import BatchMeansEstimate, batch_means, t_quantile
from repro.stats.cdf import EmpiricalCDF, ks_distance, min_integer_crossing
from repro.stats.collector import BatchStats, CompletionCollector
from repro.stats.summary import OverlapMetrics, RunResult

__all__ = [
    "BatchMeansEstimate",
    "batch_means",
    "t_quantile",
    "EmpiricalCDF",
    "min_integer_crossing",
    "ks_distance",
    "CompletionCollector",
    "BatchStats",
    "RunResult",
    "OverlapMetrics",
]
